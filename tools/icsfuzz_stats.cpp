// icsfuzz-stats — renders a campaign directory's telemetry.
//
//   # one-shot view of a saved session or a live campaign directory
//   icsfuzz-stats DIR
//
//   # tail a live campaign (ParallelCampaignConfig::telemetry_dir)
//   icsfuzz-stats DIR --follow [--interval-ms 1000]
//
// The directory may be either a live export directory (metrics.json,
// written atomically by the campaign's exporter thread) or a saved session
// (telemetry.json from save_session) — whichever snapshot file exists is
// used, plus journal.jsonl for the recent-event tail. In --follow mode the
// tool polls the snapshot file and derives its own execs/sec,
// new-edges/sec and crash rates from successive snapshots via RateWindows,
// so it works even against exporters that do not embed rates.
#include <chrono>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "fuzzer/persistence.hpp"
#include "telemetry/export.hpp"
#include "telemetry/windows.hpp"
#include "util/strings.hpp"

namespace {

using namespace icsfuzz;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s DIR [options]\n"
               "  DIR                a live telemetry directory (metrics.json)"
               " or a saved\n"
               "                     session (telemetry.json)\n"
               "  --follow           keep polling and redraw until killed\n"
               "  --interval-ms N    poll period in --follow mode (default"
               " 1000)\n"
               "  --events N         journal events to show (default 10)\n",
               argv0);
  return 2;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// Loads the newest snapshot under `dir`: the live exporter's metrics.json
/// first, the saved session's telemetry.json as the fallback.
std::optional<telem::Snapshot> load_snapshot(const std::string& dir) {
  for (const char* name : {"metrics.json", "telemetry.json"}) {
    if (const auto text = read_file(dir + "/" + name)) {
      if (auto snap = telem::snapshot_from_json(*text)) return snap;
    }
  }
  return std::nullopt;
}

void print_rate(const char* label, const telem::RateWindows::Rate& rate) {
  if (rate.valid) {
    std::printf("  %-18s %12.1f /s   (over %.1fs)\n", label, rate.per_sec,
                rate.window_seconds);
  } else {
    std::printf("  %-18s %12s\n", label, "n/a");
  }
}

void render(const telem::Snapshot& snap, const telem::RateWindows& rates,
            const std::vector<telem::Event>& events, std::size_t event_tail) {
  using telem::Counter;
  using telem::Gauge;
  using telem::Histogram;

  std::printf("icsfuzz campaign @ t=%.1fs\n",
              static_cast<double>(snap.ts_ns) / 1e9);
  std::printf("  %-18s %12llu\n", "executions",
              static_cast<unsigned long long>(
                  snap.counter(Counter::kExecutions)));
  print_rate("execs/sec", rates.counter_rate(Counter::kExecutions,
                                             10 * telem::kSecondNs));
  print_rate("new edges/sec", rates.gauge_rate(Gauge::kEdgesCovered,
                                               10 * telem::kSecondNs));
  std::printf("  %-18s %12llu\n", "paths",
              static_cast<unsigned long long>(
                  snap.gauge(Gauge::kPathsCovered)));
  std::printf("  %-18s %12llu\n", "edges",
              static_cast<unsigned long long>(
                  snap.gauge(Gauge::kEdgesCovered)));
  std::printf("  %-18s %12llu\n", "unique crashes",
              static_cast<unsigned long long>(
                  snap.counter(Counter::kUniqueCrashes)));
  std::printf("  %-18s %12llu  (hangs %llu)\n", "fault execs",
              static_cast<unsigned long long>(
                  snap.counter(Counter::kCrashFaults)),
              static_cast<unsigned long long>(
                  snap.counter(Counter::kHangFaults)));
  std::printf("  %-18s %12llu\n", "corpus puzzles",
              static_cast<unsigned long long>(
                  snap.gauge(Gauge::kCorpusPuzzles)));
  std::printf("  %-18s %12llu\n", "retained seeds",
              static_cast<unsigned long long>(
                  snap.gauge(Gauge::kRetainedSeeds)));
  std::printf("  %-18s %12llu\n", "workers running",
              static_cast<unsigned long long>(
                  snap.gauge(Gauge::kWorkersRunning)));
  std::printf("  %-18s %12llu  (imported %llu)\n", "crack runs",
              static_cast<unsigned long long>(
                  snap.counter(Counter::kCrackRuns)),
              static_cast<unsigned long long>(
                  snap.counter(Counter::kImportedSeeds)));
  const std::uint64_t restarts = snap.counter(Counter::kOopRestarts);
  if (restarts != 0 || snap.counter(Counter::kOopHangs) != 0) {
    std::printf("  %-18s %12llu  (retries %llu, hangs %llu, lost %llu)\n",
                "oop restarts", static_cast<unsigned long long>(restarts),
                static_cast<unsigned long long>(
                    snap.counter(Counter::kOopRetries)),
                static_cast<unsigned long long>(
                    snap.counter(Counter::kOopHangs)),
                static_cast<unsigned long long>(
                    snap.counter(Counter::kOopServerLost)));
  }
  const telem::HistogramSnapshot& latency =
      snap.histogram(Histogram::kExecLatencyNs);
  if (latency.count != 0) {
    std::printf("  %-18s %12.0f ns  (sampled, n=%llu)\n", "mean exec latency",
                latency.mean(),
                static_cast<unsigned long long>(latency.count));
  }
  const telem::HistogramSnapshot& bytes =
      snap.histogram(Histogram::kPacketBytes);
  if (bytes.count != 0) {
    std::printf("  %-18s %12.1f B\n", "mean packet", bytes.mean());
  }

  if (!events.empty() && event_tail != 0) {
    std::printf("recent events:\n");
    const std::size_t start =
        events.size() > event_tail ? events.size() - event_tail : 0;
    for (std::size_t i = start; i < events.size(); ++i) {
      const telem::Event& event = events[i];
      std::printf("  %10.3fs  w%-3u %-20s %s\n",
                  static_cast<double>(event.ts_ns) / 1e9, event.worker,
                  std::string(telem::to_string(event.type)).c_str(),
                  event.detail);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  bool follow = false;
  int interval_ms = 1000;
  std::size_t event_tail = 10;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--follow") {
      follow = true;
    } else if (arg == "--interval-ms") {
      const char* v = next();
      std::string error;
      const auto parsed =
          v ? parse_int(v, "--interval-ms", &error) : std::nullopt;
      if (!parsed || *parsed <= 0 || *parsed > INT_MAX) {
        std::fprintf(stderr, "%s\n",
                     error.empty() ? "--interval-ms: expected a positive "
                                     "millisecond count"
                                   : error.c_str());
        return usage(argv[0]);
      }
      interval_ms = static_cast<int>(*parsed);
    } else if (arg == "--events") {
      const char* v = next();
      std::string error;
      const auto parsed =
          v ? parse_u64(v, "--events", &error) : std::nullopt;
      if (!parsed) {
        std::fprintf(stderr, "%s\n",
                     error.empty() ? "--events: expected a count"
                                   : error.c_str());
        return usage(argv[0]);
      }
      event_tail = static_cast<std::size_t>(*parsed);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (dir.empty()) {
      dir = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (dir.empty()) return usage(argv[0]);
  if (interval_ms <= 0) interval_ms = 1000;

  telem::RateWindows rates;
  std::uint64_t last_ts = ~std::uint64_t{0};
  bool seen_any = false;
  while (true) {
    const std::optional<telem::Snapshot> snap = load_snapshot(dir);
    if (!snap) {
      if (!follow) {
        std::fprintf(stderr,
                     "no readable metrics.json or telemetry.json under %s\n",
                     dir.c_str());
        return 1;
      }
      std::fprintf(stderr, "waiting for %s ...\n", dir.c_str());
    } else {
      // Feed the ring only on fresh snapshots so a stalled exporter does
      // not flatten the derived rates with duplicate timestamps.
      if (snap->ts_ns != last_ts) {
        rates.push(*snap);
        last_ts = snap->ts_ns;
      }
      const std::vector<telem::Event> events =
          fuzz::load_journal(dir);
      if (follow && seen_any) std::printf("\n");
      render(*snap, rates, events, event_tail);
      seen_any = true;
    }
    if (!follow) break;
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return 0;
}
