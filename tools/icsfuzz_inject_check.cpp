// icsfuzz-inject-check — probes what a target binary supports under the
// out-of-process execution contract and prints one JSON report.
//
//   # a native protocol speaker (the shim)
//   icsfuzz-inject-check -- icsfuzz-shim-target
//
//   # a stock binary under the LD_PRELOAD injection runtime
//   icsfuzz-inject-check --preload ./libicsfuzz-preload.so -- ./some-server
//
// The report answers, per target: did the fork-server handshake complete
// and at which protocol version; is persistent mode advertised and active;
// did a benign probe packet execute and with what classification; how many
// instrumentation events / nonzero coverage cells did it produce; and —
// via the inject-info block the preload runtime publishes into the shm
// segment — whether a SanitizerCoverage bridge is live and how many guards
// the target registered (docs/INJECTION.md describes the block).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "coverage/instrument.hpp"
#include "exec_oop/oop_executor.hpp"
#include "inject/inject_protocol.hpp"
#include "util/strings.hpp"

namespace {

using namespace icsfuzz;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options] -- TARGET [ARGS...]\n"
               "  --preload PATH     spawn TARGET under the injection runtime"
               " (libicsfuzz-preload.so)\n"
               "  --timeout-ms N     probe execution deadline (default"
               " 2000)\n"
               "  --persistent K     request persistent mode with budget K"
               " (default off)\n",
               argv0);
  return 2;
}

std::size_t count_nonzero_cells(const std::uint64_t* words) {
  if (words == nullptr) return 0;
  std::size_t cells = 0;
  for (std::size_t w = 0; w < cov::kMapWords; ++w) {
    std::uint64_t word = words[w];
    while (word != 0) {
      cells += (word & 0xFF) != 0 ? 1 : 0;
      word >>= 8;
    }
  }
  return cells;
}

const char* json_bool(bool value) { return value ? "true" : "false"; }

}  // namespace

int main(int argc, char** argv) {
  oop::OopExecutorConfig config;
  config.exec_timeout_ms = 2000;

  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--") {
      ++i;
      break;
    } else if (arg == "--preload") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      config.preload = v;
    } else if (arg == "--timeout-ms") {
      const char* v = next();
      std::string error;
      const auto parsed = v != nullptr
                              ? parse_u64(v, "--timeout-ms", &error)
                              : std::nullopt;
      if (!parsed.has_value() || *parsed > INT32_MAX) {
        std::fprintf(stderr, "%s\n",
                     error.empty() ? "--timeout-ms: missing or out-of-range"
                                   : error.c_str());
        return 2;
      }
      config.exec_timeout_ms = static_cast<int>(*parsed);
    } else if (arg == "--persistent") {
      const char* v = next();
      std::string error;
      const auto parsed = v != nullptr
                              ? parse_u64(v, "--persistent", &error)
                              : std::nullopt;
      if (!parsed.has_value() || *parsed < 2 || *parsed > UINT32_MAX) {
        std::fprintf(stderr, "%s\n",
                     error.empty()
                         ? "--persistent: expected a budget of at least 2"
                         : error.c_str());
        return 2;
      }
      config.persistent_budget = static_cast<std::uint32_t>(*parsed);
    } else {
      return usage(argv[0]);
    }
  }
  for (; i < argc; ++i) config.target_cmd.emplace_back(argv[i]);
  if (config.target_cmd.empty()) return usage(argv[0]);

  oop::OutOfProcessExecutor executor(std::move(config));
  if (!executor.ensure_started()) {
    std::printf(
        "{\"tool\": \"inject-check\", \"started\": false, \"error\": "
        "\"%s\"}\n",
        executor.last_error().c_str());
    return 1;
  }

  // A benign probe: a well-formed 12-byte MBAP read request. Any target
  // that consumes stdin/slot bytes treats this as ordinary traffic; the
  // exact contents only matter for how much coverage it lights up.
  static const std::uint8_t kProbe[] = {0x00, 0x01, 0x00, 0x00, 0x00, 0x06,
                                        0x11, 0x03, 0x00, 0x6B, 0x00, 0x03};
  const oop::OutOfProcessExecutor::Outcome& outcome =
      executor.run(ByteSpan{kProbe, sizeof(kProbe)});

  const std::size_t cells = count_nonzero_cells(executor.map_words());
  const inject::InjectInfo info = inject::read_inject_info(
      executor.segment().data(), executor.segment().size());

  std::printf(
      "{\"tool\": \"inject-check\", \"started\": true, "
      "\"protocol_version\": %d, "
      "\"persistent_capable\": %s, \"persistent_active\": %s, "
      "\"probe_status\": \"%s\", \"term_signal\": %d, \"exit_code\": %d, "
      "\"events\": %llu, \"map_cells_nonzero\": %zu, "
      "\"inject_info\": {\"present\": %s, \"version\": %u, "
      "\"guard_count\": %u, \"sancov\": %s, \"persistent\": %s, "
      "\"tcp\": %s}}\n",
      executor.server().protocol_version(),
      json_bool(executor.server().persistent_capable()),
      json_bool(executor.persistent_active()),
      oop::to_string(outcome.status).c_str(), outcome.term_signal,
      outcome.exit_code,
      static_cast<unsigned long long>(outcome.aux.events), cells,
      json_bool(info.present), info.version, info.guard_count,
      json_bool(info.sancov()),
      json_bool((info.flags & inject::kInjectFlagPersistent) != 0),
      json_bool((info.flags & inject::kInjectFlagTcp) != 0));
  return 0;
}
