// icsfuzz-triage — CLI front end of the on-disk crash-triage store.
//
//   # fold a session's crash db into a store, re-verifying every reproducer
//   icsfuzz-triage ingest STORE --crashes SESSION/crashes.jsonl \
//       --project libmodbus [--minimize] [--no-verify]
//
//   # inspect the store
//   icsfuzz-triage list STORE
//   icsfuzz-triage show STORE BUCKET
//
//   # replay / shrink one bucket's reproducer against a live target
//   icsfuzz-triage repro STORE BUCKET --project libmodbus
//   icsfuzz-triage minimize STORE BUCKET --project libmodbus
//
// Every mode prints one JSON document to stdout; repro/ingest exit nonzero
// when a reproducer fails to reproduce, so the tool slots into CI gates.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "fuzzer/persistence.hpp"
#include "protocols/target_registry.hpp"
#include "supervise/triage_store.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace {

using namespace icsfuzz;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <command> <store-dir> [args] [options]\n"
      "  commands:\n"
      "    ingest STORE --crashes FILE --project P  fold a crashes.jsonl\n"
      "        into the store (re-verifies each reproducer; --no-verify\n"
      "        skips, --minimize tmin-shrinks verified reproducers)\n"
      "    list STORE                 all buckets, first-seen order\n"
      "    show STORE BUCKET          one bucket's full record\n"
      "    repro STORE BUCKET --project P     replay the reproducer\n"
      "    minimize STORE BUCKET --project P  replay + tmin-shrink\n"
      "  options:\n"
      "    --limit N          list/ingest: stop after N buckets/records\n"
      "  projects: libmodbus IEC104 libiec61850 lib60870 libiec_iccp_mod"
      " opendnp3\n",
      argv0);
  return 2;
}

void print_record(const supervise::TriageRecord& record,
                  const char* indent, const char* trailing) {
  std::printf(
      "%s{\"bucket\": \"%s\", \"kind\": \"%s\", \"site\": \"%08x\", "
      "\"trace_hash\": \"%016llx\", \"hits\": %llu, "
      "\"first_execution\": %llu, \"ingests\": %llu, \"verified\": %s, "
      "\"minimized\": %s, \"bytes\": %zu, \"original_bytes\": %zu, "
      "\"detail\": \"%s\"}%s\n",
      indent, record.bucket.c_str(), san::to_slug(record.kind).c_str(),
      record.site, static_cast<unsigned long long>(record.trace_hash),
      static_cast<unsigned long long>(record.hits),
      static_cast<unsigned long long>(record.first_execution),
      static_cast<unsigned long long>(record.ingests),
      record.verified ? "true" : "false",
      record.minimized ? "true" : "false", record.reproducer_bytes,
      record.original_bytes, json_escape(record.detail).c_str(), trailing);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  const std::string command = argv[1];
  const std::string store_dir = argv[2];

  std::string bucket;
  std::string crashes_path;
  std::string project;
  std::size_t limit = SIZE_MAX;
  bool minimize = false;
  bool verify = true;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--crashes") {
      if (const char* v = next()) crashes_path = v;
    } else if (arg == "--project") {
      if (const char* v = next()) project = v;
    } else if (arg == "--limit") {
      const char* v = next();
      std::string error;
      const auto parsed =
          v ? parse_u64(v, "--limit", &error) : std::nullopt;
      if (!parsed || *parsed == 0) {
        std::fprintf(stderr, "%s\n",
                     error.empty() ? "--limit: expected a positive count"
                                   : error.c_str());
        return usage(argv[0]);
      }
      limit = static_cast<std::size_t>(*parsed);
    } else if (arg == "--minimize") {
      minimize = true;
    } else if (arg == "--no-verify") {
      verify = false;
    } else if (arg[0] != '-' && bucket.empty()) {
      bucket = arg;
    } else {
      return usage(argv[0]);
    }
  }

  supervise::TriageStore store(store_dir);
  if (!store.open()) {
    std::fprintf(stderr, "cannot open store: %s\n", store.error().c_str());
    return 1;
  }

  if (command == "list") {
    std::printf("{\n  \"tool\": \"icsfuzz-triage\", \"mode\": \"list\", "
                "\"store\": \"%s\",\n  \"buckets\": [\n",
                json_escape(store_dir).c_str());
    const std::vector<supervise::TriageRecord>& records = store.records();
    const std::size_t shown = records.size() < limit ? records.size() : limit;
    for (std::size_t i = 0; i < shown; ++i) {
      print_record(records[i], "    ", i + 1 < shown ? "," : "");
    }
    std::printf("  ],\n  \"shown\": %zu, \"total\": %zu\n}\n", shown,
                records.size());
    return 0;
  }

  if (command == "show") {
    if (bucket.empty()) return usage(argv[0]);
    const supervise::TriageRecord* record = store.find(bucket);
    if (record == nullptr) {
      std::fprintf(stderr, "no bucket '%s'\n", bucket.c_str());
      return 1;
    }
    print_record(*record, "", "");
    return 0;
  }

  if (command == "ingest") {
    if (crashes_path.empty()) return usage(argv[0]);
    fuzz::TargetFactory factory;
    if (verify || minimize) {
      factory = proto::target_factory(project);
      if (!factory) {
        std::fprintf(stderr, "unknown --project '%s'\n", project.c_str());
        return usage(argv[0]);
      }
    }
    fuzz::CrashDb db;
    const std::size_t loaded = fuzz::load_crash_db(crashes_path, db);
    std::size_t fresh = 0;
    std::size_t failed = 0;
    std::printf("{\n  \"tool\": \"icsfuzz-triage\", \"mode\": \"ingest\", "
                "\"store\": \"%s\",\n  \"ingested\": [\n",
                json_escape(store_dir).c_str());
    const std::vector<const fuzz::CrashRecord*> records = db.records();
    const std::size_t taken = records.size() < limit ? records.size() : limit;
    for (std::size_t i = 0; i < taken; ++i) {
      const auto target = factory ? factory() : nullptr;
      const supervise::TriageStore::IngestOutcome outcome =
          store.ingest(*records[i], target.get(), minimize);
      fresh += outcome.is_new;
      failed += outcome.verify_failed;
      std::printf("    {\"bucket\": \"%s\", \"new\": %s, \"reproduced\": "
                  "%s, \"minimized\": %s}%s\n",
                  outcome.bucket.c_str(), outcome.is_new ? "true" : "false",
                  outcome.reproduced ? "true" : "false",
                  outcome.minimized ? "true" : "false",
                  i + 1 < taken ? "," : "");
    }
    std::printf("  ],\n  \"loaded\": %zu, \"new_buckets\": %zu, "
                "\"verify_failed\": %zu\n}\n",
                loaded, fresh, failed);
    return failed == 0 ? 0 : 1;
  }

  if (command == "repro" || command == "minimize") {
    if (bucket.empty()) return usage(argv[0]);
    const fuzz::TargetFactory factory = proto::target_factory(project);
    if (!factory) {
      std::fprintf(stderr, "unknown --project '%s'\n", project.c_str());
      return usage(argv[0]);
    }
    const auto target = factory();
    const auto outcome = store.reverify(bucket, *target,
                                        command == "minimize" || minimize);
    if (!outcome) {
      std::fprintf(stderr, "no bucket or reproducer for '%s'\n",
                   bucket.c_str());
      return 1;
    }
    const supervise::TriageRecord* record = store.find(bucket);
    std::printf("{\n  \"tool\": \"icsfuzz-triage\", \"mode\": \"%s\",\n  ",
                command.c_str());
    print_record(*record, "", ",");
    std::printf("  \"reproduced\": %s, \"minimized\": %s\n}\n",
                outcome->reproduced ? "true" : "false",
                outcome->minimized ? "true" : "false");
    return outcome->reproduced ? 0 : 1;
  }

  return usage(argv[0]);
}
