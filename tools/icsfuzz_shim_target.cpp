// icsfuzz-shim-target — fork-server harness over the instrumented
// protocol stacks.
//
//   icsfuzz-shim-target --project libmodbus
//   icsfuzz-shim-target --project IEC104 --tcp
//
// Spawned by the fuzzer's OutOfProcessExecutor (never by hand): attaches
// the shared-memory coverage segment named in the environment, performs
// the fork-server handshake on the inherited protocol descriptors, and
// serves executions — one fork per packet — against the named project's
// server (the same six stacks the in-process executor drives, which is
// what makes in-process vs out-of-process execution a built-in
// differential oracle).
//
// With --tcp the harness becomes a loopback *session* server instead
// (session/tcp_server.hpp): it binds an ephemeral 127.0.0.1 port,
// announces it over the status descriptor, and serves whole stateful
// sessions — one TCP connection each, reassembled with the project's
// message framing — for the kTcp session backend.
//
// ICSFUZZ_SHIM_* environment knobs inject deterministic faults (child
// kill / hang / server crash / no handshake) for the fork-server
// fault-injection suite; see exec_oop/shim_runner.hpp.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "exec_oop/exec_protocol.hpp"
#include "exec_oop/shim_runner.hpp"
#include "protocols/target_registry.hpp"
#include "session/framing.hpp"
#include "session/tcp_server.hpp"

int main(int argc, char** argv) {
  using namespace icsfuzz;

  std::string project;
  bool tcp = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--project") == 0 && i + 1 < argc) {
      project = argv[++i];
    } else if (std::strcmp(argv[i], "--tcp") == 0) {
      tcp = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s --project <name> [--tcp]\n"
                   "  projects: libmodbus IEC104 libiec61850 lib60870"
                   " libiec_iccp_mod opendnp3\n"
                   "  --tcp: serve stateful sessions over a loopback socket"
                   " instead of the fork-server protocol\n"
                   "  (spawned by the fuzzer's fork-server executor; expects"
                   " %s in the environment)\n",
                   argv[0], oop::kShmNameEnv);
      return 2;
    }
  }

  const auto factory = proto::target_factory(project);
  if (!factory) {
    std::fprintf(stderr, "unknown --project '%s'\n", project.c_str());
    return 2;
  }
  const std::unique_ptr<ProtocolTarget> target = factory();
  if (tcp) {
    return session::run_tcp_session_server(
        *target, session::framing_for_project(project));
  }
  return oop::run_shim_server(*target, oop::shim_fault_plan_from_env());
}
