// icsfuzz-shim-target — fork-server harness over the instrumented
// protocol stacks.
//
//   icsfuzz-shim-target --project libmodbus
//
// Spawned by the fuzzer's OutOfProcessExecutor (never by hand): attaches
// the shared-memory coverage segment named in the environment, performs
// the fork-server handshake on the inherited protocol descriptors, and
// serves executions — one fork per packet — against the named project's
// server (the same six stacks the in-process executor drives, which is
// what makes in-process vs out-of-process execution a built-in
// differential oracle).
//
// ICSFUZZ_SHIM_* environment knobs inject deterministic faults (child
// kill / hang / server crash / no handshake) for the fork-server
// fault-injection suite; see exec_oop/shim_runner.hpp.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "exec_oop/exec_protocol.hpp"
#include "exec_oop/shim_runner.hpp"
#include "protocols/target_registry.hpp"

int main(int argc, char** argv) {
  using namespace icsfuzz;

  std::string project;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--project") == 0 && i + 1 < argc) {
      project = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s --project <name>\n"
                   "  projects: libmodbus IEC104 libiec61850 lib60870"
                   " libiec_iccp_mod opendnp3\n"
                   "  (spawned by the fuzzer's fork-server executor; expects"
                   " %s in the environment)\n",
                   argv[0], oop::kShmNameEnv);
      return 2;
    }
  }

  const auto factory = proto::target_factory(project);
  if (!factory) {
    std::fprintf(stderr, "unknown --project '%s'\n", project.c_str());
    return 2;
  }
  const std::unique_ptr<ProtocolTarget> target = factory();
  return oop::run_shim_server(*target, oop::shim_fault_plan_from_env());
}
