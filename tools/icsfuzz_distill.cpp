// icsfuzz-distill — corpus distillation and deterministic replay CLI.
//
//   # minimize a saved session's seed corpus and write it back out
//   icsfuzz-distill --project libmodbus --session DIR --out DIR [--tmin]
//
//   # re-verify a distilled corpus against its MANIFEST.txt
//   icsfuzz-distill --project libmodbus --corpus DIR --verify
//
//   # replay a saved session's crash reproducers (triage)
//   icsfuzz-distill --project lib60870 --session DIR --replay-crashes
//
// Every mode prints one JSON document to stdout and exits nonzero on
// verification failure, so the tool slots directly into CI gates.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "distill/distill.hpp"
#include "distill/replay.hpp"
#include "fuzzer/persistence.hpp"
#include "protocols/target_registry.hpp"
#include "telemetry/clock.hpp"
#include "util/strings.hpp"

namespace {

using namespace icsfuzz;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --project <name> (--session DIR | --corpus DIR) [options]\n"
      "  projects: libmodbus IEC104 libiec61850 lib60870 libiec_iccp_mod"
      " opendnp3\n"
      "  modes (default: distill --session seeds into --out):\n"
      "    --verify          replay --corpus and check its MANIFEST.txt\n"
      "    --replay-crashes  replay --session crash reproducers\n"
      "  options:\n"
      "    --out DIR         write the distilled corpus here\n"
      "    --workers N       replay shards (default 1)\n"
      "    --tmin            trim each kept seed (trace-hash invariant)\n"
      "    --no-preserve-paths  cover edges only, not distinct paths\n"
      "    --target-cmd CMD  replay out of process through this fork-server\n"
      "                      target (e.g. 'icsfuzz-shim-target --project\n"
      "                      libmodbus'; split on spaces). Coverage comes\n"
      "                      from the shm map and is bit-identical to the\n"
      "                      in-process replay of the same stacks.\n"
      "    --persistent [K]  with --target-cmd: persistent-mode execution\n"
      "                      (K executions per child; default 1024). An old\n"
      "                      v1 target degrades to fork-per-exec.\n",
      argv0);
  return 2;
}

void print_report(const char* key, const distill::ReplayReport& report,
                  const char* trailing) {
  std::printf(
      "  \"%s\": {\"seeds\": %zu, \"edges\": %zu, \"paths\": %zu, "
      "\"crashes\": %zu, \"map_fingerprint\": \"%016llx\", "
      "\"path_fingerprint\": \"%016llx\"}%s\n",
      key, report.seeds, report.edges, report.paths, report.crashes,
      static_cast<unsigned long long>(report.map_fingerprint),
      static_cast<unsigned long long>(report.path_fingerprint), trailing);
}

}  // namespace

int main(int argc, char** argv) {
  std::string project;
  std::string session;
  std::string corpus_dir;
  std::string out;
  std::size_t workers = 1;
  bool verify = false;
  bool replay_crashes = false;
  bool trim = false;
  bool preserve_paths = true;
  fuzz::ExecutorConfig executor_config;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--project") {
      if (const char* v = next()) project = v;
    } else if (arg == "--session") {
      if (const char* v = next()) session = v;
    } else if (arg == "--corpus") {
      if (const char* v = next()) corpus_dir = v;
    } else if (arg == "--out") {
      if (const char* v = next()) out = v;
    } else if (arg == "--workers") {
      const char* v = next();
      std::string error;
      const auto parsed =
          v ? parse_u64(v, "--workers", &error) : std::nullopt;
      if (!parsed) {
        std::fprintf(stderr, "%s\n",
                     error.empty() ? "--workers: expected a count"
                                   : error.c_str());
        return usage(argv[0]);
      }
      workers = static_cast<std::size_t>(*parsed);
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--replay-crashes") {
      replay_crashes = true;
    } else if (arg == "--tmin") {
      trim = true;
    } else if (arg == "--no-preserve-paths") {
      preserve_paths = false;
    } else if (arg == "--target-cmd") {
      if (const char* v = next()) {
        // Split on spaces (the shim-style targets this drives take plain
        // flag arguments), dropping empty tokens from repeated spaces.
        for (std::string& token : split(v, ' ')) {
          if (!token.empty()) {
            executor_config.backend.target_cmd.push_back(std::move(token));
          }
        }
        if (executor_config.backend.kind == fuzz::BackendKind::kInProcess) {
          executor_config.backend.kind = fuzz::BackendKind::kForkPerExec;
        }
      }
    } else if (arg == "--persistent") {
      executor_config.backend.kind = fuzz::BackendKind::kPersistent;
      // Optional budget operand (a bare "--persistent" keeps the default).
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        std::string error;
        const auto parsed =
            parse_u64(argv[++i], "--persistent budget", &error);
        if (!parsed || *parsed == 0 || *parsed > UINT32_MAX) {
          std::fprintf(stderr, "%s\n",
                       error.empty() ? "--persistent budget: expected a "
                                       "positive 32-bit count"
                                     : error.c_str());
          return usage(argv[0]);
        }
        executor_config.backend.persistent_budget =
            static_cast<std::uint32_t>(*parsed);
      }
    } else {
      return usage(argv[0]);
    }
  }
  if (workers == 0) workers = 1;

  const fuzz::TargetFactory factory = proto::target_factory(project);
  if (!factory) {
    std::fprintf(stderr, "unknown --project '%s'\n", project.c_str());
    return usage(argv[0]);
  }

  if (replay_crashes) {
    if (session.empty()) return usage(argv[0]);
    const std::vector<fuzz::LoadedCrash> crashes =
        fuzz::load_crashes(session);
    std::size_t reproduced = 0;
    std::printf("{\n  \"tool\": \"icsfuzz-distill\", \"mode\": "
                "\"replay-crashes\", \"project\": \"%s\",\n  \"crashes\": [\n",
                project.c_str());
    for (std::size_t i = 0; i < crashes.size(); ++i) {
      const auto target = factory();
      const distill::CrashReplay replay = distill::replay_crash(
          *target, crashes[i].reproducer, executor_config);
      reproduced += replay.reproduced;
      std::printf("    {\"id\": \"%s\", \"reproduced\": %s}%s\n",
                  crashes[i].file_stem.c_str(),
                  replay.reproduced ? "true" : "false",
                  i + 1 < crashes.size() ? "," : "");
    }
    std::printf("  ],\n  \"total\": %zu, \"reproduced\": %zu\n}\n",
                crashes.size(), reproduced);
    return reproduced == crashes.size() ? 0 : 1;
  }

  if (verify) {
    if (corpus_dir.empty()) return usage(argv[0]);
    const fuzz::LoadedCorpus loaded = fuzz::load_distilled_corpus(corpus_dir);
    const distill::ReplayReport replayed = distill::replay_corpus_sharded(
        factory, loaded.seeds, workers, executor_config);
    // The manifest's crash and seed counts are part of the replay
    // contract, not just the coverage fingerprints.
    const bool matches = loaded.has_manifest &&
                         replayed.same_coverage(loaded.expected) &&
                         replayed.crashes == loaded.expected.crashes &&
                         replayed.seeds == loaded.expected.seeds;
    std::printf("{\n  \"tool\": \"icsfuzz-distill\", \"mode\": \"verify\", "
                "\"project\": \"%s\",\n", project.c_str());
    print_report("expected", loaded.expected, ",");
    print_report("replayed", replayed, ",");
    std::printf("  \"has_manifest\": %s, \"identical\": %s\n}\n",
                loaded.has_manifest ? "true" : "false",
                matches ? "true" : "false");
    return matches ? 0 : 1;
  }

  // Default mode: distill a session's seed corpus. The corpus is replayed
  // once for tracing; the `before` report derives from those traces.
  if (session.empty() && corpus_dir.empty()) return usage(argv[0]);
  std::vector<Bytes> seeds = session.empty()
                                 ? fuzz::load_distilled_corpus(corpus_dir).seeds
                                 : fuzz::load_seeds(session);
  // Phase timing off the telemetry clock: crack (trace collection) /
  // distill (cmin + optional tmin) / replay (final verification pass).
  telem::Clock clock;
  const std::uint64_t crack_start = clock.now_ns();
  const std::vector<distill::SeedTrace> traces =
      distill::collect_traces_sharded(factory, seeds, workers,
                                      executor_config);
  const distill::ReplayReport before = distill::report_from_traces(traces);
  const std::uint64_t distill_start = clock.now_ns();

  distill::CminConfig config;
  config.workers = workers;
  config.preserve_paths = preserve_paths;
  config.executor = executor_config;
  distill::CminResult result = distill::cmin_from_traces(traces, seeds, config);

  std::size_t trimmed_bytes = 0;
  if (trim) {
    const auto target = factory();
    distill::TminConfig tmin_config;
    tmin_config.executor = executor_config;
    for (Bytes& seed : result.seeds) {
      distill::TminResult trimmed = distill::tmin(*target, seed, tmin_config);
      trimmed_bytes += trimmed.bytes_before - trimmed.seed.size();
      seed = std::move(trimmed.seed);
    }
  }
  const std::uint64_t replay_start = clock.now_ns();

  const distill::ReplayReport after = distill::replay_corpus_sharded(
      factory, result.seeds, workers, executor_config);
  const std::uint64_t replay_end = clock.now_ns();
  const bool identical = preserve_paths ? before.same_coverage(after)
                                        : before.edges == after.edges &&
                                              before.map_fingerprint ==
                                                  after.map_fingerprint;

  std::printf("{\n  \"tool\": \"icsfuzz-distill\", \"mode\": \"distill\", "
              "\"project\": \"%s\",\n", project.c_str());
  std::printf("  \"seeds_before\": %zu, \"seeds_after\": %zu, "
              "\"reduction_pct\": %.2f, \"trimmed_bytes\": %zu,\n",
              result.stats.seeds_before, result.stats.seeds_after,
              result.stats.reduction_ratio() * 100.0, trimmed_bytes);
  print_report("before", before, ",");
  print_report("after", after, ",");
  std::printf("  \"phase_ms\": {\"crack\": %.1f, \"distill\": %.1f, "
              "\"replay\": %.1f},\n",
              static_cast<double>(distill_start - crack_start) / 1e6,
              static_cast<double>(replay_start - distill_start) / 1e6,
              static_cast<double>(replay_end - replay_start) / 1e6);
  std::printf("  \"coverage_identical\": %s\n}\n",
              identical ? "true" : "false");

  if (!out.empty()) {
    if (auto error = fuzz::save_distilled_corpus(out, result.seeds, after)) {
      std::fprintf(stderr, "save failed: %s\n", error->c_str());
      return 1;
    }
  }
  return identical ? 0 : 1;
}
