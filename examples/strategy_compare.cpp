// Strategy comparison: a miniature of the paper's §V-B experiment — Peach
// vs Peach* on two targets, same iteration budget, side-by-side paths /
// edges / crashes plus the derived speedup and path-increase metrics.
//
//   $ ./build/examples/strategy_compare [iterations] [repetitions]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "fuzzer/campaign.hpp"
#include "pits/pits.hpp"
#include "protocols/lib60870/cs101_server.hpp"
#include "protocols/modbus/modbus_server.hpp"

namespace {

template <typename Server>
void compare(const std::string& project,
             const icsfuzz::model::DataModelSet& models,
             std::uint64_t iterations, std::size_t repetitions) {
  using namespace icsfuzz::fuzz;
  CampaignConfig config;
  config.iterations = iterations;
  config.repetitions = repetitions;
  config.stats_interval = iterations / 40 == 0 ? 1 : iterations / 40;

  CampaignResult result = run_campaign(
      project, [] { return std::make_unique<Server>(); }, models, config);

  std::printf("%-18s | %10s | %10s\n", project.c_str(), "Peach", "Peach*");
  std::printf("  mean final paths | %10.1f | %10.1f\n",
              result.peach.mean_final_paths,
              result.peach_star.mean_final_paths);
  std::printf("  mean final edges | %10.1f | %10.1f\n",
              result.peach.mean_final_edges,
              result.peach_star.mean_final_edges);
  std::printf("  unique crashes   | %10zu | %10zu\n",
              result.peach.pooled_crashes.unique_memory_faults(),
              result.peach_star.pooled_crashes.unique_memory_faults());
  std::printf("  speedup to match baseline coverage: %.2fx\n",
              result.speedup());
  std::printf("  final path increase: %+.2f%%\n\n",
              result.path_increase_pct());
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t iterations =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 15000;
  const std::size_t repetitions =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  compare<icsfuzz::proto::ModbusServer>("libmodbus", icsfuzz::pits::modbus_pit(),
                                        iterations, repetitions);
  compare<icsfuzz::proto::Cs101Server>("lib60870", icsfuzz::pits::cs101_pit(),
                                       iterations, repetitions);
  return 0;
}
