// Crash triage: run Peach* against the two buggiest targets of the paper's
// Table I (lib60870 and libiec_iccp_mod), then triage every unique
// vulnerability — fault type, crash site, diagnostic, reproducer hexdump,
// and the data-model decomposition of the reproducer obtained by cracking
// it back through the pit.
//
//   $ ./build/examples/crash_triage [iterations]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "fuzzer/fuzzer.hpp"
#include "model/instantiation.hpp"
#include "pits/pits.hpp"
#include "protocols/iccp/iccp_server.hpp"
#include "protocols/lib60870/cs101_server.hpp"
#include "util/hexdump.hpp"

namespace {

void triage_project(icsfuzz::ProtocolTarget& target,
                    const icsfuzz::model::DataModelSet& models,
                    std::uint64_t iterations) {
  using namespace icsfuzz;
  std::printf("=== %.*s ===\n", static_cast<int>(target.name().size()),
              target.name().data());

  fuzz::FuzzerConfig config;
  config.strategy = fuzz::Strategy::PeachStar;
  config.rng_seed = 7;
  fuzz::Fuzzer fuzzer(target, models, config);
  fuzzer.run(iterations);

  std::printf("paths: %zu, unique crashes: %zu\n\n", fuzzer.path_count(),
              fuzzer.crashes().unique_count());

  for (const fuzz::CrashRecord* crash : fuzzer.crashes().records()) {
    std::printf("--- %s (site %08x), %llu hits, first at execution %llu\n",
                san::to_string(crash->kind).c_str(), crash->site,
                static_cast<unsigned long long>(crash->hits),
                static_cast<unsigned long long>(crash->first_execution));
    std::printf("    %s\n", crash->detail.c_str());
    std::printf("reproducer (%zu bytes):\n%s", crash->reproducer.size(),
                hexdump(crash->reproducer).c_str());

    // Crack the reproducer back through the pit so the analyst sees which
    // packet type it instantiates and the offending field values.
    for (const model::DataModel& data_model : models.models()) {
      auto tree = model::parse_packet(data_model, crash->reproducer);
      if (tree) {
        std::printf("parses as data model '%s':\n%s",
                    data_model.name().c_str(),
                    model::dump_tree(*tree).c_str());
        break;
      }
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t iterations =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 30000;

  icsfuzz::proto::Cs101Server cs101;
  triage_project(cs101, icsfuzz::pits::cs101_pit(), iterations);

  icsfuzz::proto::IccpServer iccp;
  triage_project(iccp, icsfuzz::pits::iccp_pit(), iterations);
  return 0;
}
