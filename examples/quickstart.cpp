// Quickstart: fuzz the Modbus/TCP stack with Peach* for a few thousand
// executions, print what the coverage-guided packet crack and generation
// loop achieved, and (optionally) save the session artefacts to disk.
//
//   $ ./build/examples/quickstart [iterations] [session-dir]
#include <cstdio>
#include <cstdlib>

#include "fuzzer/fuzzer.hpp"
#include "fuzzer/persistence.hpp"
#include "pits/pits.hpp"
#include "protocols/modbus/modbus_server.hpp"
#include "util/hexdump.hpp"

int main(int argc, char** argv) {
  using namespace icsfuzz;

  const std::uint64_t iterations =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;

  // 1. A target: the instrumented Modbus server.
  proto::ModbusServer server;

  // 2. A format specification: the built-in Modbus pit (one data model per
  //    function code, plus a session model and a coarse raw model).
  const model::DataModelSet models = pits::modbus_pit();
  std::printf("pit loaded: %zu data models\n", models.size());

  // 3. The fuzzer: Peach* strategy (coverage feedback + packet crack +
  //    semantic-aware generation).
  fuzz::FuzzerConfig config;
  config.strategy = fuzz::Strategy::PeachStar;
  config.rng_seed = 42;
  fuzz::Fuzzer fuzzer(server, models, config);

  fuzzer.run(iterations);

  // 4. Results.
  std::printf("executions      : %llu\n",
              static_cast<unsigned long long>(fuzzer.executor().executions()));
  std::printf("paths covered   : %zu\n", fuzzer.path_count());
  std::printf("edges covered   : %zu\n", fuzzer.executor().edge_count());
  std::printf("valuable seeds  : %zu\n", fuzzer.retained_seeds().size());
  std::printf("puzzle corpus   : %zu puzzles over %zu rules\n",
              fuzzer.corpus().size(), fuzzer.corpus().rule_count());
  std::printf("unique crashes  : %zu\n", fuzzer.crashes().unique_count());

  for (const fuzz::CrashRecord* crash : fuzzer.crashes().records()) {
    std::printf("\n[%s] site=%08x first seen at execution %llu\n",
                san::to_string(crash->kind).c_str(), crash->site,
                static_cast<unsigned long long>(crash->first_execution));
    std::printf("  %s\n", crash->detail.c_str());
    std::printf("%s", hexdump(crash->reproducer).c_str());
  }

  // 5. Optional: persist reproducers, seeds and stats for later triage.
  if (argc > 2) {
    if (auto error = fuzz::save_session(fuzzer, argv[2])) {
      std::fprintf(stderr, "session save failed: %s\n", error->c_str());
      return 1;
    }
    std::printf("\nsession saved to %s\n", argv[2]);
  }
  return 0;
}
