// Custom protocol walkthrough: everything a downstream user needs to fuzz
// their own stack —
//   1. write a pit in the XML dialect (or the typed builder API),
//   2. implement ProtocolTarget for the stack under test, instrumenting it
//      with ICSFUZZ_COV_BLOCK() and routing packet-derived memory accesses
//      through the soft sanitizer,
//   3. hand both to the Fuzzer.
//
// The example protocol is a small "HVAC setpoint controller": a magic
// header, a command byte, a zone id, a 16-bit setpoint and a Fletcher-16
// checksum. The controller contains one deliberately planted OOB read so
// the walkthrough ends with a found bug.
//
//   $ ./build/examples/custom_protocol [iterations]
#include <array>
#include <cstdio>
#include <cstdlib>

#include "coverage/instrument.hpp"
#include "fuzzer/fuzzer.hpp"
#include "model/pit_parser.hpp"
#include "sanitizer/guard.hpp"
#include "util/hexdump.hpp"

namespace {

using namespace icsfuzz;

// -- Step 1: the pit, in the XML dialect (see docs in pit_parser.hpp). ----
constexpr const char* kHvacPit = R"(
<Peach>
  <DataModel name="SetSetpoint" opcode="1">
    <Number name="Magic"   size="16" token="true" value="0x4856"/>
    <Number name="Command" size="8"  token="true" value="1"/>
    <Number name="Zone"    size="8"  tag="hvac-zone" value="0"/>
    <Number name="Setpoint" size="16" tag="hvac-setpoint" value="2150"/>
    <Number name="Check"   size="16">
      <Fixup class="Fletcher16Fixup" ref="Zone"/>
    </Number>
  </DataModel>
  <DataModel name="ReadZone" opcode="2">
    <Number name="Magic"   size="16" token="true" value="0x4856"/>
    <Number name="Command" size="8"  token="true" value="2"/>
    <Number name="Zone"    size="8"  tag="hvac-zone" value="0"/>
  </DataModel>
</Peach>
)";

// -- Step 2: the target. --------------------------------------------------
class HvacController final : public ProtocolTarget {
 public:
  [[nodiscard]] std::string_view name() const override { return "hvac"; }

  void reset() override { setpoints_.fill(2100); }

  Bytes process(ByteSpan packet) override {
    ICSFUZZ_COV_BLOCK();
    ByteReader reader(packet);
    if (reader.read_u16(Endian::Big) != 0x4856) {
      ICSFUZZ_COV_BLOCK();
      return {};
    }
    const std::uint8_t command = reader.read_u8();
    const std::uint8_t zone = reader.read_u8();
    if (!reader.ok()) return {};
    if (command == 1) {
      ICSFUZZ_COV_BLOCK();  // set setpoint
      const std::uint16_t setpoint = reader.read_u16(Endian::Big);
      if (!reader.ok() || zone >= setpoints_.size()) return {};
      if (setpoint < 1500 || setpoint > 3000) {
        ICSFUZZ_COV_BLOCK();  // refused: outside safe range
        return Bytes{0xEE};
      }
      ICSFUZZ_COV_BLOCK();
      setpoints_[zone] = setpoint;
      return Bytes{0x01, zone};
    }
    if (command == 2) {
      ICSFUZZ_COV_BLOCK();  // read zone
      // Planted bug: the zone id indexes the setpoint table unchecked.
      san::GuardedSpan table(
          ByteSpan(reinterpret_cast<const std::uint8_t*>(setpoints_.data()),
                   setpoints_.size() * 2),
          san::site_id("hvac-zone-oob"), "setpoint table");
      const std::uint8_t low = table.at(static_cast<std::size_t>(zone) * 2);
      if (san::FaultSink::tripped()) return {};
      return Bytes{0x02, zone, low};
    }
    ICSFUZZ_COV_BLOCK();
    return {};
  }

 private:
  std::array<std::uint16_t, 8> setpoints_{};
};

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t iterations =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5000;

  // Parse the pit.
  model::PitParseResult pit = model::parse_pit(kHvacPit);
  if (!pit.ok()) {
    std::fprintf(stderr, "pit error: %s\n", pit.error.c_str());
    return 1;
  }
  std::printf("pit loaded: %zu models\n", pit.models.size());

  // Step 3: fuzz.
  HvacController controller;
  fuzz::FuzzerConfig config;
  config.strategy = fuzz::Strategy::PeachStar;
  config.rng_seed = 3;
  fuzz::Fuzzer fuzzer(controller, pit.models, config);
  fuzzer.run(iterations);

  std::printf("paths covered : %zu\n", fuzzer.path_count());
  std::printf("unique crashes: %zu\n", fuzzer.crashes().unique_count());
  for (const fuzz::CrashRecord* crash : fuzzer.crashes().records()) {
    std::printf("[%s] %s\nreproducer:\n%s",
                san::to_string(crash->kind).c_str(), crash->detail.c_str(),
                hexdump(crash->reproducer).c_str());
  }
  return 0;
}
