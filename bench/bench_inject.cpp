// Injection-runtime bench: throughput and fidelity of fuzzing a foreign
// binary (demo/, never linked against icsfuzz) through LD_PRELOAD of
// libicsfuzz-preload.so, reported as one JSON document for the
// bench-regression gate.
//
// Arms, all over the same deterministic libmodbus packet pool:
//
//   * injected fork-per-exec — fuzz::Executor with an out-of-process
//     backend pointing at the instrumented demo server under the preload:
//     every execution pays the injected fork server's fork(), the MBAP
//     parse, the sancov sweep and the fused analysis.
//     `injected_execs_per_sec` is floored by the baseline.
//
//   * injected persistent — the same backend in persistent mode (the
//     preload's cooperation hooks drive shm packet slots): the per-exec
//     fork() disappears and `injected_persistent_execs_per_sec` must clear
//     an absolute floor plus a relative one (`persistent_speedup`).
//
//   * plain fork-per-exec — the uninstrumented demo under the same
//     preload: the fault-driven degrade row. Reported as
//     `plain_execs_per_sec` for context (no gate — it tracks the
//     instrumented arm minus the sancov sweep).
//
// Boolean gates folded in:
//
//   * `sancov_edges_observed` — the instrumented arm must surface events
//     and nonzero CoverageMap cells (the bridge actually feeds feedback),
//   * `persistent_mode_active` — the cooperation hooks engaged,
//   * `matches_shim_classification` — the crash/hang/OOM differential of
//     tests/test_inject.cpp as a continuously-gated bench invariant: the
//     demo's real fault endpoints (FC 0x66/0x67/0x68) classify bit for bit
//     like the shim's synthetic faults at the ExecResult level.
//
// Budget knobs:
//   ICSFUZZ_BENCH_INJECT_EXECS             executions per fork-per-exec arm
//                                          (default 3000)
//   ICSFUZZ_BENCH_INJECT_PERSISTENT_EXECS  executions for the persistent arm
//                                          (default 20000)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "coverage/coverage_map.hpp"
#include "exec_oop/oop_executor.hpp"
#include "fuzzer/executor.hpp"
#include "inject/inject_protocol.hpp"
#include "model/instantiation.hpp"
#include "mutation/mutator.hpp"
#include "pits/pits.hpp"
#include "protocols/target_registry.hpp"
#include "util/rng.hpp"

namespace {

using namespace icsfuzz;
using Clock = std::chrono::steady_clock;

// Generous deadline for the non-hang arms (a scheduler stall on a loaded
// runner must not turn a healthy exec into a Hang fault); tight deadline
// for the hang differential, identical on both arms so the synthetic
// fault's detail string matches bit for bit.
constexpr int kBenchTimeoutMs = 30000;
constexpr int kHangTimeoutMs = 1000;
/// Address-space jail for the OOM differential, both arms.
constexpr std::uint64_t kOomJailMb = 256;

const char* preload_path() {
  if (const char* env = std::getenv("ICSFUZZ_PRELOAD")) return env;
  return ICSFUZZ_PRELOAD_PATH;
}

const char* demo_path() {
  if (const char* env = std::getenv("ICSFUZZ_DEMO_SERVER")) return env;
  return ICSFUZZ_DEMO_SERVER_PATH;
}

const char* demo_plain_path() {
  if (const char* env = std::getenv("ICSFUZZ_DEMO_SERVER_PLAIN")) return env;
  return ICSFUZZ_DEMO_SERVER_PLAIN_PATH;
}

/// Deterministic packet pool: the same fixed-seed libmodbus mix the
/// oop_exec bench replays. The demo speaks MBAP framing, so mutated
/// frames exercise its parse/reject paths exactly like a campaign would.
std::vector<Bytes> make_packets() {
  const model::DataModelSet models = pits::pit_for_project("libmodbus");
  const mutation::MutatorSuite mutators;
  Rng rng(0xBE7C);
  std::vector<Bytes> packets;
  for (const model::DataModel& model : models.models()) {
    Bytes base = model::default_instance(model).serialize();
    for (int m = 0; m < 7; ++m) {
      packets.push_back(mutators.mutate_bytes(base, rng));
    }
    packets.push_back(std::move(base));
  }
  return packets;
}

/// Benign MBAP read-holding-registers exchange (FC 0x03).
const Bytes kBenign = {0x00, 0x01, 0x00, 0x00, 0x00, 0x06,
                       0x11, 0x03, 0x00, 0x6B, 0x00, 0x03};

/// Minimal frame carrying one of the demo's deliberate fault endpoints.
Bytes fault_frame(std::uint8_t fc) {
  return {0x00, 0x09, 0x00, 0x00, 0x00, 0x02, 0x11, fc};
}
constexpr std::uint8_t kFaultCrash = 0x66;
constexpr std::uint8_t kFaultHang = 0x67;
constexpr std::uint8_t kFaultOom = 0x68;

fuzz::ExecutorConfig injected_config(const char* binary,
                                     fuzz::BackendKind kind,
                                     int timeout_ms = kBenchTimeoutMs,
                                     std::uint64_t jail_mb = 0) {
  fuzz::ExecutorConfig config;
  config.backend.kind = kind;
  config.backend.target_cmd = {binary};
  config.backend.preload = preload_path();
  config.backend.exec_timeout_ms = timeout_ms;
  config.backend.jail.address_space_mb = jail_mb;
  return config;
}

fuzz::ExecutorConfig shim_config(int timeout_ms,
                                 std::uint64_t jail_mb = 0) {
  fuzz::ExecutorConfig config;
  config.backend.kind = fuzz::BackendKind::kForkPerExec;
  config.backend.target_cmd = {ICSFUZZ_SHIM_PATH, "--project", "libmodbus"};
  config.backend.exec_timeout_ms = timeout_ms;
  config.backend.jail.address_space_mb = jail_mb;
  return config;
}

struct ArmResult {
  double seconds = 0.0;
  std::uint64_t checksum = 0;
};

std::uint64_t fold(std::uint64_t checksum, const fuzz::ExecResult& result) {
  return checksum * 0x100000001B3ULL ^
         (result.trace_hash + result.trace_edges +
          (result.new_coverage ? 1 : 0) + result.faults.size());
}

ArmResult run_arm(fuzz::Executor& executor, ProtocolTarget& target,
                  const std::vector<Bytes>& packets, std::size_t execs) {
  fuzz::ExecResult result;
  ArmResult arm;
  const auto start = Clock::now();
  for (std::size_t i = 0; i < execs; ++i) {
    executor.run_into(target, packets[i % packets.size()], result);
    arm.checksum = fold(arm.checksum, result);
  }
  arm.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return arm;
}

/// Persistent arm through run_batch — the pipelined dispatch path.
ArmResult run_batch_arm(fuzz::Executor& executor, ProtocolTarget& target,
                        const std::vector<Bytes>& packets,
                        std::size_t execs) {
  ArmResult arm;
  const std::size_t rounds = execs / packets.size();
  const std::vector<Bytes> remainder(packets.begin(),
                                     packets.begin() +
                                         (execs % packets.size()));
  const auto start = Clock::now();
  for (std::size_t round = 0; round < rounds; ++round) {
    executor.run_batch(target, packets,
                       [&](std::size_t, const fuzz::ExecResult& result) {
                         arm.checksum = fold(arm.checksum, result);
                       });
  }
  executor.run_batch(target, remainder,
                     [&](std::size_t, const fuzz::ExecResult& result) {
                       arm.checksum = fold(arm.checksum, result);
                     });
  arm.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return arm;
}

std::size_t nonzero_cells(const std::uint64_t* words) {
  std::size_t cells = 0;
  for (std::size_t w = 0; w < cov::kMapWords; ++w) {
    std::uint64_t word = words[w];
    while (word != 0) {
      cells += (word & 0xFF) != 0;
      word >>= 8;
    }
  }
  return cells;
}

/// Sancov-bridge gate: one benign exec against the instrumented demo must
/// surface events, nonzero map cells, and an info block advertising sancov.
bool probe_sancov_edges() {
  oop::OopExecutorConfig config;
  config.target_cmd = {demo_path()};
  config.preload = preload_path();
  config.exec_timeout_ms = kBenchTimeoutMs;
  oop::OutOfProcessExecutor executor(config);
  const oop::OutOfProcessExecutor::Outcome& outcome = executor.run(kBenign);
  if (outcome.status != oop::ExecStatus::kOk || outcome.aux.events == 0) {
    return false;
  }
  if (nonzero_cells(executor.map_words()) == 0) return false;
  const inject::InjectInfo info = inject::read_inject_info(
      executor.segment().data(), executor.segment().size());
  return info.present && info.sancov();
}

/// Runs `packet` once through a fresh fuzz::Executor and returns a copy of
/// the classified result.
fuzz::ExecResult classify(fuzz::ExecutorConfig config, ByteSpan packet) {
  const std::unique_ptr<ProtocolTarget> placeholder =
      proto::target_factory("libmodbus")();
  fuzz::Executor executor(std::move(config));
  return executor.run(*placeholder, packet);
}

bool same_classification(const fuzz::ExecResult& demo,
                         const fuzz::ExecResult& shim) {
  if (!demo.crashed() || demo.crashed() != shim.crashed()) return false;
  if (demo.faults.size() != shim.faults.size()) return false;
  for (std::size_t i = 0; i < demo.faults.size(); ++i) {
    if (demo.faults[i].kind != shim.faults[i].kind ||
        demo.faults[i].site != shim.faults[i].site ||
        demo.faults[i].detail != shim.faults[i].detail) {
      return false;
    }
  }
  return true;
}

/// Shim arm under one fault-plan knob; the env var is scoped to the call
/// so the throughput arms never see a fault plan.
fuzz::ExecResult classify_shim_with(const char* knob, int timeout_ms,
                                    std::uint64_t jail_mb = 0) {
  ::setenv(knob, "1", 1);
  fuzz::ExecResult result =
      classify(shim_config(timeout_ms, jail_mb), kBenign);
  ::unsetenv(knob);
  return result;
}

/// The test_inject.cpp fault differential as a bench gate: the demo's real
/// crash/hang/OOM endpoints must classify exactly like the shim's
/// synthetic ones — FaultKind, site, and detail string all equal.
bool probe_shim_differential() {
  const fuzz::ExecResult demo_crash =
      classify(injected_config(demo_path(), fuzz::BackendKind::kForkPerExec),
               fault_frame(kFaultCrash));
  if (!same_classification(
          demo_crash,
          classify_shim_with("ICSFUZZ_SHIM_SEGV_AT", kBenchTimeoutMs))) {
    return false;
  }

  const fuzz::ExecResult demo_hang =
      classify(injected_config(demo_path(), fuzz::BackendKind::kForkPerExec,
                               kHangTimeoutMs),
               fault_frame(kFaultHang));
  if (!same_classification(
          demo_hang,
          classify_shim_with("ICSFUZZ_SHIM_HANG_AT", kHangTimeoutMs))) {
    return false;
  }

  const fuzz::ExecResult demo_oom =
      classify(injected_config(demo_path(), fuzz::BackendKind::kForkPerExec,
                               kBenchTimeoutMs, kOomJailMb),
               fault_frame(kFaultOom));
  return same_classification(
      demo_oom, classify_shim_with("ICSFUZZ_SHIM_OOM_AT", kBenchTimeoutMs,
                                   kOomJailMb));
}

}  // namespace

int main() {
  const std::size_t execs = static_cast<std::size_t>(
      bench::env_u64("ICSFUZZ_BENCH_INJECT_EXECS", 3000));
  const std::size_t persistent_execs = static_cast<std::size_t>(
      bench::env_u64("ICSFUZZ_BENCH_INJECT_PERSISTENT_EXECS", 20000));
  const std::vector<Bytes> packets = make_packets();

  const auto factory = proto::target_factory("libmodbus");
  const std::unique_ptr<ProtocolTarget> placeholder = factory();

  fuzz::Executor injected_executor(
      injected_config(demo_path(), fuzz::BackendKind::kForkPerExec));
  fuzz::Executor persistent_executor(
      injected_config(demo_path(), fuzz::BackendKind::kPersistent));
  fuzz::Executor plain_executor(
      injected_config(demo_plain_path(), fuzz::BackendKind::kForkPerExec));

  // Warm-up: spawn the injected fork servers, converge buffer capacities,
  // saturate the virgin maps so all arms measure steady state.
  run_arm(injected_executor, *placeholder, packets, 128);
  run_batch_arm(persistent_executor, *placeholder, packets, 128);
  run_arm(plain_executor, *placeholder, packets, 128);

  const ArmResult injected =
      run_arm(injected_executor, *placeholder, packets, execs);
  const ArmResult plain =
      run_arm(plain_executor, *placeholder, packets, execs);
  const ArmResult persistent = run_batch_arm(persistent_executor,
                                             *placeholder, packets,
                                             persistent_execs);

  const auto* injected_backend = injected_executor.oop_backend();
  const auto* persistent_backend = persistent_executor.oop_backend();
  const std::uint64_t restarts =
      injected_backend != nullptr ? injected_backend->server_restarts() : 0;
  const std::uint64_t persistent_restarts =
      persistent_backend != nullptr ? persistent_backend->server_restarts()
                                    : 0;
  const bool persistent_active =
      persistent_backend != nullptr && persistent_backend->persistent_active();

  const bool sancov_edges = probe_sancov_edges();
  const bool matches_shim = probe_shim_differential();

  const double injected_rate =
      injected.seconds > 0.0
          ? static_cast<double>(execs) / injected.seconds
          : 0.0;
  const double plain_rate =
      plain.seconds > 0.0 ? static_cast<double>(execs) / plain.seconds : 0.0;
  const double persistent_rate =
      persistent.seconds > 0.0
          ? static_cast<double>(persistent_execs) / persistent.seconds
          : 0.0;

  std::printf("{\n  \"bench\": \"inject\",\n");
  std::printf("  \"execs_per_arm\": %zu,\n", execs);
  std::printf("  \"injected_execs_per_sec\": %.0f,\n", injected_rate);
  std::printf("  \"plain_execs_per_sec\": %.0f,\n", plain_rate);
  std::printf("  \"persistent_execs\": %zu,\n", persistent_execs);
  std::printf("  \"injected_persistent_execs_per_sec\": %.0f,\n",
              persistent_rate);
  std::printf("  \"persistent_speedup\": %.2f,\n",
              injected_rate > 0.0 ? persistent_rate / injected_rate : 0.0);
  std::printf("  \"persistent_mode_active\": %s,\n",
              persistent_active ? "true" : "false");
  std::printf("  \"sancov_edges_observed\": %s,\n",
              sancov_edges ? "true" : "false");
  std::printf("  \"matches_shim_classification\": %s,\n",
              matches_shim ? "true" : "false");
  std::printf("  \"server_restarts\": %llu,\n",
              static_cast<unsigned long long>(restarts));
  std::printf("  \"persistent_server_restarts\": %llu,\n",
              static_cast<unsigned long long>(persistent_restarts));
  std::printf("  \"checksum\": %llu\n}\n",
              static_cast<unsigned long long>(injected.checksum & 0xFFFF));
  return sancov_edges && matches_shim && persistent_active &&
                 restarts == 0 && persistent_restarts == 0
             ? 0
             : 1;
}
