// Execution hot-path microbench: isolates the two costs the sparse
// overhaul removed from every execution and reports them as one JSON
// document for the bench-regression gate.
//
//   * Map ops A/B — identical synthetic traces (three edge densities)
//     replayed through the dense full-map reference
//     (begin_execution_dense + finalize_execution_dense: memset + ~5 whole
//     64 KiB sweeps per exec) and through the sparse dirty-word path
//     (begin_execution + fused finalize_execution: O(touched words)).
//     `speedup_vs_dense` is the hardware-independent headline — both arms
//     run the same workload on the same machine, so the ratio gates
//     regressions without caring how fast the CI runner is.
//
//   * SIMD kernel A/B — the same traces replayed through the sparse path
//     twice, once with the scalar reference kernel pinned and once with the
//     best kernel the build + CPU support (coverage/simd.hpp), timing only
//     the analysis windows (begin_execution + finalize_execution; the trace
//     emission between them is identical in both arms and excluded).
//     `speedup_vs_scalar_sparse` is the vectorization headline, and the two
//     arms' trace hashes/edge counts are folded into checksums that must
//     match exactly (`simd_matches_scalar`) — the kernels are required to be
//     bit-identical, not just fast.
//
//   * Packet-pipeline allocations — a counting global allocator measures
//     steady-state heap allocations per Executor::run_into on an
//     allocation-free stub target (must be 0), and per stacked
//     mutate_bytes_into ping-pong iteration (must be 0).
//
//   * Path-tracker probe A/B — the campaign-shaped record() stream (a few
//     percent fresh hashes, the rest repeats of the resident set) through
//     the open-addressing PathTracker and through a std::unordered_set
//     reference. `path_record_ops_per_sec` floors the absolute rate and
//     `path_probe_speedup_vs_set` is the hardware-independent gate on the
//     table rewrite.
//
// Budget knobs:
//   ICSFUZZ_BENCH_HOTPATH_EXECS   executions per density tier (default 3000)
#include <chrono>
#include <cstdio>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "counting_allocator.hpp"
#include "coverage/coverage_map.hpp"
#include "coverage/path_tracker.hpp"
#include "coverage/simd.hpp"
#include "fuzzer/executor.hpp"
#include "mutation/mutator.hpp"
#include "util/rng.hpp"

namespace {

using icsfuzz::bench_alloc::g_allocations;

using namespace icsfuzz;
using Clock = std::chrono::steady_clock;

/// One synthetic execution: (cell, raw count) pairs to emit via cov::hit.
using Trace = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

/// Bumps exactly `cell` (solves the instrumentation update rule).
inline void emit_cell(std::uint32_t cell) {
  cov::hit(cell ^ cov::tls_prev_location);
}

std::vector<Trace> make_traces(std::size_t execs, std::size_t edges,
                               std::uint64_t seed) {
  // Cells come from a bounded pool so the virgin map saturates after the
  // first executions — the steady-state (no-new-coverage) regime a long
  // campaign spends nearly all its time in.
  Rng rng(seed);
  std::vector<std::uint32_t> pool(8 * edges);
  for (std::uint32_t& cell : pool) {
    cell = static_cast<std::uint32_t>(rng.below(cov::kMapSize));
  }
  std::vector<Trace> traces(execs);
  for (Trace& trace : traces) {
    trace.reserve(edges);
    for (std::size_t e = 0; e < edges; ++e) {
      trace.push_back({pool[rng.index(pool.size())],
                       static_cast<std::uint32_t>(1 + rng.below(4))});
    }
  }
  return traces;
}

template <typename Begin, typename Finalize>
double time_arm(cov::CoverageMap& map, const std::vector<Trace>& traces,
                Begin begin, Finalize finalize, std::uint64_t& sink) {
  const auto start = Clock::now();
  for (const Trace& trace : traces) {
    begin(map);
    for (const auto& [cell, count] : trace) {
      for (std::uint32_t i = 0; i < count; ++i) emit_cell(cell);
    }
    const cov::TraceSummary summary = finalize(map);
    sink ^= summary.trace_hash + summary.trace_edges;
  }
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Times only the map-analysis windows (begin + finalize) of a sparse-path
/// replay, excluding the emit loop both kernel arms share.
double time_analysis(cov::CoverageMap& map, const std::vector<Trace>& traces,
                     std::uint64_t& sink) {
  double total = 0.0;
  for (const Trace& trace : traces) {
    const auto begin_start = Clock::now();
    map.begin_execution();
    total += std::chrono::duration<double>(Clock::now() - begin_start).count();
    for (const auto& [cell, count] : trace) {
      for (std::uint32_t i = 0; i < count; ++i) emit_cell(cell);
    }
    const auto finalize_start = Clock::now();
    const cov::TraceSummary summary = map.finalize_execution();
    total +=
        std::chrono::duration<double>(Clock::now() - finalize_start).count();
    sink ^= summary.trace_hash + summary.trace_edges;
  }
  return total;
}

/// Allocation-free stub target for the executor-pipeline measurement.
class StubTarget final : public ProtocolTarget {
 public:
  [[nodiscard]] std::string_view name() const override { return "stub"; }
  void reset() override {}
  Bytes process(ByteSpan packet) override {
    Bytes response;
    process_into(packet, response);
    return response;
  }
  void process_into(ByteSpan packet, Bytes& response) override {
    for (const std::uint8_t byte : packet) {
      cov::hit(static_cast<std::uint32_t>(byte) * 977u + 13u);
    }
    response.assign(packet.begin(), packet.end());
  }
};

}  // namespace

int main() {
  const std::size_t execs = static_cast<std::size_t>(
      bench::env_u64("ICSFUZZ_BENCH_HOTPATH_EXECS", 3000));
  const std::size_t densities[] = {32, 256, 1024};

  // -- Map ops A/B. -------------------------------------------------------
  double dense_seconds = 0.0;
  double sparse_seconds = 0.0;
  double per_density_speedup[3] = {0, 0, 0};
  std::uint64_t sink = 0;
  std::size_t tier = 0;
  for (const std::size_t edges : densities) {
    const std::vector<Trace> traces = make_traces(execs, edges, 1000 + edges);
    cov::CoverageMap sparse_map;
    cov::CoverageMap dense_map;
    // Warm both arms (page in maps, saturate virgin bits) with a slice.
    std::uint64_t warm_sink = 0;
    const std::vector<Trace> warmup(traces.begin(),
                                    traces.begin() +
                                        static_cast<std::ptrdiff_t>(
                                            std::min<std::size_t>(64, execs)));
    time_arm(
        sparse_map, warmup, [](cov::CoverageMap& m) { m.begin_execution(); },
        [](cov::CoverageMap& m) { return m.finalize_execution(); }, warm_sink);
    time_arm(
        dense_map, warmup,
        [](cov::CoverageMap& m) { m.begin_execution_dense(); },
        [](cov::CoverageMap& m) { return m.finalize_execution_dense(); },
        warm_sink);

    const double sparse = time_arm(
        sparse_map, traces, [](cov::CoverageMap& m) { m.begin_execution(); },
        [](cov::CoverageMap& m) { return m.finalize_execution(); }, sink);
    const double dense = time_arm(
        dense_map, traces,
        [](cov::CoverageMap& m) { m.begin_execution_dense(); },
        [](cov::CoverageMap& m) { return m.finalize_execution_dense(); },
        sink);
    sparse_seconds += sparse;
    dense_seconds += dense;
    per_density_speedup[tier++] = sparse > 0.0 ? dense / sparse : 0.0;
  }
  const double total_map_execs =
      static_cast<double>(execs) * std::size(densities);
  const double speedup =
      sparse_seconds > 0.0 ? dense_seconds / sparse_seconds : 0.0;

  // -- SIMD kernel A/B: scalar reference vs best kernel, sparse path. -----
  const cov::simd::Kernel best_kernel = cov::simd::best_kernel();
  double scalar_analysis_seconds = 0.0;
  double simd_analysis_seconds = 0.0;
  double per_density_simd_speedup[3] = {0, 0, 0};
  std::uint64_t scalar_sink = 0;
  std::uint64_t simd_sink = 0;
  tier = 0;
  for (const std::size_t edges : densities) {
    const std::vector<Trace> traces = make_traces(execs, edges, 2000 + edges);
    cov::CoverageMap scalar_map;
    scalar_map.use_kernel(cov::simd::Kernel::kScalar);
    cov::CoverageMap simd_map;
    simd_map.use_kernel(best_kernel);
    const std::vector<Trace> warmup(traces.begin(),
                                    traces.begin() +
                                        static_cast<std::ptrdiff_t>(
                                            std::min<std::size_t>(64, execs)));
    std::uint64_t warm_sink = 0;
    time_analysis(scalar_map, warmup, warm_sink);
    time_analysis(simd_map, warmup, warm_sink);

    const double scalar = time_analysis(scalar_map, traces, scalar_sink);
    const double simd = time_analysis(simd_map, traces, simd_sink);
    scalar_analysis_seconds += scalar;
    simd_analysis_seconds += simd;
    per_density_simd_speedup[tier++] = simd > 0.0 ? scalar / simd : 0.0;
  }
  const bool simd_matches_scalar = scalar_sink == simd_sink;
  const double simd_speedup = simd_analysis_seconds > 0.0
                                  ? scalar_analysis_seconds /
                                        simd_analysis_seconds
                                  : 0.0;

  // -- Merge A/B: steady-state worker-to-exchange folds, scalar vs SIMD. --
  // Source map with saturated coverage; destination already holds it, so
  // every merge is the "peer has nothing new" case a syncing campaign spends
  // nearly all its time in.
  double merge_speedup = 0.0;
  {
    cov::CoverageMap source;
    const std::vector<Trace> traces = make_traces(256, 1024, 7777);
    std::uint64_t warm_sink = 0;
    time_analysis(source, traces, warm_sink);
    const std::size_t merge_iters = 2000;
    double seconds[2] = {0, 0};
    int arm = 0;
    for (const cov::simd::Kernel kind :
         {cov::simd::Kernel::kScalar, best_kernel}) {
      cov::CoverageMap dst;
      dst.use_kernel(kind);
      dst.merge(source);  // after this, merges add nothing
      const auto start = Clock::now();
      bool added = false;
      for (std::size_t i = 0; i < merge_iters; ++i) added |= dst.merge(source);
      seconds[arm++] =
          std::chrono::duration<double>(Clock::now() - start).count();
      if (added) std::fprintf(stderr, "merge steady state added bits?\n");
    }
    merge_speedup = seconds[1] > 0.0 ? seconds[0] / seconds[1] : 0.0;
  }

  // -- Path-tracker probe A/B: open addressing vs unordered_set. ----------
  // A long campaign's record() stream: the resident path set grows to a
  // few tens of thousands while the overwhelming majority of executions
  // replay known paths — the probe-miss-free regime both stores spend
  // their time in.
  double path_record_ops_per_sec = 0.0;
  double path_probe_speedup = 0.0;
  {
    const std::size_t resident = 50000;
    const std::size_t probes = 2000000;
    std::vector<std::uint64_t> stream;
    stream.reserve(probes);
    Rng rng(0x9A7B);
    for (std::size_t i = 0; i < probes; ++i) {
      // ~3% fresh hashes, the rest repeats from the resident set.
      stream.push_back(rng.chance(3, 100)
                           ? rng.next_u64()
                           : mix64(rng.below(resident)));
    }
    cov::PathTracker tracker;
    std::unordered_set<std::uint64_t> reference;
    for (std::size_t i = 0; i < resident; ++i) {
      tracker.record(mix64(i));
      reference.insert(mix64(i));
    }
    std::size_t tracker_new = 0;
    const auto tracker_start = Clock::now();
    for (const std::uint64_t hash : stream) {
      tracker_new += tracker.record(hash) ? 1 : 0;
    }
    const double tracker_seconds =
        std::chrono::duration<double>(Clock::now() - tracker_start).count();
    std::size_t set_new = 0;
    const auto set_start = Clock::now();
    for (const std::uint64_t hash : stream) {
      set_new += reference.insert(hash).second ? 1 : 0;
    }
    const double set_seconds =
        std::chrono::duration<double>(Clock::now() - set_start).count();
    if (tracker_new != set_new) {
      std::fprintf(stderr, "path tracker diverged from the set oracle\n");
      return 1;
    }
    path_record_ops_per_sec =
        tracker_seconds > 0.0 ? static_cast<double>(probes) / tracker_seconds
                              : 0.0;
    path_probe_speedup =
        tracker_seconds > 0.0 ? set_seconds / tracker_seconds : 0.0;
  }

  // -- Executor pipeline: throughput + steady-state allocations. ----------
  StubTarget target;
  fuzz::Executor executor;
  fuzz::ExecResult result;
  const std::vector<Bytes> packets = {
      Bytes{1, 2, 3, 4, 5, 6, 7, 8}, Bytes{9, 8, 7, 6, 5},
      Bytes{1, 1, 2, 3, 5, 8, 13, 21, 34, 55}, Bytes{0x42, 0x43}};
  for (std::size_t i = 0; i < 512; ++i) {  // warm-up
    executor.run_into(target, packets[i % packets.size()], result);
  }
  const std::size_t exec_iters = 20000;
  const std::uint64_t allocs_before =
      g_allocations.load(std::memory_order_relaxed);
  const auto exec_start = Clock::now();
  for (std::size_t i = 0; i < exec_iters; ++i) {
    executor.run_into(target, packets[i % packets.size()], result);
  }
  const double exec_seconds =
      std::chrono::duration<double>(Clock::now() - exec_start).count();
  const std::uint64_t allocs_after =
      g_allocations.load(std::memory_order_relaxed);
  const double allocs_per_exec =
      static_cast<double>(allocs_after - allocs_before) /
      static_cast<double>(exec_iters);

  // -- Stacked mutation ping-pong allocations. ----------------------------
  const mutation::MutatorSuite mutators;
  Rng rng(4242);
  const Bytes seed = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15};
  Bytes a;
  Bytes b;
  for (int i = 0; i < 8192; ++i) {  // warm-up
    a.assign(seed.begin(), seed.end());
    mutators.mutate_bytes_into(a, b, rng);
    a.swap(b);
  }
  const std::size_t mut_iters = 8192;
  const std::uint64_t mut_before =
      g_allocations.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < mut_iters; ++i) {
    a.assign(seed.begin(), seed.end());
    mutators.mutate_bytes_into(a, b, rng);
    a.swap(b);
  }
  const double mut_allocs =
      static_cast<double>(g_allocations.load(std::memory_order_relaxed) -
                          mut_before) /
      static_cast<double>(mut_iters);

  std::printf("{\n  \"bench\": \"hotpath\",\n");
  std::printf("  \"map_execs_per_density\": %zu,\n", execs);
  std::printf("  \"dense_map_execs_per_sec\": %.0f,\n",
              dense_seconds > 0.0 ? total_map_execs / dense_seconds : 0.0);
  std::printf("  \"sparse_map_execs_per_sec\": %.0f,\n",
              sparse_seconds > 0.0 ? total_map_execs / sparse_seconds : 0.0);
  std::printf("  \"speedup_vs_dense\": %.2f,\n", speedup);
  std::printf("  \"speedup_vs_dense_32_edges\": %.2f,\n",
              per_density_speedup[0]);
  std::printf("  \"speedup_vs_dense_256_edges\": %.2f,\n",
              per_density_speedup[1]);
  std::printf("  \"speedup_vs_dense_1024_edges\": %.2f,\n",
              per_density_speedup[2]);
  std::printf("  \"simd_kernel\": \"%s\",\n",
              std::string(cov::simd::kernel_name(best_kernel)).c_str());
  const double analysis_execs = total_map_execs;
  std::printf("  \"scalar_analysis_execs_per_sec\": %.0f,\n",
              scalar_analysis_seconds > 0.0
                  ? analysis_execs / scalar_analysis_seconds
                  : 0.0);
  std::printf("  \"simd_analysis_execs_per_sec\": %.0f,\n",
              simd_analysis_seconds > 0.0
                  ? analysis_execs / simd_analysis_seconds
                  : 0.0);
  std::printf("  \"speedup_vs_scalar_sparse\": %.2f,\n", simd_speedup);
  std::printf("  \"speedup_vs_scalar_sparse_32_edges\": %.2f,\n",
              per_density_simd_speedup[0]);
  std::printf("  \"speedup_vs_scalar_sparse_256_edges\": %.2f,\n",
              per_density_simd_speedup[1]);
  std::printf("  \"speedup_vs_scalar_sparse_1024_edges\": %.2f,\n",
              per_density_simd_speedup[2]);
  std::printf("  \"simd_matches_scalar\": %s,\n",
              simd_matches_scalar ? "true" : "false");
  std::printf("  \"merge_speedup_vs_scalar\": %.2f,\n", merge_speedup);
  std::printf("  \"path_record_ops_per_sec\": %.0f,\n",
              path_record_ops_per_sec);
  std::printf("  \"path_probe_speedup_vs_set\": %.2f,\n", path_probe_speedup);
  std::printf("  \"executor_execs_per_sec\": %.0f,\n",
              exec_seconds > 0.0 ? static_cast<double>(exec_iters) /
                                       exec_seconds
                                 : 0.0);
  std::printf("  \"steady_state_allocs_per_exec\": %.4f,\n", allocs_per_exec);
  std::printf("  \"mutate_into_allocs_per_iter\": %.4f,\n", mut_allocs);
  std::printf("  \"checksum\": %llu\n}\n",
              static_cast<unsigned long long>(sink & 0xFFFF));
  return allocs_per_exec == 0.0 && mut_allocs == 0.0 && simd_matches_scalar
             ? 0
             : 1;
}
