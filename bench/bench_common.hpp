// Shared scaffolding for the reproduction benches.
//
// Every Figure-4 bench runs the same A/B campaign (Peach vs Peach*) on one
// protocol target and prints (a) the mean paths-over-executions series of
// both arms — the data behind the paper's plot panel — and (b) the derived
// summary row (final paths, speedup, increase).
//
// Budgets scale with two environment variables so CI can run the benches
// quickly while full reproductions use paper-scale settings:
//   ICSFUZZ_BENCH_ITERS  executions per repetition   (default 40000)
//   ICSFUZZ_BENCH_REPS   repetitions per arm         (default 10)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "fuzzer/campaign.hpp"
#include "pits/pits.hpp"
#include "protocols/target_registry.hpp"

namespace icsfuzz::bench {

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

inline fuzz::CampaignConfig default_campaign_config() {
  fuzz::CampaignConfig config;
  config.iterations = env_u64("ICSFUZZ_BENCH_ITERS", 40000);
  config.repetitions = static_cast<std::size_t>(env_u64("ICSFUZZ_BENCH_REPS", 10));
  config.stats_interval =
      config.iterations / 40 == 0 ? 1 : config.iterations / 40;
  return config;
}

/// Target factory for a paper project name (the shared registry).
inline fuzz::TargetFactory target_factory(const std::string& project) {
  return proto::target_factory(project);
}

/// Runs the A/B campaign for one project with default budgets.
inline fuzz::CampaignResult run_project_campaign(const std::string& project) {
  const fuzz::CampaignConfig config = default_campaign_config();
  return fuzz::run_campaign(project, target_factory(project),
                            pits::pit_for_project(project), config);
}

/// Prints one Figure-4 panel: the mean series of both arms plus summary.
inline void print_fig4_panel(const char* panel,
                             const fuzz::CampaignResult& result) {
  std::printf("Figure 4(%s): average paths covered on %s (%zu repetitions, "
              "%llu executions per run)\n",
              panel, result.project.c_str(),
              result.peach.repetition_series.size(),
              static_cast<unsigned long long>(
                  result.peach.mean_series.empty()
                      ? 0
                      : result.peach.mean_series.back().executions));
  std::printf("%12s %14s %14s\n", "executions", "Peach", "Peach*");
  const auto& a = result.peach.mean_series;
  const auto& b = result.peach_star.mean_series;
  const std::size_t rows = std::max(a.size(), b.size());
  for (std::size_t i = 0; i < rows; ++i) {
    const unsigned long long execs = static_cast<unsigned long long>(
        i < a.size() ? a[i].executions : b[i].executions);
    std::printf("%12llu %14zu %14zu\n", execs, i < a.size() ? a[i].paths : 0,
                i < b.size() ? b[i].paths : 0);
  }
  std::printf("summary: Peach %.1f paths, Peach* %.1f paths, "
              "speedup %.2fx, increase %+.2f%%\n\n",
              result.peach.mean_final_paths,
              result.peach_star.mean_final_paths, result.speedup(),
              result.path_increase_pct());
}

}  // namespace icsfuzz::bench
