// Telemetry overhead A/B bench: the same fixed-seed Modbus Peach* campaign
// run with the sink disabled (arm OFF) and bound to a private hub (arm ON),
// interleaved for `rounds` rounds. Gates the observability layer's two hard
// promises:
//
//   * `telemetry_overhead_pct` — min-of-rounds wall time ratio between the
//     arms. Both arms run the identical workload on the same machine, so
//     the ratio gates the hot-path cost (budget: <= 2%, baseline.json)
//     without caring how fast the CI runner is.
//
//   * `telemetry_allocs_per_exec` — counting-allocator delta between the
//     arms per round. Because the trajectories are identical, every
//     campaign allocation (corpus growth, seed retention, crack batches)
//     cancels out and the difference isolates telemetry itself: counters,
//     gauges, histograms, and journal events must all be allocation-free,
//     so the gate is exactly 0.
//
//   * `trajectory_identical` — final paths/edges/crashes/corpus/retained
//     and the full checkpoint series (wall column excluded) must match
//     between arms every round: telemetry is write-only and enabling it
//     cannot perturb the campaign.
//
//   * `counters_consistent` — the ON hub's kExecutions counter must equal
//     the executions the ON arms actually ran (shard merge sanity).
//
// Budget knobs:
//   ICSFUZZ_BENCH_TELEMETRY_ITERS    executions per arm per round (100000)
//   ICSFUZZ_BENCH_TELEMETRY_ROUNDS   interleaved A/B rounds (8)
//
// The defaults give ~200ms measurement windows; shorter windows put timer
// and scheduler noise on the same order as the ~1% effect being gated.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "counting_allocator.hpp"
#include "fuzzer/fuzzer.hpp"
#include "pits/pits.hpp"
#include "protocols/modbus/modbus_server.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using icsfuzz::bench_alloc::g_allocations;

using namespace icsfuzz;
using Clock = std::chrono::steady_clock;

struct ArmOutcome {
  double seconds = 0.0;
  std::uint64_t allocs = 0;
  std::uint64_t executions = 0;
  std::size_t paths = 0;
  std::size_t edges = 0;
  std::size_t crashes = 0;
  std::size_t corpus = 0;
  std::size_t retained = 0;
  std::uint64_t series_hash = 0;
};

/// Hashes a checkpoint series minus its wall column (the clock reading is
/// the one field that legitimately differs between the arms).
std::uint64_t series_hash(const std::vector<fuzz::Checkpoint>& series) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  const auto fold = [&hash](std::uint64_t value) {
    hash = (hash ^ value) * 0x100000001b3ULL;
  };
  for (const fuzz::Checkpoint& point : series) {
    fold(point.executions);
    fold(point.paths);
    fold(point.edges);
    fold(point.unique_crashes);
    fold(point.corpus_size);
  }
  return hash;
}

ArmOutcome run_arm(const model::DataModelSet& models, telem::Sink sink,
                   std::uint64_t iters) {
  proto::ModbusServer server;
  fuzz::FuzzerConfig config;
  config.strategy = fuzz::Strategy::PeachStar;
  config.rng_seed = 42;
  config.telemetry = sink;
  fuzz::Fuzzer fuzzer(server, models, config);

  ArmOutcome out;
  const std::uint64_t allocs_before =
      g_allocations.load(std::memory_order_relaxed);
  const auto start = Clock::now();
  fuzzer.run(iters);
  out.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  out.allocs = g_allocations.load(std::memory_order_relaxed) - allocs_before;
  out.executions = fuzzer.executor().executions();
  out.paths = fuzzer.path_count();
  out.edges = fuzzer.executor().edge_count();
  out.crashes = fuzzer.crashes().unique_count();
  out.corpus = fuzzer.corpus().size();
  out.retained = fuzzer.retained_seeds().size();
  out.series_hash = series_hash(fuzzer.stats().checkpoints());
  return out;
}

bool same_trajectory(const ArmOutcome& a, const ArmOutcome& b) {
  return a.executions == b.executions && a.paths == b.paths &&
         a.edges == b.edges && a.crashes == b.crashes &&
         a.corpus == b.corpus && a.retained == b.retained &&
         a.series_hash == b.series_hash;
}

}  // namespace

int main() {
  const std::uint64_t iters =
      bench::env_u64("ICSFUZZ_BENCH_TELEMETRY_ITERS", 100000);
  const std::size_t rounds = static_cast<std::size_t>(
      bench::env_u64("ICSFUZZ_BENCH_TELEMETRY_ROUNDS", 8));
  const model::DataModelSet models = pits::modbus_pit();

  // The ON arm's hub lives outside every measurement window: its journal
  // ring preallocates at construction and its snapshot allocates only after
  // the rounds finish.
  telem::Telemetry hub;
  const telem::Sink off_sink;
  const telem::Sink on_sink(&hub, 0);

  // Un-timed warm-up pair pages in both arms (lazy statics, allocator
  // pools) so round 1 is not charged for first-touch costs.
  const ArmOutcome warm_off = run_arm(models, off_sink, iters);
  const ArmOutcome warm_on = run_arm(models, on_sink, iters);

  double off_best = 0.0;
  double on_best = 0.0;
  double worst_alloc_delta = 0.0;
  bool trajectory_identical = same_trajectory(warm_off, warm_on);
  std::uint64_t on_executions_total = warm_on.executions;
  for (std::size_t round = 0; round < rounds; ++round) {
    const ArmOutcome off = run_arm(models, off_sink, iters);
    const ArmOutcome on = run_arm(models, on_sink, iters);
    on_executions_total += on.executions;
    trajectory_identical = trajectory_identical && same_trajectory(off, on) &&
                           same_trajectory(off, warm_off);
    off_best = round == 0 ? off.seconds : std::min(off_best, off.seconds);
    on_best = round == 0 ? on.seconds : std::min(on_best, on.seconds);
    const double delta =
        (static_cast<double>(on.allocs) - static_cast<double>(off.allocs)) /
        static_cast<double>(iters);
    worst_alloc_delta =
        round == 0 ? delta : std::max(worst_alloc_delta, delta);
  }

  const telem::Snapshot snapshot = hub.snapshot();
  const bool counters_consistent =
      snapshot.counter(telem::Counter::kExecutions) == on_executions_total;

  // Micro: the raw cost of one counter bump through the sink (info only —
  // the campaign-level overhead above is the gated number).
  double counter_add_ns = 0.0;
  {
    const std::uint64_t ops = 20000000;
    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < ops; ++i) {
      on_sink.add(telem::Counter::kBatchSeeds);
    }
    counter_add_ns =
        std::chrono::duration<double>(Clock::now() - start).count() * 1e9 /
        static_cast<double>(ops);
  }

  const double overhead_pct =
      off_best > 0.0 ? (on_best / off_best - 1.0) * 100.0 : 0.0;

  std::printf("{\n  \"bench\": \"telemetry\",\n");
  std::printf("  \"iters\": %llu,\n",
              static_cast<unsigned long long>(iters));
  std::printf("  \"rounds\": %zu,\n", rounds);
  std::printf("  \"telemetry_off_execs_per_sec\": %.0f,\n",
              off_best > 0.0 ? static_cast<double>(iters) / off_best : 0.0);
  std::printf("  \"telemetry_on_execs_per_sec\": %.0f,\n",
              on_best > 0.0 ? static_cast<double>(iters) / on_best : 0.0);
  std::printf("  \"telemetry_overhead_pct\": %.2f,\n", overhead_pct);
  std::printf("  \"telemetry_allocs_per_exec\": %.6f,\n", worst_alloc_delta);
  std::printf("  \"counter_add_ns\": %.2f,\n", counter_add_ns);
  std::printf("  \"journal_events\": %zu,\n", hub.journal().size());
  std::printf("  \"trajectory_identical\": %s,\n",
              trajectory_identical ? "true" : "false");
  std::printf("  \"counters_consistent\": %s\n}\n",
              counters_consistent ? "true" : "false");
  return trajectory_identical && counters_consistent &&
                 worst_alloc_delta == 0.0
             ? 0
             : 1;
}
