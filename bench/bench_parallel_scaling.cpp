// Parallel-campaign scaling bench: executions/sec of the ParallelCampaign
// orchestrator at W ∈ {1, 2, 4} workers on the Modbus target, emitted as
// one JSON document for the bench trajectory.
//
// Each configuration runs the same per-worker budget, so total work scales
// with W and the speedup column is the throughput ratio vs W=1. On a
// single-core container the ratio stays near 1.0 (the workers time-slice
// one core); the headroom shows up on real multi-core hardware. The W=1
// row's worker results are bit-for-bit the sequential engine
// (tests/test_parallel.cpp asserts this), so `paths_w1` doubles as the
// sequential-campaign reference for the coverage-parity check.
//
// Budget knobs:
//   ICSFUZZ_BENCH_ITERS  executions per worker    (default 20000)
//   ICSFUZZ_BENCH_SYNC   executions between syncs (default 1024)
#include <cstdio>

#include "bench_common.hpp"
#include "parallel/parallel_campaign.hpp"

int main() {
  using namespace icsfuzz;

  const std::uint64_t iterations =
      bench::env_u64("ICSFUZZ_BENCH_ITERS", 20000);
  const std::uint64_t sync_interval =
      bench::env_u64("ICSFUZZ_BENCH_SYNC", 1024);
  const std::string project = "libmodbus";
  const model::DataModelSet models = pits::pit_for_project(project);
  const fuzz::TargetFactory factory = bench::target_factory(project);

  std::printf("{\n  \"bench\": \"parallel_scaling\",\n");
  std::printf("  \"project\": \"%s\",\n", project.c_str());
  std::printf("  \"iterations_per_worker\": %llu,\n",
              static_cast<unsigned long long>(iterations));
  std::printf("  \"sync_interval\": %llu,\n",
              static_cast<unsigned long long>(sync_interval));
  std::printf("  \"results\": [\n");

  double w1_rate = 0.0;
  std::size_t w1_paths = 0;
  const std::size_t worker_counts[] = {1, 2, 4};
  for (std::size_t i = 0; i < 3; ++i) {
    const std::size_t workers = worker_counts[i];
    par::ParallelCampaignConfig config;
    config.workers = workers;
    config.iterations_per_worker = iterations;
    config.base_seed = 1000;
    config.sync_interval = sync_interval;
    par::ParallelCampaign campaign(factory, models, config);
    const par::ParallelCampaignResult result = campaign.run();

    const double rate = result.execs_per_second();
    if (workers == 1) {
      w1_rate = rate;
      w1_paths = result.global_paths;
    }
    std::printf(
        "    {\"workers\": %zu, \"executions\": %llu, "
        "\"wall_seconds\": %.3f, \"execs_per_sec\": %.0f, "
        "\"speedup_vs_w1\": %.2f, \"global_paths\": %zu, "
        "\"global_edges\": %zu, \"paths_vs_w1_pct\": %.2f, "
        "\"seeds_published\": %zu}%s\n",
        workers, static_cast<unsigned long long>(result.total_executions),
        result.wall_seconds, rate, w1_rate > 0.0 ? rate / w1_rate : 0.0,
        result.global_paths, result.global_edges,
        w1_paths > 0
            ? (static_cast<double>(result.global_paths) -
               static_cast<double>(w1_paths)) /
                  static_cast<double>(w1_paths) * 100.0
            : 0.0,
        result.seeds_published, i + 1 < 3 ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}
