// Table I reproduction: "Vulnerabilities Exposed by Peach*".
//
// Runs the Peach* arm on all six projects (pooled over the configured
// repetitions) and prints the per-project vulnerability tally in the
// paper's format: Project | Vulnerability Type | Number | Status.
//
// Expected shape (paper): lib60870 3x SEGV; libmodbus 1x Heap Use after
// Free + 1x SEGV; libiec_iccp_mod 3x SEGV + 1x Heap Buffer Overflow; and no
// memory faults on IEC104, libiec61850, opendnp3 — 9 vulnerabilities total.
#include <map>

#include "bench_common.hpp"

int main() {
  using namespace icsfuzz;
  const fuzz::CampaignConfig config = bench::default_campaign_config();

  std::printf("TABLE I: Vulnerabilities Exposed by Peach* "
              "(%zu repetitions x %llu executions per project)\n\n",
              config.repetitions,
              static_cast<unsigned long long>(config.iterations));
  std::printf("%-18s %-24s %-8s %s\n", "Project", "Vulnerability Type",
              "Number", "Status");

  std::size_t total = 0;
  for (const std::string& project : pits::all_project_names()) {
    const fuzz::ArmResult arm =
        fuzz::run_arm(fuzz::Strategy::PeachStar, bench::target_factory(project),
                      pits::pit_for_project(project), config);
    std::map<san::FaultKind, std::size_t> tally = arm.pooled_crashes.by_kind();
    tally.erase(san::FaultKind::Hang);  // Table I counts memory faults
    if (tally.empty()) {
      std::printf("%-18s %-24s %-8s %s\n", project.c_str(), "-", "0", "-");
      continue;
    }
    bool first = true;
    for (const auto& [kind, count] : tally) {
      std::printf("%-18s %-24s %-8zu %s\n",
                  first ? project.c_str() : "", san::to_string(kind).c_str(),
                  count, "Confirmed");
      total += count;
      first = false;
    }
  }
  std::printf("\ntotal unique vulnerabilities: %zu (paper: 9)\n", total);
  return 0;
}
