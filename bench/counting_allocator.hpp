// Counting replacement of the global allocator, shared by the standalone
// binaries that assert the hot path's zero-allocation discipline
// (bench/bench_hotpath.cpp and tests/test_hotpath_alloc.cpp).
//
// Include EXACTLY ONCE per binary: this header *defines* the replaceable
// global operator new/delete set. Every allocation bumps
// icsfuzz::bench_alloc::g_allocations; measure a window by differencing
// the counter around it.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace icsfuzz::bench_alloc {

inline std::atomic<std::uint64_t> g_allocations{0};

}  // namespace icsfuzz::bench_alloc

void* operator new(std::size_t size) {
  icsfuzz::bench_alloc::g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  icsfuzz::bench_alloc::g_allocations.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t alignment = static_cast<std::size_t>(align);
  const std::size_t rounded =
      ((size == 0 ? 1 : size) + alignment - 1) / alignment * alignment;
  if (void* p = std::aligned_alloc(alignment, rounded)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
