// Out-of-process execution bench: fork-server throughput plus the
// differential oracle, reported as one JSON document for the
// bench-regression gate.
//
// Three arms run the identical deterministic packet batch against the same
// protocol stack (libmodbus):
//
//   * fork-per-exec — fuzz::Executor with an out-of-process backend
//     pointing at the shim binary: every execution pays the shim's fork(),
//     the pipe round trip, the shm sweep (CoverageMap::adopt_external) and
//     the fused analysis. `oop_execs_per_sec` is floored by the baseline;
//     the acceptance bar is fork-server execution in the thousands per
//     second.
//
//   * persistent — the same backend in persistent mode (ICSFUZZ_LOOP-style
//     children, packets through shm slots, pipelined run_batch dispatch):
//     the per-exec fork() disappears and `persistent_execs_per_sec` must
//     clear both an absolute floor and a relative one
//     (`persistent_speedup` over fork-per-exec — the order-of-magnitude
//     win that motivates the mode).
//
//   * in-process — the plain Executor on the same packets.
//     `slowdown_vs_in_process` contextualizes the fork tax, and all arms'
//     per-execution trace hashes / edge counts are folded into checksums
//     that must match exactly (`matches_in_process`,
//     `persistent_matches_in_process`) — the differential oracle as a
//     continuously-gated bench invariant, not just a test. A dedicated
//     probe additionally gates `state_bleed_free`: the same packet at
//     iteration 1 and iteration K-1 of one persistent child must produce
//     identical coverage and observables.
//
// Budget knobs:
//   ICSFUZZ_BENCH_OOP_EXECS              executions per fork-per-exec arm
//                                        (default 12000)
//   ICSFUZZ_BENCH_OOP_PERSISTENT_EXECS   executions for the persistent arm
//                                        (default 60000)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "coverage/coverage_map.hpp"
#include "exec_oop/oop_executor.hpp"
#include "fuzzer/executor.hpp"
#include "model/instantiation.hpp"
#include "mutation/mutator.hpp"
#include "pits/pits.hpp"
#include "protocols/target_registry.hpp"
#include "util/rng.hpp"

namespace {

using namespace icsfuzz;
using Clock = std::chrono::steady_clock;

// Generous deadline: on a noisy shared runner a scheduler stall must not
// turn a healthy exec into a Hang fault and fail the matches_in_process
// gate (the fault-injection suite covers the deadline path explicitly).
constexpr int kBenchTimeoutMs = 30000;

/// Deterministic packet pool: every libmodbus model's default instance
/// plus fixed-seed mutations — the mix a real campaign's steady state
/// replays.
std::vector<Bytes> make_packets() {
  const model::DataModelSet models = pits::pit_for_project("libmodbus");
  const mutation::MutatorSuite mutators;
  Rng rng(0xBE7C);
  std::vector<Bytes> packets;
  for (const model::DataModel& model : models.models()) {
    Bytes base = model::default_instance(model).serialize();
    for (int m = 0; m < 7; ++m) {
      packets.push_back(mutators.mutate_bytes(base, rng));
    }
    packets.push_back(std::move(base));
  }
  return packets;
}

fuzz::ExecutorConfig backend_config(fuzz::BackendKind kind) {
  fuzz::ExecutorConfig config;
  config.backend.kind = kind;
  config.backend.target_cmd = {ICSFUZZ_SHIM_PATH, "--project", "libmodbus"};
  config.backend.exec_timeout_ms = kBenchTimeoutMs;
  return config;
}

struct ArmResult {
  double seconds = 0.0;
  std::uint64_t checksum = 0;
};

std::uint64_t fold(std::uint64_t checksum, const fuzz::ExecResult& result) {
  return checksum * 0x100000001B3ULL ^
         (result.trace_hash + result.trace_edges +
          (result.new_coverage ? 1 : 0) + result.faults.size());
}

ArmResult run_arm(fuzz::Executor& executor, ProtocolTarget& target,
                  const std::vector<Bytes>& packets, std::size_t execs) {
  fuzz::ExecResult result;
  ArmResult arm;
  const auto start = Clock::now();
  for (std::size_t i = 0; i < execs; ++i) {
    executor.run_into(target, packets[i % packets.size()], result);
    arm.checksum = fold(arm.checksum, result);
  }
  arm.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return arm;
}

/// The persistent arm dispatches through run_batch (the pipelined path a
/// replay workload uses), one full pass over the pool per round — the same
/// packet sequence as run_arm's `i % packets.size()` indexing.
ArmResult run_batch_arm(fuzz::Executor& executor, ProtocolTarget& target,
                        const std::vector<Bytes>& packets,
                        std::size_t execs) {
  ArmResult arm;
  const std::size_t rounds = execs / packets.size();
  const std::vector<Bytes> remainder(packets.begin(),
                                     packets.begin() +
                                         (execs % packets.size()));
  const auto start = Clock::now();
  for (std::size_t round = 0; round < rounds; ++round) {
    executor.run_batch(target, packets,
                       [&](std::size_t, const fuzz::ExecResult& result) {
                         arm.checksum = fold(arm.checksum, result);
                       });
  }
  executor.run_batch(target, remainder,
                     [&](std::size_t, const fuzz::ExecResult& result) {
                       arm.checksum = fold(arm.checksum, result);
                     });
  arm.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return arm;
}

/// State-bleed probe: the same packet at iteration 1 and iteration K-1 of
/// one persistent child must be indistinguishable (coverage bytes, events,
/// response) — any leak across the ICSFUZZ_LOOP iterations breaks it.
bool probe_state_bleed(const std::vector<Bytes>& packets) {
  constexpr std::uint32_t kBudget = 8;
  oop::OopExecutorConfig config;
  config.target_cmd = {ICSFUZZ_SHIM_PATH, "--project", "libmodbus"};
  config.exec_timeout_ms = kBenchTimeoutMs;
  config.persistent_budget = kBudget;
  oop::OutOfProcessExecutor exec(config);

  const Bytes& probe = packets.front();
  const oop::OutOfProcessExecutor::Outcome first = exec.run(probe);
  if (first.status != oop::ExecStatus::kOk || !first.persistent ||
      first.iteration != 1) {
    return false;
  }
  std::vector<std::uint64_t> first_map(exec.map_words(),
                                       exec.map_words() + cov::kMapWords);
  for (std::uint32_t i = 2; i <= kBudget - 2; ++i) {
    if (exec.run(packets[i % packets.size()]).status != oop::ExecStatus::kOk) {
      return false;
    }
  }
  const oop::OutOfProcessExecutor::Outcome& again = exec.run(probe);
  return again.status == oop::ExecStatus::kOk &&
         again.iteration == kBudget - 1 &&
         again.aux.events == first.aux.events &&
         again.aux.response == first.aux.response &&
         std::memcmp(first_map.data(), exec.map_words(), cov::kMapSize) == 0;
}

}  // namespace

int main() {
  const std::size_t execs = static_cast<std::size_t>(
      bench::env_u64("ICSFUZZ_BENCH_OOP_EXECS", 12000));
  const std::size_t persistent_execs = static_cast<std::size_t>(
      bench::env_u64("ICSFUZZ_BENCH_OOP_PERSISTENT_EXECS", 60000));
  const std::vector<Bytes> packets = make_packets();

  const auto factory = proto::target_factory("libmodbus");
  const std::unique_ptr<ProtocolTarget> placeholder = factory();
  const std::unique_ptr<ProtocolTarget> inproc_target = factory();

  fuzz::Executor oop_executor(
      backend_config(fuzz::BackendKind::kForkPerExec));
  fuzz::Executor persistent_executor(
      backend_config(fuzz::BackendKind::kPersistent));
  fuzz::Executor inproc_executor;

  // Warm-up: spawn the fork servers, converge buffer capacities, saturate
  // the virgin maps so all arms measure the steady-state regime.
  run_arm(oop_executor, *placeholder, packets, 256);
  run_batch_arm(persistent_executor, *placeholder, packets, 256);
  run_arm(inproc_executor, *inproc_target, packets, 256);

  const ArmResult oop = run_arm(oop_executor, *placeholder, packets, execs);
  const ArmResult inproc =
      run_arm(inproc_executor, *inproc_target, packets, execs);
  const ArmResult persistent =
      run_batch_arm(persistent_executor, *placeholder, packets,
                    persistent_execs);

  // The persistent checksum covers a different execution count; compare it
  // against a fresh in-process replay of the same sequence, with the same
  // 256-exec warm-up so new_coverage flags line up in the measured region.
  fuzz::Executor inproc_replay;
  const std::unique_ptr<ProtocolTarget> replay_target = factory();
  run_arm(inproc_replay, *replay_target, packets, 256);
  const ArmResult inproc_persistent_ref =
      run_arm(inproc_replay, *replay_target, packets, persistent_execs);

  const bool matches = oop.checksum == inproc.checksum;
  const bool persistent_matches =
      persistent.checksum == inproc_persistent_ref.checksum;
  const bool state_bleed_free = probe_state_bleed(packets);
  const double oop_rate =
      oop.seconds > 0.0 ? static_cast<double>(execs) / oop.seconds : 0.0;
  const double inproc_rate =
      inproc.seconds > 0.0 ? static_cast<double>(execs) / inproc.seconds
                           : 0.0;
  const double persistent_rate =
      persistent.seconds > 0.0
          ? static_cast<double>(persistent_execs) / persistent.seconds
          : 0.0;
  const std::uint64_t restarts =
      oop_executor.oop_backend() != nullptr
          ? oop_executor.oop_backend()->server_restarts()
          : 0;
  const auto* persistent_backend = persistent_executor.oop_backend();
  const std::uint64_t persistent_restarts =
      persistent_backend != nullptr ? persistent_backend->server_restarts()
                                    : 0;
  const std::uint64_t recycles =
      persistent_backend != nullptr ? persistent_backend->child_recycles()
                                    : 0;
  const bool persistent_active =
      persistent_backend != nullptr && persistent_backend->persistent_active();

  std::printf("{\n  \"bench\": \"oop_exec\",\n");
  std::printf("  \"execs_per_arm\": %zu,\n", execs);
  std::printf("  \"oop_execs_per_sec\": %.0f,\n", oop_rate);
  std::printf("  \"in_process_execs_per_sec\": %.0f,\n", inproc_rate);
  std::printf("  \"slowdown_vs_in_process\": %.2f,\n",
              oop_rate > 0.0 ? inproc_rate / oop_rate : 0.0);
  std::printf("  \"matches_in_process\": %s,\n", matches ? "true" : "false");
  std::printf("  \"server_restarts\": %llu,\n",
              static_cast<unsigned long long>(restarts));
  std::printf("  \"persistent_execs\": %zu,\n", persistent_execs);
  std::printf("  \"persistent_execs_per_sec\": %.0f,\n", persistent_rate);
  std::printf("  \"persistent_speedup\": %.2f,\n",
              oop_rate > 0.0 ? persistent_rate / oop_rate : 0.0);
  std::printf("  \"persistent_matches_in_process\": %s,\n",
              persistent_matches ? "true" : "false");
  std::printf("  \"persistent_mode_active\": %s,\n",
              persistent_active ? "true" : "false");
  std::printf("  \"state_bleed_free\": %s,\n",
              state_bleed_free ? "true" : "false");
  std::printf("  \"persistent_server_restarts\": %llu,\n",
              static_cast<unsigned long long>(persistent_restarts));
  std::printf("  \"persistent_child_recycles\": %llu,\n",
              static_cast<unsigned long long>(recycles));
  std::printf("  \"checksum\": %llu\n}\n",
              static_cast<unsigned long long>(oop.checksum & 0xFFFF));
  return matches && persistent_matches && state_bleed_free &&
                 persistent_active && restarts == 0 &&
                 persistent_restarts == 0
             ? 0
             : 1;
}
