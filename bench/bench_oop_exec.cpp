// Out-of-process execution bench: fork-server throughput plus the
// differential oracle, reported as one JSON document for the
// bench-regression gate.
//
// Two arms run the identical deterministic packet batch against the same
// protocol stack (libmodbus):
//
//   * out-of-process — fuzz::Executor with ExecutorConfig::target_cmd
//     pointing at the shim binary: every execution pays the shim's fork(),
//     the pipe round trip, the shm sweep (CoverageMap::adopt_external) and
//     the fused analysis. `oop_execs_per_sec` is the headline the
//     baseline floors; the acceptance bar is fork-server execution in the
//     thousands per second.
//
//   * in-process — the plain Executor on the same packets.
//     `slowdown_vs_in_process` contextualizes the fork tax, and the two
//     arms' per-execution trace hashes / edge counts are folded into
//     checksums that must match exactly (`matches_in_process`) — the
//     differential oracle as a continuously-gated bench invariant, not
//     just a test.
//
// Budget knobs:
//   ICSFUZZ_BENCH_OOP_EXECS   executions per arm (default 12000)
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exec_oop/oop_executor.hpp"
#include "fuzzer/executor.hpp"
#include "model/instantiation.hpp"
#include "mutation/mutator.hpp"
#include "pits/pits.hpp"
#include "protocols/target_registry.hpp"
#include "util/rng.hpp"

namespace {

using namespace icsfuzz;
using Clock = std::chrono::steady_clock;

/// Deterministic packet pool: every libmodbus model's default instance
/// plus fixed-seed mutations — the mix a real campaign's steady state
/// replays.
std::vector<Bytes> make_packets() {
  const model::DataModelSet models = pits::pit_for_project("libmodbus");
  const mutation::MutatorSuite mutators;
  Rng rng(0xBE7C);
  std::vector<Bytes> packets;
  for (const model::DataModel& model : models.models()) {
    Bytes base = model::default_instance(model).serialize();
    for (int m = 0; m < 7; ++m) {
      packets.push_back(mutators.mutate_bytes(base, rng));
    }
    packets.push_back(std::move(base));
  }
  return packets;
}

struct ArmResult {
  double seconds = 0.0;
  std::uint64_t checksum = 0;
};

ArmResult run_arm(fuzz::Executor& executor, ProtocolTarget& target,
                  const std::vector<Bytes>& packets, std::size_t execs) {
  fuzz::ExecResult result;
  ArmResult arm;
  const auto start = Clock::now();
  for (std::size_t i = 0; i < execs; ++i) {
    executor.run_into(target, packets[i % packets.size()], result);
    arm.checksum = arm.checksum * 0x100000001B3ULL ^
                   (result.trace_hash + result.trace_edges +
                    (result.new_coverage ? 1 : 0) + result.faults.size());
  }
  arm.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return arm;
}

}  // namespace

int main() {
  const std::size_t execs = static_cast<std::size_t>(
      bench::env_u64("ICSFUZZ_BENCH_OOP_EXECS", 12000));
  const std::vector<Bytes> packets = make_packets();

  const auto factory = proto::target_factory("libmodbus");
  const std::unique_ptr<ProtocolTarget> placeholder = factory();
  const std::unique_ptr<ProtocolTarget> inproc_target = factory();

  fuzz::ExecutorConfig oop_config;
  oop_config.target_cmd = {ICSFUZZ_SHIM_PATH, "--project", "libmodbus"};
  // Generous deadline: on a noisy shared runner a scheduler stall must not
  // turn a healthy exec into a Hang fault and fail the matches_in_process
  // gate (the fault-injection suite covers the deadline path explicitly).
  oop_config.oop_exec_timeout_ms = 30000;
  fuzz::Executor oop_executor(oop_config);
  fuzz::Executor inproc_executor;

  // Warm-up: spawn the fork server, converge buffer capacities, saturate
  // the virgin maps so both arms measure the steady-state regime.
  run_arm(oop_executor, *placeholder, packets, 256);
  run_arm(inproc_executor, *inproc_target, packets, 256);

  const ArmResult oop = run_arm(oop_executor, *placeholder, packets, execs);
  const ArmResult inproc =
      run_arm(inproc_executor, *inproc_target, packets, execs);

  const bool matches = oop.checksum == inproc.checksum;
  const double oop_rate =
      oop.seconds > 0.0 ? static_cast<double>(execs) / oop.seconds : 0.0;
  const double inproc_rate =
      inproc.seconds > 0.0 ? static_cast<double>(execs) / inproc.seconds
                           : 0.0;
  const std::uint64_t restarts =
      oop_executor.oop_backend() != nullptr
          ? oop_executor.oop_backend()->server_restarts()
          : 0;

  std::printf("{\n  \"bench\": \"oop_exec\",\n");
  std::printf("  \"execs_per_arm\": %zu,\n", execs);
  std::printf("  \"oop_execs_per_sec\": %.0f,\n", oop_rate);
  std::printf("  \"in_process_execs_per_sec\": %.0f,\n", inproc_rate);
  std::printf("  \"slowdown_vs_in_process\": %.2f,\n",
              oop_rate > 0.0 ? inproc_rate / oop_rate : 0.0);
  std::printf("  \"matches_in_process\": %s,\n", matches ? "true" : "false");
  std::printf("  \"server_restarts\": %llu,\n",
              static_cast<unsigned long long>(restarts));
  std::printf("  \"checksum\": %llu\n}\n",
              static_cast<unsigned long long>(oop.checksum & 0xFFFF));
  return matches && restarts == 0 ? 0 : 1;
}
