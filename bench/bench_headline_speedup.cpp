// Headline reproduction (paper §V-B): "compared with the original Peach,
// Peach* achieves the same code coverage and bug detection numbers at the
// speed of 1.2X-25X [avg 5.7X]. It also gains final increase with
// 8.35%-36.84% more paths [avg 27.35%] within 24 hours."
//
// Runs the full A/B campaign on every project and prints the speedup /
// path-increase table with min, max and average rows.
#include <algorithm>
#include <vector>

#include "bench_common.hpp"

int main() {
  using namespace icsfuzz;

  std::printf("Headline metrics: Peach* vs Peach on all projects\n\n");
  std::printf("%-18s %12s %12s %10s %12s\n", "Project", "Peach paths",
              "Peach* paths", "Speedup", "Increase");

  std::vector<double> speedups;
  std::vector<double> increases;
  for (const std::string& project : pits::all_project_names()) {
    const fuzz::CampaignResult result = bench::run_project_campaign(project);
    const double speedup = result.speedup();
    const double increase = result.path_increase_pct();
    std::printf("%-18s %12.1f %12.1f %9.2fx %+11.2f%%\n", project.c_str(),
                result.peach.mean_final_paths,
                result.peach_star.mean_final_paths, speedup, increase);
    speedups.push_back(speedup);
    increases.push_back(increase);
  }

  const auto [min_speedup, max_speedup] =
      std::minmax_element(speedups.begin(), speedups.end());
  const auto [min_increase, max_increase] =
      std::minmax_element(increases.begin(), increases.end());
  double avg_speedup = 0.0;
  double avg_increase = 0.0;
  for (double v : speedups) avg_speedup += v;
  for (double v : increases) avg_increase += v;
  avg_speedup /= static_cast<double>(speedups.size());
  avg_increase /= static_cast<double>(increases.size());

  std::printf("\nspeedup  : %.2fx - %.2fx, average %.2fx (paper: 1.2X-25X, "
              "average 5.7X)\n",
              *min_speedup, *max_speedup, avg_speedup);
  std::printf("increase : %+.2f%% - %+.2f%%, average %+.2f%% (paper: "
              "+8.35%%-+36.84%%, average +27.35%%)\n",
              *min_increase, *max_increase, avg_increase);
  return 0;
}
