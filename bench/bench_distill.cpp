// Corpus-distillation bench: builds a deliberately redundant valuable-seed
// corpus (three overlapping Peach* campaigns plus a verbatim duplicate of
// the pool), distills it with the greedy set-cover cmin, and reports the
// reduction ratio plus trace-collection / replay throughput as one JSON
// document for the bench trajectory. The coverage_identical field doubles
// as a correctness gate: the distilled corpus must replay the bit-identical
// edge map and path set of the full corpus.
//
// Budget knobs:
//   ICSFUZZ_BENCH_ITERS    executions per corpus-building run (default 12000)
//   ICSFUZZ_BENCH_WORKERS  replay shards for the sharded phases (default 2)
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "distill/distill.hpp"
#include "distill/replay.hpp"

int main() {
  using namespace icsfuzz;
  using Clock = std::chrono::steady_clock;

  const std::uint64_t iterations =
      bench::env_u64("ICSFUZZ_BENCH_ITERS", 12000);
  const std::size_t workers =
      static_cast<std::size_t>(bench::env_u64("ICSFUZZ_BENCH_WORKERS", 2));
  const std::string project = "libmodbus";
  const model::DataModelSet models = pits::pit_for_project(project);
  const fuzz::TargetFactory factory = bench::target_factory(project);

  // Redundant corpus: three differently-seeded campaigns discover heavily
  // overlapping coverage; duplicating the pool doubles the redundancy the
  // way a long campaign's re-discoveries do.
  std::vector<Bytes> corpus;
  for (std::uint64_t seed : {1000ULL, 2000ULL, 3000ULL}) {
    const auto target = factory();
    fuzz::FuzzerConfig config;
    config.strategy = fuzz::Strategy::PeachStar;
    config.rng_seed = seed;
    fuzz::Fuzzer fuzzer(*target, models, config);
    fuzzer.run(iterations);
    for (const fuzz::RetainedSeed& retained : fuzzer.retained_seeds()) {
      corpus.push_back(retained.bytes);
    }
  }
  const std::size_t unique_pool = corpus.size();
  corpus.reserve(unique_pool * 2);
  for (std::size_t i = 0; i < unique_pool; ++i) corpus.push_back(corpus[i]);

  // Phase 1: trace collection (sharded), the replay-heavy half of cmin.
  const auto trace_start = Clock::now();
  const std::vector<distill::SeedTrace> traces =
      distill::collect_traces_sharded(factory, corpus, workers);
  const double trace_seconds =
      std::chrono::duration<double>(Clock::now() - trace_start).count();

  // Phase 2: the greedy set cover itself.
  const auto cmin_start = Clock::now();
  const distill::CminResult result =
      distill::cmin_from_traces(traces, corpus, {});
  const double cmin_seconds =
      std::chrono::duration<double>(Clock::now() - cmin_start).count();

  // Phase 3: replay verification, full corpus vs distilled corpus.
  const auto replay_start = Clock::now();
  const distill::ReplayReport full =
      distill::replay_corpus_sharded(factory, corpus, workers);
  const distill::ReplayReport distilled =
      distill::replay_corpus_sharded(factory, result.seeds, workers);
  const double replay_seconds =
      std::chrono::duration<double>(Clock::now() - replay_start).count();
  const double replay_execs =
      static_cast<double>(full.executions + distilled.executions);

  std::printf("{\n  \"bench\": \"distill\",\n");
  std::printf("  \"project\": \"%s\",\n", project.c_str());
  std::printf("  \"iterations_per_run\": %llu,\n",
              static_cast<unsigned long long>(iterations));
  std::printf("  \"workers\": %zu,\n", workers);
  std::printf("  \"corpus_seeds\": %zu,\n", result.stats.seeds_before);
  std::printf("  \"kept_seeds\": %zu,\n", result.stats.seeds_after);
  std::printf("  \"reduction_pct\": %.2f,\n",
              result.stats.reduction_ratio() * 100.0);
  std::printf("  \"edge_elements\": %zu,\n", result.stats.edge_elements);
  std::printf("  \"paths\": %zu,\n", result.stats.paths);
  std::printf("  \"cmin_seconds\": %.4f,\n", cmin_seconds);
  std::printf("  \"trace_execs_per_sec\": %.0f,\n",
              trace_seconds > 0.0
                  ? static_cast<double>(corpus.size()) / trace_seconds
                  : 0.0);
  std::printf("  \"replay_execs_per_sec\": %.0f,\n",
              replay_seconds > 0.0 ? replay_execs / replay_seconds : 0.0);
  std::printf("  \"coverage_identical\": %s\n}\n",
              full.same_coverage(distilled) ? "true" : "false");
  return full.same_coverage(distilled) ? 0 : 1;
}
