// Microbenchmarks (google-benchmark) for the engine primitives: model
// instantiation, packet parsing (the cracker's PARSE), file cracking,
// semantic-aware generation, constraint fixup, and a full fuzzing
// execution per protocol target.
#include <benchmark/benchmark.h>

#include "fuzzer/cracker.hpp"
#include "fuzzer/executor.hpp"
#include "fuzzer/instantiator.hpp"
#include "fuzzer/semantic_gen.hpp"
#include "pits/pits.hpp"
#include "protocols/iec61850/mms_server.hpp"
#include "protocols/modbus/modbus_server.hpp"

namespace {

using namespace icsfuzz;

void BM_InstantiateModbus(benchmark::State& state) {
  const model::DataModelSet models = pits::modbus_pit();
  fuzz::ModelInstantiator instantiator;
  Rng rng(1);
  std::size_t i = 0;
  for (auto _ : state) {
    const model::DataModel& model = models.models()[i++ % models.size()];
    benchmark::DoNotOptimize(instantiator.generate(model, rng));
  }
}
BENCHMARK(BM_InstantiateModbus);

void BM_ParseModbusPacket(benchmark::State& state) {
  const model::DataModelSet models = pits::modbus_pit();
  const Bytes packet = model::default_instance(models.at(0)).serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::parse_packet(models.at(0), packet));
  }
}
BENCHMARK(BM_ParseModbusPacket);

void BM_CrackAgainstAllModels(benchmark::State& state) {
  const model::DataModelSet models = pits::modbus_pit();
  const Bytes packet = model::default_instance(models.at(0)).serialize();
  fuzz::FileCracker cracker;
  fuzz::PuzzleCorpus corpus;
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cracker.crack(models, packet, corpus, rng));
  }
}
BENCHMARK(BM_CrackAgainstAllModels);

void BM_SemanticGenerate(benchmark::State& state) {
  const model::DataModelSet models = pits::modbus_pit();
  fuzz::FileCracker cracker;
  fuzz::PuzzleCorpus corpus;
  Rng rng(3);
  // Populate the corpus with a handful of cracked defaults.
  for (const model::DataModel& model : models.models()) {
    const Bytes packet = model::default_instance(model).serialize();
    cracker.crack(models, packet, corpus, rng);
  }
  fuzz::SemanticGenerator generator({}, {});
  std::size_t i = 0;
  for (auto _ : state) {
    const model::DataModel& model = models.models()[i++ % models.size()];
    benchmark::DoNotOptimize(generator.generate(model, corpus, rng));
  }
}
BENCHMARK(BM_SemanticGenerate);

void BM_ApplyConstraints(benchmark::State& state) {
  const model::DataModelSet models = pits::dnp3_pit();  // CRC-heavy
  model::InsTree tree = model::default_instance(models.at(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::apply_constraints(tree));
  }
}
BENCHMARK(BM_ApplyConstraints);

void BM_ExecuteModbus(benchmark::State& state) {
  proto::ModbusServer server;
  fuzz::Executor executor;
  const model::DataModelSet models = pits::modbus_pit();
  const Bytes packet = model::default_instance(models.at(0)).serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.run(server, packet));
  }
}
BENCHMARK(BM_ExecuteModbus);

void BM_ExecuteMms(benchmark::State& state) {
  proto::MmsServer server;
  fuzz::Executor executor;
  const model::DataModelSet models = pits::mms_pit();
  const Bytes packet = model::default_instance(
      *models.find("MmsReadStVal")).serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.run(server, packet));
  }
}
BENCHMARK(BM_ExecuteMms);

}  // namespace

BENCHMARK_MAIN();
