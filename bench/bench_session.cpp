// Loopback session-execution bench: stateful session throughput plus the
// session differential oracle, reported as one JSON document for the
// bench-regression gate.
//
// Two arms execute the identical deterministic pool of IEC 104 session
// streams (SessionSequencer output: STARTDT handshakes, ASDU bursts,
// sequence mutations) against the same stack:
//
//   * tcp — fuzz::Executor with the kTcp session backend driving an
//     external `icsfuzz-shim-target --tcp` server over a real loopback
//     socket: per execution one connection, per message one send/receive
//     lockstep through the shm sync block, coverage adopted from the
//     shared map. `session_execs_per_sec` is floored by the baseline.
//
//   * in-process — the in-process session backend on the same streams:
//     the same canonical split, the same per-message state chain, no
//     socket. `slowdown_vs_in_process` contextualizes the transport tax.
//
// Both arms' per-execution trace hashes, edge counts and session-state
// chains fold into checksums that must match exactly
// (`matches_in_process`) — the session differential oracle as a
// continuously-gated bench invariant. `session_states_reached` must be
// nonzero: a session bench that reaches no stateful coverage is measuring
// the wrong thing.
//
// Budget knob:
//   ICSFUZZ_BENCH_SESSION_EXECS   session executions per arm (default 4000)
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fuzzer/executor.hpp"
#include "fuzzer/instantiator.hpp"
#include "pits/pits.hpp"
#include "protocols/target_registry.hpp"
#include "session/framing.hpp"
#include "session/sequencer.hpp"
#include "util/rng.hpp"

namespace {

using namespace icsfuzz;
using Clock = std::chrono::steady_clock;

// Generous deadline: a scheduler stall on a noisy shared runner must not
// turn a healthy session into a Hang fault and fail the oracle gate.
constexpr int kBenchTimeoutMs = 30000;

constexpr const char* kProject = "IEC104";

/// Deterministic session-stream pool: fixed-seed sequencer output — the
/// handshake choreographies and mutated sequences a stateful campaign's
/// steady state replays.
std::vector<Bytes> make_streams() {
  const model::DataModelSet models = pits::pit_for_project(kProject);
  const fuzz::ModelInstantiator instantiator;
  session::SequencerConfig config;
  config.enabled = true;
  config.framing = session::framing_for_project(kProject);
  config.project = kProject;
  session::SessionSequencer sequencer(config, models, instantiator);
  Rng rng(0x5E55BE7C);
  std::vector<Bytes> streams;
  Bytes out;
  for (int i = 0; i < 48; ++i) {
    sequencer.generate_into(rng, out);
    streams.push_back(out);
  }
  return streams;
}

fuzz::ExecutorConfig session_config(fuzz::BackendKind kind) {
  fuzz::ExecutorConfig config;
  config.backend.kind = kind;
  config.backend.session.framing = session::framing_for_project(kProject);
  config.backend.exec_timeout_ms = kBenchTimeoutMs;
  if (kind != fuzz::BackendKind::kInProcess) {
    config.backend.target_cmd = {ICSFUZZ_SHIM_PATH, "--project", kProject,
                                 "--tcp"};
  }
  return config;
}

struct ArmResult {
  double seconds = 0.0;
  std::uint64_t checksum = 0;
  std::uint64_t messages = 0;
};

std::uint64_t fold(std::uint64_t checksum, const fuzz::ExecResult& result) {
  checksum = checksum * 0x100000001B3ULL ^
             (result.trace_hash + result.trace_edges +
              (result.new_coverage ? 1 : 0) + result.faults.size());
  for (const std::uint32_t state : result.session_states) {
    checksum = checksum * 0x100000001B3ULL ^ state;
  }
  return checksum;
}

ArmResult run_arm(fuzz::Executor& executor, ProtocolTarget& target,
                  const std::vector<Bytes>& streams, std::size_t execs) {
  fuzz::ExecResult result;
  ArmResult arm;
  const auto start = Clock::now();
  for (std::size_t i = 0; i < execs; ++i) {
    executor.run_into(target, streams[i % streams.size()], result);
    arm.checksum = fold(arm.checksum, result);
    arm.messages += result.session_messages;
  }
  arm.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return arm;
}

}  // namespace

int main() {
  const std::size_t execs = static_cast<std::size_t>(
      bench::env_u64("ICSFUZZ_BENCH_SESSION_EXECS", 4000));
  const std::vector<Bytes> streams = make_streams();

  const auto factory = proto::target_factory(kProject);
  const std::unique_ptr<ProtocolTarget> placeholder = factory();
  const std::unique_ptr<ProtocolTarget> inproc_target = factory();

  fuzz::Executor tcp_executor(session_config(fuzz::BackendKind::kTcp));
  fuzz::Executor inproc_executor(
      session_config(fuzz::BackendKind::kInProcess));

  // Warm-up: spawn the session server, converge buffer capacities,
  // saturate the virgin maps so both arms measure the steady state.
  run_arm(tcp_executor, *placeholder, streams, 128);
  run_arm(inproc_executor, *inproc_target, streams, 128);

  const ArmResult tcp = run_arm(tcp_executor, *placeholder, streams, execs);
  const ArmResult inproc =
      run_arm(inproc_executor, *inproc_target, streams, execs);

  const bool matches = tcp.checksum == inproc.checksum &&
                       tcp.messages == inproc.messages;
  const std::size_t states_tcp = tcp_executor.session_state_count();
  const std::size_t states_inproc = inproc_executor.session_state_count();
  const double tcp_rate =
      tcp.seconds > 0.0 ? static_cast<double>(execs) / tcp.seconds : 0.0;
  const double inproc_rate =
      inproc.seconds > 0.0 ? static_cast<double>(execs) / inproc.seconds
                           : 0.0;
  const double message_rate =
      tcp.seconds > 0.0 ? static_cast<double>(tcp.messages) / tcp.seconds
                        : 0.0;

  std::printf("{\n  \"bench\": \"session\",\n");
  std::printf("  \"execs_per_arm\": %zu,\n", execs);
  std::printf("  \"session_execs_per_sec\": %.0f,\n", tcp_rate);
  std::printf("  \"session_messages_per_sec\": %.0f,\n", message_rate);
  std::printf("  \"in_process_session_execs_per_sec\": %.0f,\n", inproc_rate);
  std::printf("  \"slowdown_vs_in_process\": %.2f,\n",
              tcp_rate > 0.0 ? inproc_rate / tcp_rate : 0.0);
  std::printf("  \"matches_in_process\": %s,\n", matches ? "true" : "false");
  std::printf("  \"session_states_reached\": %zu,\n", states_tcp);
  std::printf("  \"session_states_match\": %s,\n",
              states_tcp == states_inproc ? "true" : "false");
  std::printf("  \"messages_per_session\": %.2f,\n",
              execs > 0 ? static_cast<double>(tcp.messages) /
                              static_cast<double>(execs)
                        : 0.0);
  std::printf("  \"checksum\": %llu\n}\n",
              static_cast<unsigned long long>(tcp.checksum & 0xFFFF));
  return matches && states_tcp > 0 && states_tcp == states_inproc ? 0 : 1;
}
