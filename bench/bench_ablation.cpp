// Ablation bench for the design choices called out in DESIGN.md §6.
//
// Variants of Peach* evaluated on libmodbus and lib60870:
//   full          — the shipped configuration
//   no-fixup      — File Fixup disabled: spliced seeds keep broken
//                   size/CRC fields (the paper's motivation for §IV-D)
//   no-similar    — donor lookup restricted to the exact rule tier
//   donors-always — donor_use_pct = 100 (no fresh exploration at donated
//                   positions; measures the exploration/exploitation blend)
//   crack-all     — crack every seed, not only valuable ones (corpus
//                   pollution + per-exec crack cost)
// plus the Peach baseline for reference.
#include <vector>

#include "bench_common.hpp"

namespace {

struct Variant {
  const char* name;
  icsfuzz::fuzz::Strategy strategy;
  void (*tweak)(icsfuzz::fuzz::FuzzerConfig&);
};

void tweak_none(icsfuzz::fuzz::FuzzerConfig&) {}
void tweak_no_fixup(icsfuzz::fuzz::FuzzerConfig& config) {
  config.semantic.apply_file_fixup = false;
}
void tweak_no_similar(icsfuzz::fuzz::FuzzerConfig& config) {
  config.semantic.similar_tier_pct = 0;
}
void tweak_donors_always(icsfuzz::fuzz::FuzzerConfig& config) {
  config.semantic.donor_use_pct = 100;
}
void tweak_crack_all(icsfuzz::fuzz::FuzzerConfig& config) {
  config.crack_all_seeds = true;
}

constexpr Variant kVariants[] = {
    {"byte-mutation", icsfuzz::fuzz::Strategy::ByteMutation, tweak_none},
    {"peach-baseline", icsfuzz::fuzz::Strategy::Peach, tweak_none},
    {"peachstar-full", icsfuzz::fuzz::Strategy::PeachStar, tweak_none},
    {"no-fixup", icsfuzz::fuzz::Strategy::PeachStar, tweak_no_fixup},
    {"no-similar-tier", icsfuzz::fuzz::Strategy::PeachStar, tweak_no_similar},
    {"donors-always", icsfuzz::fuzz::Strategy::PeachStar, tweak_donors_always},
    {"crack-all-seeds", icsfuzz::fuzz::Strategy::PeachStar, tweak_crack_all},
};

}  // namespace

int main() {
  using namespace icsfuzz;
  fuzz::CampaignConfig config = bench::default_campaign_config();
  // Ablations need fewer repetitions to show their ordering.
  config.repetitions = std::max<std::size_t>(3, config.repetitions / 2);

  for (const char* project : {"libmodbus", "lib60870"}) {
    std::printf("Ablation on %s (%zu reps x %llu executions)\n", project,
                config.repetitions,
                static_cast<unsigned long long>(config.iterations));
    std::printf("%-18s %12s %12s %14s\n", "variant", "paths", "edges",
                "unique crashes");
    for (const Variant& variant : kVariants) {
      fuzz::CampaignConfig variant_config = config;
      variant.tweak(variant_config.fuzzer);
      const fuzz::ArmResult arm =
          fuzz::run_arm(variant.strategy, bench::target_factory(project),
                        pits::pit_for_project(project), variant_config);
      std::printf("%-18s %12.1f %12.1f %14zu\n", variant.name,
                  arm.mean_final_paths, arm.mean_final_edges,
                  arm.pooled_crashes.unique_memory_faults());
    }
    std::printf("\n");
  }
  return 0;
}
