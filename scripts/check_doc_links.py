#!/usr/bin/env python3
"""Docs link-check for CI: relative markdown links must resolve on disk.

    check_doc_links.py README.md docs/*.md

Checks every inline link / image target `[text](target)` whose target is a
local path, relative to the file containing it. Skipped on purpose:
  * absolute URLs (http://, https://, mailto:)
  * pure in-page anchors (#section)
  * targets that escape the repository root (run the script from the repo
    root) — GitHub-web idioms such as the CI badge's ../../actions/... link
    have no on-disk counterpart.
A target may carry a #fragment; only the file part must exist.

Exit status: 0 when every checked link resolves, 1 when any is broken,
2 on usage errors.
"""

import os
import re
import sys

INLINE_LINK = re.compile(r"\[[^\]]*\]\(([^()\s]+)(?:\s+\"[^\"]*\")?\)")


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__)
        return 2
    root = os.path.abspath(os.getcwd())
    checked = 0
    broken = 0
    for path in argv[1:]:
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            print(f"FAIL: cannot read {path}: {error}")
            return 2
        base = os.path.dirname(os.path.abspath(path))
        for match in INLINE_LINK.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            file_part, _, _fragment = target.partition("#")
            if not file_part:
                continue
            resolved = os.path.normpath(os.path.join(base, file_part))
            if os.path.commonpath([resolved, root]) != root:
                continue  # escapes the repo: a GitHub-web link, not a file
            line = text.count("\n", 0, match.start()) + 1
            checked += 1
            if not os.path.exists(resolved):
                print(f"BROKEN: {path}:{line}: {target}")
                broken += 1
    print(f"doc link-check: {checked} relative links checked, "
          f"{broken} broken")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
