#!/usr/bin/env python3
"""Bench-regression gate for CI.

Compares a bench's JSON output against a checked-in baseline:

    check_bench_regression.py bench/baseline.json bench_distill.json

The baseline either declares expectations at the top level or, for a
multi-bench baseline, under "benches": {<name>: {...}} where <name> is
matched against the current output's "bench" key. Each section declares
four kinds of expectations:
  * "rates":        throughput keys (exec/sec); the current value may not
                    fall more than "regression_pct" percent below baseline.
  * "min":          hard floors (e.g. reduction_pct, speedup_vs_dense) —
                    hardware-independent quality metrics that must never
                    drop below the floor.
  * "max":          hard ceilings (e.g. steady_state_allocs_per_exec) —
                    metrics that must never exceed the bound.
  * "require_true": boolean keys that must be true (correctness gates such
                    as coverage_identical).

Exit status: 0 on pass, 1 on regression, 2 on usage/parse errors.

To refresh the baseline after a deliberate perf change, run the bench on a
quiet machine and halve the measured rates (CI runners vary widely):
    ./build/bench_distill > current.json   # then edit bench/baseline.json
"""

import json
import sys


def fail(message: str, code: int = 1) -> int:
    print(f"FAIL: {message}")
    return code


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    try:
        with open(argv[1]) as handle:
            baseline = json.load(handle)
        with open(argv[2]) as handle:
            current = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return fail(f"cannot load inputs: {error}", 2)

    section = baseline
    if "benches" in baseline:
        name = current.get("bench")
        section = baseline["benches"].get(name)
        if section is None:
            return fail(f"no baseline section for bench {name!r}", 2)

    regression_pct = float(
        section.get("regression_pct", baseline.get("regression_pct", 25)))
    allowed = 1.0 - regression_pct / 100.0
    status = 0

    for key, reference in section.get("rates", {}).items():
        value = current.get(key)
        if value is None:
            status = fail(f"missing rate key '{key}' in {argv[2]}")
            continue
        floor = float(reference) * allowed
        verdict = "ok" if float(value) >= floor else "REGRESSION"
        print(f"{key}: current={value} baseline={reference} "
              f"floor={floor:.0f} ({regression_pct:.0f}% allowance) {verdict}")
        if float(value) < floor:
            status = 1

    for key, floor in section.get("min", {}).items():
        value = current.get(key)
        if value is None:
            status = fail(f"missing min key '{key}' in {argv[2]}")
            continue
        verdict = "ok" if float(value) >= float(floor) else "REGRESSION"
        print(f"{key}: current={value} min={floor} {verdict}")
        if float(value) < float(floor):
            status = 1

    for key, ceiling in section.get("max", {}).items():
        value = current.get(key)
        if value is None:
            status = fail(f"missing max key '{key}' in {argv[2]}")
            continue
        verdict = "ok" if float(value) <= float(ceiling) else "REGRESSION"
        print(f"{key}: current={value} max={ceiling} {verdict}")
        if float(value) > float(ceiling):
            status = 1

    for key in section.get("require_true", []):
        value = current.get(key)
        print(f"{key}: {value}")
        if value is not True:
            status = fail(f"'{key}' must be true, got {value!r}")

    print("bench-regression gate:", "PASS" if status == 0 else "FAIL")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
