#!/usr/bin/env python3
"""Validates a telemetry snapshot JSON against the checked-in schema.

    check_metrics_schema.py schemas/metrics_snapshot.schema.json session/telemetry.json

Implements the JSON-Schema subset the snapshot schema actually uses —
type, enum, minimum, required, properties, additionalProperties,
items/minItems/maxItems, and local "#/definitions/..." $refs — in stdlib
Python so CI needs no jsonschema package. Because the schema's required
lists enumerate every counter/gauge/histogram by name and forbid unknown
keys, this doubles as a catalog-drift gate: adding a metric to
src/telemetry/metrics.cpp without updating the schema (or vice versa)
fails here.

Exit status: 0 on pass, 1 on validation failure, 2 on usage/parse errors.
"""

import json
import sys


def resolve_ref(schema: dict, root: dict) -> dict:
    ref = schema.get("$ref")
    if ref is None:
        return schema
    if not ref.startswith("#/"):
        raise ValueError(f"unsupported $ref {ref!r} (only local refs)")
    node = root
    for part in ref[2:].split("/"):
        node = node[part]
    return node


def type_matches(value, expected: str) -> bool:
    if expected == "object":
        return isinstance(value, dict)
    if expected == "array":
        return isinstance(value, list)
    if expected == "string":
        return isinstance(value, str)
    if expected == "boolean":
        return isinstance(value, bool)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    raise ValueError(f"unsupported schema type {expected!r}")


def validate(value, schema: dict, root: dict, path: str,
             errors: list) -> None:
    schema = resolve_ref(schema, root)

    expected = schema.get("type")
    if expected is not None and not type_matches(value, expected):
        errors.append(f"{path}: expected {expected}, got "
                      f"{type(value).__name__}")
        return

    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")

    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append(f"{path}: {value} below minimum {schema['minimum']}")

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        if schema.get("additionalProperties", True) is False:
            for key in value:
                if key not in properties:
                    errors.append(f"{path}: unknown key {key!r}")
        for key, subschema in properties.items():
            if key in value:
                validate(value[key], subschema, root, f"{path}.{key}", errors)

    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            errors.append(f"{path}: {len(value)} items, expected >= "
                          f"{schema['minItems']}")
        if "maxItems" in schema and len(value) > schema["maxItems"]:
            errors.append(f"{path}: {len(value)} items, expected <= "
                          f"{schema['maxItems']}")
        if "items" in schema:
            for index, item in enumerate(value):
                validate(item, schema["items"], root, f"{path}[{index}]",
                         errors)


def main(argv: list) -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    try:
        with open(argv[1]) as handle:
            schema = json.load(handle)
        with open(argv[2]) as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"FAIL: cannot load inputs: {error}")
        return 2

    errors: list = []
    try:
        validate(document, schema, schema, "$", errors)
    except (KeyError, ValueError) as error:
        print(f"FAIL: bad schema: {error}")
        return 2

    if errors:
        for message in errors:
            print(f"FAIL: {message}")
        return 1
    print(f"OK: {argv[2]} matches {argv[1]}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
