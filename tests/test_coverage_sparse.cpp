// Equivalence suite for the sparse dirty-word hot path.
//
// Every analysis the feedback loop consumes — classified trace, trace hash,
// edge count, new-bit decision, accumulated map — must be bit-identical
// between the sparse dirty-word implementation (CoverageMap's default) and
// the retained dense full-map reference (coverage/dense_ref.hpp, driven via
// begin_execution_dense / finalize_execution_dense). The suite drives both
// through randomized trace patterns (including empty, dense, and the
// boundary words 0 and 8191) and then proves trajectory preservation at
// campaign scale: a fixed-seed Fuzzer run, a ParallelCampaign at W=2, and a
// distill_interval auto-distill campaign each produce identical path/edge
// series under both modes.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "coverage/coverage_map.hpp"
#include "coverage/dense_ref.hpp"
#include "coverage/instrument.hpp"
#include "parallel/parallel_campaign.hpp"
#include "pits/pits.hpp"
#include "protocols/modbus/modbus_server.hpp"
#include "util/rng.hpp"

namespace icsfuzz::cov {
namespace {

/// Bumps exactly the trace cell `cell` while tracing is armed, by solving
/// the instrumentation update rule for the needed block id:
/// hit(cell ^ prev) touches index (cell ^ prev) ^ prev == cell.
void emit_cell(std::uint32_t cell) { hit(cell ^ tls_prev_location); }

/// One synthetic execution: the (cell, raw-count) multiset to emit.
struct Pattern {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> cells;
};

/// Replays `pattern` into `map` between the given begin/finalize pair and
/// returns the summary.
template <typename Begin, typename Finalize>
TraceSummary replay(CoverageMap& map, const Pattern& pattern, Begin begin,
                    Finalize finalize) {
  begin(map);
  for (const auto& [cell, count] : pattern.cells) {
    for (std::uint32_t i = 0; i < count; ++i) emit_cell(cell);
  }
  return finalize(map);
}

TraceSummary replay_sparse(CoverageMap& map, const Pattern& pattern) {
  return replay(
      map, pattern, [](CoverageMap& m) { m.begin_execution(); },
      [](CoverageMap& m) { return m.finalize_execution(); });
}

TraceSummary replay_dense(CoverageMap& map, const Pattern& pattern) {
  return replay(
      map, pattern, [](CoverageMap& m) { m.begin_execution_dense(); },
      [](CoverageMap& m) { return m.finalize_execution_dense(); });
}

void expect_equivalent(const std::vector<Pattern>& executions) {
  CoverageMap sparse;
  CoverageMap dense;
  for (std::size_t i = 0; i < executions.size(); ++i) {
    const TraceSummary s = replay_sparse(sparse, executions[i]);
    const TraceSummary d = replay_dense(dense, executions[i]);
    ASSERT_EQ(s.trace_hash, d.trace_hash) << "execution " << i;
    ASSERT_EQ(s.trace_edges, d.trace_edges) << "execution " << i;
    ASSERT_EQ(s.new_coverage, d.new_coverage) << "execution " << i;
    ASSERT_EQ(sparse.edges_covered(), dense.edges_covered())
        << "execution " << i;
    // The classified trace buffers and accumulated maps must match byte
    // for byte, not just in aggregate.
    ASSERT_EQ(0, std::memcmp(sparse.trace(), dense.trace(), kMapSize))
        << "execution " << i;
    ASSERT_EQ(sparse.snapshot_accumulated(), dense.snapshot_accumulated())
        << "execution " << i;
  }
}

TEST(SparseEquivalence, EmptyTrace) {
  expect_equivalent({Pattern{}, Pattern{}});
}

TEST(SparseEquivalence, BoundaryWords) {
  // Cells of map word 0 and map word 8191 (the last word), plus the very
  // first and last cells of the map.
  Pattern boundary;
  for (const std::uint32_t cell : {0u, 7u, 65528u, 65535u}) {
    boundary.cells.push_back({cell, 1});
  }
  // A second execution revisits the boundary cells with bucket-changing
  // counts and adds neighbours.
  Pattern revisit;
  for (const std::uint32_t cell : {0u, 65535u}) revisit.cells.push_back({cell, 3});
  for (const std::uint32_t cell : {1u, 65529u}) revisit.cells.push_back({cell, 1});
  expect_equivalent({boundary, revisit, boundary});
}

TEST(SparseEquivalence, SaturatedCounts) {
  Pattern saturated;
  saturated.cells.push_back({123u, 300});  // beyond the 0xFF saturation
  saturated.cells.push_back({124u, 255});
  saturated.cells.push_back({125u, 128});
  expect_equivalent({saturated, saturated});
}

TEST(SparseEquivalence, RandomizedExecutionSequences) {
  Rng rng(0xC0FFEE);
  std::vector<Pattern> executions;
  for (int exec = 0; exec < 40; ++exec) {
    Pattern pattern;
    // Mix sparse (a handful of edges) and dense (thousands) executions.
    const std::size_t edges = rng.chance(1, 5)
                                  ? 2000 + rng.index(3000)
                                  : 1 + rng.index(300);
    for (std::size_t i = 0; i < edges; ++i) {
      pattern.cells.push_back(
          {static_cast<std::uint32_t>(rng.below(kMapSize)),
           static_cast<std::uint32_t>(1 + rng.below(40))});
    }
    executions.push_back(std::move(pattern));
  }
  expect_equivalent(executions);
}

TEST(SparseEquivalence, PerQueryApiMatchesFusedSummary) {
  // The dirty-list-backed per-query API (end_execution + has_new_bits +
  // accumulate + trace_hash + trace_edge_count) must agree with the fused
  // finalize_execution on an identical twin map.
  Rng rng(7);
  CoverageMap fused;
  CoverageMap queried;
  for (int exec = 0; exec < 20; ++exec) {
    Pattern pattern;
    const std::size_t edges = 1 + rng.index(200);
    for (std::size_t i = 0; i < edges; ++i) {
      pattern.cells.push_back(
          {static_cast<std::uint32_t>(rng.below(kMapSize)),
           static_cast<std::uint32_t>(1 + rng.below(5))});
    }
    const TraceSummary summary = replay_sparse(fused, pattern);

    queried.begin_execution();
    for (const auto& [cell, count] : pattern.cells) {
      for (std::uint32_t i = 0; i < count; ++i) emit_cell(cell);
    }
    queried.end_execution();
    const bool new_bits = queried.has_new_bits();
    ASSERT_EQ(queried.trace_hash(), summary.trace_hash);
    ASSERT_EQ(queried.trace_edge_count(), summary.trace_edges);
    ASSERT_EQ(queried.accumulate(), summary.new_coverage);
    ASSERT_EQ(new_bits, summary.new_coverage);
    ASSERT_EQ(queried.edges_covered(), fused.edges_covered());
    ASSERT_EQ(queried.snapshot_accumulated(), fused.snapshot_accumulated());
  }
}

TEST(SparseEquivalence, DirtyListIsCompleteAndDuplicateFree) {
  CoverageMap map;
  Pattern pattern;
  for (const std::uint32_t cell : {8u, 9u, 15u, 4096u, 65535u, 10u}) {
    pattern.cells.push_back({cell, 2});
  }
  replay_sparse(map, pattern);
  std::vector<bool> listed(kMapWords, false);
  for (std::uint32_t i = 0; i < map.dirty_word_count(); ++i) {
    const std::uint16_t w = map.dirty_words()[i];
    ASSERT_FALSE(listed[w]) << "word " << w << " listed twice";
    listed[w] = true;
  }
  for (std::size_t w = 0; w < kMapWords; ++w) {
    const bool nonzero = dense::load_word(map.trace(), w) != 0;
    ASSERT_EQ(nonzero, listed[w]) << "word " << w;
  }
}

// -- Campaign-scale trajectory preservation. ------------------------------

fuzz::TargetFactory modbus_factory() {
  return [] { return std::make_unique<proto::ModbusServer>(); };
}

const model::DataModelSet& modbus_models() {
  static const model::DataModelSet models = pits::modbus_pit();
  return models;
}

/// Rolling fingerprint + per-checkpoint series of one campaign.
struct Trajectory {
  std::vector<std::size_t> path_series;
  std::vector<std::size_t> edge_series;
  std::uint64_t exec_fingerprint = 0;
  std::size_t retained = 0;
  std::size_t corpus = 0;
  std::size_t crashes = 0;

  bool operator==(const Trajectory&) const = default;
};

Trajectory run_campaign(bool dense_reference, std::uint64_t iterations,
                        std::uint64_t distill_interval = 0) {
  proto::ModbusServer server;
  fuzz::FuzzerConfig config;
  config.strategy = fuzz::Strategy::PeachStar;
  config.rng_seed = 42;
  config.distill_interval = distill_interval;
  config.executor.dense_reference = dense_reference;
  fuzz::Fuzzer fuzzer(server, modbus_models(), config);
  Trajectory trajectory;
  fuzzer.run(iterations, [&](const fuzz::ExecResult& result) {
    trajectory.exec_fingerprint =
        trajectory.exec_fingerprint * 0x100000001B3ULL ^
        mix64(result.trace_hash ^ (result.new_coverage ? 1 : 0) ^
              (result.new_path ? 2 : 0) ^ result.trace_edges);
    if (fuzzer.executor().executions() % 500 == 0) {
      trajectory.path_series.push_back(fuzzer.path_count());
      trajectory.edge_series.push_back(fuzzer.executor().edge_count());
    }
  });
  trajectory.retained = fuzzer.retained_seeds().size();
  trajectory.corpus = fuzzer.corpus().size();
  trajectory.crashes = fuzzer.crashes().unique_count();
  return trajectory;
}

TEST(TrajectoryPreservation, FuzzerCampaignIdenticalToDenseReference) {
  const Trajectory sparse = run_campaign(false, 10000);
  const Trajectory dense = run_campaign(true, 10000);
  EXPECT_EQ(sparse, dense);
  EXPECT_FALSE(sparse.path_series.empty());
  EXPECT_GT(sparse.path_series.back(), 0u);
}

TEST(TrajectoryPreservation, AutoDistillCampaignIdenticalToDenseReference) {
  const Trajectory sparse = run_campaign(false, 4000, /*distill_interval=*/1000);
  const Trajectory dense = run_campaign(true, 4000, /*distill_interval=*/1000);
  EXPECT_EQ(sparse, dense);
}

TEST(TrajectoryPreservation, ParallelCampaignW2IdenticalToDenseReference) {
  auto run_parallel = [&](bool dense_reference) {
    par::ParallelCampaignConfig config;
    config.workers = 2;
    config.iterations_per_worker = 3000;
    config.base_seed = 99;
    // Syncing off: a syncing campaign is reproducible only up to OS thread
    // interleaving of the sync points (parallel_campaign.hpp), so the
    // bit-identical sparse-vs-dense comparison needs independent shards.
    // The exchange's merge paths are covered by the CoverageMerge suite.
    config.sync_interval = 0;
    config.fuzzer.strategy = fuzz::Strategy::PeachStar;
    config.fuzzer.executor.dense_reference = dense_reference;
    par::ParallelCampaign campaign(modbus_factory(), modbus_models(), config);
    return campaign.run();
  };
  const par::ParallelCampaignResult sparse = run_parallel(false);
  const par::ParallelCampaignResult dense = run_parallel(true);

  ASSERT_EQ(sparse.workers.size(), dense.workers.size());
  for (std::size_t w = 0; w < sparse.workers.size(); ++w) {
    EXPECT_EQ(sparse.workers[w].paths, dense.workers[w].paths) << "worker " << w;
    EXPECT_EQ(sparse.workers[w].edges, dense.workers[w].edges) << "worker " << w;
    EXPECT_EQ(sparse.workers[w].retained_seeds, dense.workers[w].retained_seeds)
        << "worker " << w;
    EXPECT_EQ(sparse.workers[w].corpus_size, dense.workers[w].corpus_size)
        << "worker " << w;
  }
  EXPECT_EQ(sparse.global_paths, dense.global_paths);
  EXPECT_EQ(sparse.global_edges, dense.global_edges);
  EXPECT_EQ(sparse.total_executions, dense.total_executions);
}

}  // namespace
}  // namespace icsfuzz::cov
