// Equivalence suite for the sparse dirty-word hot path and its SIMD kernels.
//
// Every analysis the feedback loop consumes — classified trace, trace hash,
// edge count, new-bit decision, accumulated map — must be bit-identical
// across a three-implementation matrix: the dense full-map reference
// (coverage/dense_ref.hpp, driven via begin_execution_dense /
// finalize_execution_dense), the sparse path pinned to the scalar reference
// kernel, and the sparse path on every vector kernel this build + CPU can
// run (coverage/simd.hpp — force-selecting the scalar kernel alongside the
// SIMD one exercises both dispatch arms even on a single ISA). The suite
// drives the matrix through randomized trace patterns (including empty,
// dense, and the boundary words 0 and 8191), proves the merge kernels
// equivalent on both sides of the dirty-superset/full-sweep hybrid, and then
// proves trajectory preservation at campaign scale: a fixed-seed Fuzzer run,
// a ParallelCampaign at W=2, and a distill_interval auto-distill campaign
// each produce identical path/edge series under every mode.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "coverage/coverage_map.hpp"
#include "coverage/dense_ref.hpp"
#include "coverage/instrument.hpp"
#include "coverage/simd.hpp"
#include "parallel/parallel_campaign.hpp"
#include "pits/pits.hpp"
#include "protocols/modbus/modbus_server.hpp"
#include "tests/test_support.hpp"
#include "util/rng.hpp"

namespace icsfuzz::cov {
namespace {

using icsfuzz::test::emit_cell;
using icsfuzz::test::runnable_kernels;

/// One synthetic execution: the (cell, raw-count) multiset to emit.
using Pattern = icsfuzz::test::CellPattern;

/// Replays `pattern` into `map` between the given begin/finalize pair and
/// returns the summary.
template <typename Begin, typename Finalize>
TraceSummary replay(CoverageMap& map, const Pattern& pattern, Begin begin,
                    Finalize finalize) {
  begin(map);
  icsfuzz::test::emit_pattern(pattern);
  return finalize(map);
}

TraceSummary replay_sparse(CoverageMap& map, const Pattern& pattern) {
  return replay(
      map, pattern, [](CoverageMap& m) { m.begin_execution(); },
      [](CoverageMap& m) { return m.finalize_execution(); });
}

TraceSummary replay_dense(CoverageMap& map, const Pattern& pattern) {
  return replay(
      map, pattern, [](CoverageMap& m) { m.begin_execution_dense(); },
      [](CoverageMap& m) { return m.finalize_execution_dense(); });
}

/// Drives the full three-way matrix: for every runnable vector kernel, the
/// sparse path on that kernel, the sparse path force-pinned to the scalar
/// reference, and the dense full-map reference must stay bit-identical
/// execution by execution.
void expect_equivalent(const std::vector<Pattern>& executions) {
  for (const simd::Kernel kind : runnable_kernels()) {
    SCOPED_TRACE(std::string("kernel ") +
                 std::string(simd::kernel_name(kind)));
    CoverageMap sparse;
    sparse.use_kernel(kind);
    ASSERT_EQ(sparse.kernel(), kind);
    CoverageMap scalar;
    scalar.use_kernel(simd::Kernel::kScalar);
    CoverageMap dense;
    for (std::size_t i = 0; i < executions.size(); ++i) {
      const TraceSummary s = replay_sparse(sparse, executions[i]);
      const TraceSummary sc = replay_sparse(scalar, executions[i]);
      const TraceSummary d = replay_dense(dense, executions[i]);
      ASSERT_EQ(s.trace_hash, d.trace_hash) << "execution " << i;
      ASSERT_EQ(s.trace_hash, sc.trace_hash) << "execution " << i;
      ASSERT_EQ(s.trace_edges, d.trace_edges) << "execution " << i;
      ASSERT_EQ(s.trace_edges, sc.trace_edges) << "execution " << i;
      ASSERT_EQ(s.new_coverage, d.new_coverage) << "execution " << i;
      ASSERT_EQ(s.new_coverage, sc.new_coverage) << "execution " << i;
      ASSERT_EQ(sparse.edges_covered(), dense.edges_covered())
          << "execution " << i;
      ASSERT_EQ(sparse.edges_covered(), scalar.edges_covered())
          << "execution " << i;
      // The classified trace buffers and accumulated maps must match byte
      // for byte, not just in aggregate.
      ASSERT_EQ(0, std::memcmp(sparse.trace(), dense.trace(), kMapSize))
          << "execution " << i;
      ASSERT_EQ(0, std::memcmp(sparse.trace(), scalar.trace(), kMapSize))
          << "execution " << i;
      ASSERT_EQ(sparse.snapshot_accumulated(), dense.snapshot_accumulated())
          << "execution " << i;
      ASSERT_EQ(sparse.snapshot_accumulated(), scalar.snapshot_accumulated())
          << "execution " << i;
    }
  }
}

TEST(SparseEquivalence, EmptyTrace) {
  expect_equivalent({Pattern{}, Pattern{}});
}

TEST(SparseEquivalence, BoundaryWords) {
  // Cells of map word 0 and map word 8191 (the last word), plus the very
  // first and last cells of the map.
  Pattern boundary;
  for (const std::uint32_t cell : {0u, 7u, 65528u, 65535u}) {
    boundary.push_back({cell, 1});
  }
  // A second execution revisits the boundary cells with bucket-changing
  // counts and adds neighbours.
  Pattern revisit;
  for (const std::uint32_t cell : {0u, 65535u}) revisit.push_back({cell, 3});
  for (const std::uint32_t cell : {1u, 65529u}) revisit.push_back({cell, 1});
  expect_equivalent({boundary, revisit, boundary});
}

TEST(SparseEquivalence, SaturatedCounts) {
  Pattern saturated;
  saturated.push_back({123u, 300});  // beyond the 0xFF saturation
  saturated.push_back({124u, 255});
  saturated.push_back({125u, 128});
  expect_equivalent({saturated, saturated});
}

TEST(SparseEquivalence, RandomizedExecutionSequences) {
  Rng rng(0xC0FFEE);
  std::vector<Pattern> executions;
  for (int exec = 0; exec < 40; ++exec) {
    Pattern pattern;
    // Mix sparse (a handful of edges) and dense (thousands) executions.
    const std::size_t edges = rng.chance(1, 5)
                                  ? 2000 + rng.index(3000)
                                  : 1 + rng.index(300);
    for (std::size_t i = 0; i < edges; ++i) {
      pattern.push_back(
          {static_cast<std::uint32_t>(rng.below(kMapSize)),
           static_cast<std::uint32_t>(1 + rng.below(40))});
    }
    executions.push_back(std::move(pattern));
  }
  expect_equivalent(executions);
}

TEST(SparseEquivalence, PerQueryApiMatchesFusedSummary) {
  // The dirty-list-backed per-query API (end_execution + has_new_bits +
  // accumulate + trace_hash + trace_edge_count) must agree with the fused
  // finalize_execution on an identical twin map.
  Rng rng(7);
  CoverageMap fused;
  CoverageMap queried;
  for (int exec = 0; exec < 20; ++exec) {
    Pattern pattern;
    const std::size_t edges = 1 + rng.index(200);
    for (std::size_t i = 0; i < edges; ++i) {
      pattern.push_back(
          {static_cast<std::uint32_t>(rng.below(kMapSize)),
           static_cast<std::uint32_t>(1 + rng.below(5))});
    }
    const TraceSummary summary = replay_sparse(fused, pattern);

    queried.begin_execution();
    icsfuzz::test::emit_pattern(pattern);
    queried.end_execution();
    const bool new_bits = queried.has_new_bits();
    ASSERT_EQ(queried.trace_hash(), summary.trace_hash);
    ASSERT_EQ(queried.trace_edge_count(), summary.trace_edges);
    ASSERT_EQ(queried.accumulate(), summary.new_coverage);
    ASSERT_EQ(new_bits, summary.new_coverage);
    ASSERT_EQ(queried.edges_covered(), fused.edges_covered());
    ASSERT_EQ(queried.snapshot_accumulated(), fused.snapshot_accumulated());
  }
}

TEST(SparseEquivalence, DirtyListIsCompleteAndDuplicateFree) {
  CoverageMap map;
  Pattern pattern;
  for (const std::uint32_t cell : {8u, 9u, 15u, 4096u, 65535u, 10u}) {
    pattern.push_back({cell, 2});
  }
  replay_sparse(map, pattern);
  std::vector<bool> listed(kMapWords, false);
  for (std::uint32_t i = 0; i < map.dirty_word_count(); ++i) {
    const std::uint16_t w = map.dirty_words()[i];
    ASSERT_FALSE(listed[w]) << "word " << w << " listed twice";
    listed[w] = true;
  }
  for (std::size_t w = 0; w < kMapWords; ++w) {
    const bool nonzero = dense::load_word(map.trace(), w) != 0;
    ASSERT_EQ(nonzero, listed[w]) << "word " << w;
  }
}

// -- SIMD kernel dispatch. ------------------------------------------------

TEST(SimdDispatch, ScalarKernelAlwaysRunnable) {
  EXPECT_NE(simd::ops_for(simd::Kernel::kScalar), nullptr);
  EXPECT_EQ(simd::scalar_ops().kind, simd::Kernel::kScalar);
  // kAuto always resolves (to scalar at worst).
  EXPECT_NE(simd::ops_for(simd::Kernel::kAuto), nullptr);
  EXPECT_NE(simd::ops_for(simd::best_kernel()), nullptr);
}

TEST(SimdDispatch, UseKernelPinsOrFallsBackToScalar) {
  for (const simd::Kernel kind :
       {simd::Kernel::kScalar, simd::Kernel::kSSE2, simd::Kernel::kAVX2,
        simd::Kernel::kNEON}) {
    CoverageMap map;
    map.use_kernel(kind);
    if (simd::ops_for(kind) != nullptr) {
      EXPECT_EQ(map.kernel(), kind) << simd::kernel_name(kind);
    } else {
      EXPECT_EQ(map.kernel(), simd::Kernel::kScalar)
          << simd::kernel_name(kind);
    }
  }
}

TEST(SimdDispatch, ForceKernelOverridesProcessDefault) {
  const simd::Kernel before = simd::active().kind;
  ASSERT_TRUE(simd::force_kernel(simd::Kernel::kScalar));
  EXPECT_EQ(simd::active().kind, simd::Kernel::kScalar);
  // A map created while scalar is forced inherits it.
  CoverageMap map;
  EXPECT_EQ(map.kernel(), simd::Kernel::kScalar);
  ASSERT_TRUE(simd::force_kernel(simd::Kernel::kAuto));
  EXPECT_EQ(simd::active().kind, before);
}

TEST(SimdDispatch, KernelNamesRoundTrip) {
  for (const simd::Kernel kind :
       {simd::Kernel::kScalar, simd::Kernel::kSSE2, simd::Kernel::kAVX2,
        simd::Kernel::kNEON}) {
    EXPECT_EQ(simd::parse_kernel(simd::kernel_name(kind)), kind);
  }
  EXPECT_EQ(simd::parse_kernel("bogus"), simd::Kernel::kAuto);
}

// -- Accumulated-map dirty superset (the sparse merge's iteration set). ---

void expect_superset_exact(const CoverageMap& map) {
  std::vector<bool> listed(kMapWords, false);
  for (std::uint32_t i = 0; i < map.accumulated_dirty_word_count(); ++i) {
    const std::uint16_t w = map.accumulated_dirty_words()[i];
    ASSERT_FALSE(listed[w]) << "virgin word " << w << " listed twice";
    listed[w] = true;
  }
  for (std::size_t w = 0; w < kMapWords; ++w) {
    const bool nonzero = dense::load_word(map.accumulated(), w) != 0;
    ASSERT_EQ(nonzero, listed[w]) << "virgin word " << w;
  }
}

TEST(AccumulatedDirtySuperset, TracksEveryAccumulatePath) {
  for (const simd::Kernel kind : runnable_kernels()) {
    SCOPED_TRACE(std::string("kernel ") +
                 std::string(simd::kernel_name(kind)));
    Rng rng(0xACCD);
    CoverageMap map;
    map.use_kernel(kind);
    // Fused finalize path.
    for (int exec = 0; exec < 10; ++exec) {
      Pattern pattern;
      const std::size_t edges = 1 + rng.index(400);
      for (std::size_t i = 0; i < edges; ++i) {
        pattern.push_back(
            {static_cast<std::uint32_t>(rng.below(kMapSize)),
             static_cast<std::uint32_t>(1 + rng.below(5))});
      }
      replay_sparse(map, pattern);
    }
    expect_superset_exact(map);

    // Per-query accumulate path.
    map.begin_execution();
    emit_cell(12345);
    emit_cell(65535);
    map.end_execution();
    map.accumulate();
    expect_superset_exact(map);

    // Merge paths (sparse walk and raw snapshot).
    CoverageMap other;
    other.use_kernel(kind);
    Pattern foreign;
    for (const std::uint32_t cell : {77u, 40000u, 65528u}) {
      foreign.push_back({cell, 2});
    }
    replay_sparse(other, foreign);
    map.merge(other);
    expect_superset_exact(map);
    CoverageMap snapshot_sink;
    snapshot_sink.use_kernel(kind);
    snapshot_sink.merge_accumulated(map.snapshot_accumulated().data());
    expect_superset_exact(snapshot_sink);

    // Dense-reference finalize rebuilds the superset.
    replay_dense(map, foreign);
    expect_superset_exact(map);

    map.reset_accumulated();
    EXPECT_EQ(map.accumulated_dirty_word_count(), 0u);
    expect_superset_exact(map);
  }
}

// -- Merge-kernel equivalence (the SIMD-compared parallel sync). ----------

/// Builds a map whose accumulated coverage has roughly `words` dirty words —
/// below kMapWords/8 it exercises the sparse superset walk of merge(), above
/// it the SIMD-compared full sweep.
CoverageMap make_accumulated(simd::Kernel kind, std::size_t words,
                             std::uint64_t seed) {
  CoverageMap map;
  map.use_kernel(kind);
  Rng rng(seed);
  Pattern pattern;
  for (std::size_t i = 0; i < words; ++i) {
    const std::uint32_t word = static_cast<std::uint32_t>(rng.below(kMapWords));
    pattern.push_back(
        {word * 8 + static_cast<std::uint32_t>(rng.below(8)),
         static_cast<std::uint32_t>(1 + rng.below(200))});
  }
  replay_sparse(map, pattern);
  return map;
}

TEST(MergeEquivalence, KernelsMatchDenseReferenceOnBothHybridArms) {
  // 200 words < kMapWords/8 (sparse superset walk); 3000 words > kMapWords/8
  // (SIMD-compared full sweep).
  for (const std::size_t words : {std::size_t{200}, std::size_t{3000}}) {
    SCOPED_TRACE("words " + std::to_string(words));
    for (const simd::Kernel kind : runnable_kernels()) {
      SCOPED_TRACE(std::string("kernel ") +
                   std::string(simd::kernel_name(kind)));
      CoverageMap dst = make_accumulated(kind, words, 1);
      CoverageMap src = make_accumulated(kind, words, 2);
      // Dense reference: OR the snapshots through the retained full-map
      // accumulate.
      std::vector<std::uint8_t> expected = dst.snapshot_accumulated();
      const std::vector<std::uint8_t> addend = src.snapshot_accumulated();
      const bool expected_added =
          dense::accumulate(addend.data(), expected.data());
      const std::size_t expected_edges = dense::edge_count(expected.data());

      EXPECT_EQ(dst.merge(src), expected_added);
      EXPECT_EQ(dst.snapshot_accumulated(), expected);
      EXPECT_EQ(dst.edges_covered(), expected_edges);
      expect_superset_exact(dst);
      // Idempotent: the steady-state sync adds nothing on either arm.
      EXPECT_FALSE(dst.merge(src));
      EXPECT_EQ(dst.edges_covered(), expected_edges);

      // The raw-snapshot merge path reaches the same state.
      CoverageMap via_snapshot = make_accumulated(kind, words, 1);
      EXPECT_EQ(via_snapshot.merge_accumulated(addend.data()), expected_added);
      EXPECT_EQ(via_snapshot.snapshot_accumulated(), expected);
      EXPECT_EQ(via_snapshot.edges_covered(), expected_edges);
      expect_superset_exact(via_snapshot);
    }
  }
}

TEST(MergeEquivalence, MixedKernelWorkersMergeIdentically) {
  // A SIMD worker merged into a scalar exchange (and vice versa) must land
  // on the same global map — parallel campaigns may mix kernels freely.
  const std::vector<simd::Kernel> kernels = runnable_kernels();
  const simd::Kernel vector_kind = kernels.back();
  CoverageMap worker_scalar = make_accumulated(simd::Kernel::kScalar, 600, 9);
  CoverageMap worker_simd = make_accumulated(vector_kind, 600, 9);
  ASSERT_EQ(worker_scalar.snapshot_accumulated(),
            worker_simd.snapshot_accumulated());

  CoverageMap exchange_scalar;
  exchange_scalar.use_kernel(simd::Kernel::kScalar);
  CoverageMap exchange_simd;
  exchange_simd.use_kernel(vector_kind);
  exchange_scalar.merge(worker_simd);
  exchange_simd.merge(worker_scalar);
  EXPECT_EQ(exchange_scalar.snapshot_accumulated(),
            exchange_simd.snapshot_accumulated());
  EXPECT_EQ(exchange_scalar.edges_covered(), exchange_simd.edges_covered());
}

// -- Campaign-scale trajectory preservation. ------------------------------

fuzz::TargetFactory modbus_factory() {
  return [] { return std::make_unique<proto::ModbusServer>(); };
}

const model::DataModelSet& modbus_models() {
  static const model::DataModelSet models = pits::modbus_pit();
  return models;
}

/// Rolling fingerprint + per-checkpoint series of one campaign.
struct Trajectory {
  std::vector<std::size_t> path_series;
  std::vector<std::size_t> edge_series;
  std::uint64_t exec_fingerprint = 0;
  std::size_t retained = 0;
  std::size_t corpus = 0;
  std::size_t crashes = 0;

  bool operator==(const Trajectory&) const = default;
};

Trajectory run_campaign(bool dense_reference, std::uint64_t iterations,
                        std::uint64_t distill_interval = 0,
                        simd::Kernel kernel = simd::Kernel::kAuto) {
  proto::ModbusServer server;
  fuzz::FuzzerConfig config;
  config.strategy = fuzz::Strategy::PeachStar;
  config.rng_seed = 42;
  config.distill_interval = distill_interval;
  config.executor.dense_reference = dense_reference;
  config.executor.coverage_kernel = kernel;
  fuzz::Fuzzer fuzzer(server, modbus_models(), config);
  Trajectory trajectory;
  fuzzer.run(iterations, [&](const fuzz::ExecResult& result) {
    trajectory.exec_fingerprint =
        trajectory.exec_fingerprint * 0x100000001B3ULL ^
        mix64(result.trace_hash ^ (result.new_coverage ? 1 : 0) ^
              (result.new_path ? 2 : 0) ^ result.trace_edges);
    if (fuzzer.executor().executions() % 500 == 0) {
      trajectory.path_series.push_back(fuzzer.path_count());
      trajectory.edge_series.push_back(fuzzer.executor().edge_count());
    }
  });
  trajectory.retained = fuzzer.retained_seeds().size();
  trajectory.corpus = fuzzer.corpus().size();
  trajectory.crashes = fuzzer.crashes().unique_count();
  return trajectory;
}

TEST(TrajectoryPreservation, FuzzerCampaignIdenticalToDenseReference) {
  // Three-way: dense reference vs sparse-scalar vs sparse on the best SIMD
  // kernel (the executor config force-selects the scalar arm, so both
  // dispatch paths run even when CI has a single ISA).
  const Trajectory simd =
      run_campaign(false, 10000, 0, simd::Kernel::kAuto);
  const Trajectory scalar =
      run_campaign(false, 10000, 0, simd::Kernel::kScalar);
  const Trajectory dense = run_campaign(true, 10000);
  EXPECT_EQ(simd, dense);
  EXPECT_EQ(simd, scalar);
  EXPECT_FALSE(simd.path_series.empty());
  EXPECT_GT(simd.path_series.back(), 0u);
}

TEST(TrajectoryPreservation, AutoDistillCampaignIdenticalToDenseReference) {
  const Trajectory simd = run_campaign(false, 4000, /*distill_interval=*/1000,
                                       simd::Kernel::kAuto);
  const Trajectory scalar = run_campaign(
      false, 4000, /*distill_interval=*/1000, simd::Kernel::kScalar);
  const Trajectory dense = run_campaign(true, 4000, /*distill_interval=*/1000);
  EXPECT_EQ(simd, dense);
  EXPECT_EQ(simd, scalar);
}

TEST(TrajectoryPreservation, ParallelCampaignW2IdenticalAcrossAllModes) {
  auto run_parallel = [&](bool dense_reference, simd::Kernel kernel) {
    par::ParallelCampaignConfig config;
    config.workers = 2;
    config.iterations_per_worker = 3000;
    config.base_seed = 99;
    // Syncing off: a syncing campaign is reproducible only up to OS thread
    // interleaving of the sync points (parallel_campaign.hpp), so the
    // bit-identical sparse-vs-dense comparison needs independent shards.
    // The exchange's merge paths are covered by the CoverageMerge and
    // MergeEquivalence suites.
    config.sync_interval = 0;
    config.fuzzer.strategy = fuzz::Strategy::PeachStar;
    config.fuzzer.executor.dense_reference = dense_reference;
    config.fuzzer.executor.coverage_kernel = kernel;
    par::ParallelCampaign campaign(modbus_factory(), modbus_models(), config);
    return campaign.run();
  };
  // Three-way fixed-seed matrix at W=2: sparse-SIMD, sparse-scalar, dense.
  const par::ParallelCampaignResult simd =
      run_parallel(false, simd::Kernel::kAuto);
  const par::ParallelCampaignResult scalar =
      run_parallel(false, simd::Kernel::kScalar);
  const par::ParallelCampaignResult dense =
      run_parallel(true, simd::Kernel::kAuto);

  for (const par::ParallelCampaignResult* other : {&scalar, &dense}) {
    ASSERT_EQ(simd.workers.size(), other->workers.size());
    for (std::size_t w = 0; w < simd.workers.size(); ++w) {
      EXPECT_EQ(simd.workers[w].paths, other->workers[w].paths)
          << "worker " << w;
      EXPECT_EQ(simd.workers[w].edges, other->workers[w].edges)
          << "worker " << w;
      EXPECT_EQ(simd.workers[w].retained_seeds,
                other->workers[w].retained_seeds)
          << "worker " << w;
      EXPECT_EQ(simd.workers[w].corpus_size, other->workers[w].corpus_size)
          << "worker " << w;
    }
    EXPECT_EQ(simd.global_paths, other->global_paths);
    EXPECT_EQ(simd.global_edges, other->global_edges);
    EXPECT_EQ(simd.total_executions, other->total_executions);
  }
}

}  // namespace
}  // namespace icsfuzz::cov
