// Unit tests for src/model: chunk construction rules and their identity
// keys, relations, fixups, and data-model validation.
#include <gtest/gtest.h>

#include "model/data_model.hpp"

namespace icsfuzz::model {
namespace {

NumberSpec u16be(std::uint64_t default_value = 0) {
  NumberSpec spec;
  spec.width = 2;
  spec.endian = Endian::Big;
  spec.default_value = default_value;
  return spec;
}

// ------------------------------------------------------------------- Chunks

TEST(Chunk, FactoriesSetKindAndName) {
  EXPECT_EQ(Chunk::number("n", u16be()).kind(), ChunkKind::Number);
  EXPECT_EQ(Chunk::string("s", {}).kind(), ChunkKind::String);
  EXPECT_EQ(Chunk::blob("b", {}).kind(), ChunkKind::Blob);
  EXPECT_EQ(Chunk::block("blk", {Chunk::blob("x", {})}).kind(), ChunkKind::Block);
  EXPECT_EQ(Chunk::choice("ch", {Chunk::blob("y", {})}).kind(), ChunkKind::Choice);
  EXPECT_EQ(Chunk::number("n", u16be()).name(), "n");
}

TEST(Chunk, TokenFactorySetsTokenAndLegalValue) {
  const Chunk token = Chunk::token("t", 2, Endian::Big, 0x1234);
  EXPECT_TRUE(token.number_spec().is_token);
  EXPECT_EQ(token.number_spec().default_value, 0x1234u);
  ASSERT_EQ(token.number_spec().legal_values.size(), 1u);
}

TEST(Chunk, WidthClampedToValidRange) {
  NumberSpec zero;
  zero.width = 0;
  EXPECT_EQ(Chunk::number("z", zero).number_spec().width, 1u);
  NumberSpec wide;
  wide.width = 20;
  EXPECT_EQ(Chunk::number("w", wide).number_spec().width, 8u);
}

TEST(Chunk, TagDefaultsToNameAndIsOverridable) {
  Chunk chunk = Chunk::number("Addr", u16be());
  EXPECT_EQ(chunk.tag(), "Addr");
  chunk.with_tag("mb-addr");
  EXPECT_EQ(chunk.tag(), "mb-addr");
}

TEST(Chunk, RuleKeySharedAcrossModelsViaTag) {
  // The paper's cross-packet-type similarity: same shape + same tag.
  Chunk a = Chunk::number("ReadCoils.Address", u16be());
  a.with_tag("mb-addr");
  Chunk b = Chunk::number("WriteSingleCoil.Address", u16be());
  b.with_tag("mb-addr");
  EXPECT_EQ(a.rule_key(), b.rule_key());
}

TEST(Chunk, RuleKeyDiffersByTag) {
  Chunk a = Chunk::number("x", u16be());
  a.with_tag("one");
  Chunk b = Chunk::number("x", u16be());
  b.with_tag("two");
  EXPECT_NE(a.rule_key(), b.rule_key());
}

TEST(Chunk, ShapeKeyIgnoresTagButNotWidth) {
  Chunk a = Chunk::number("a", u16be());
  a.with_tag("one");
  Chunk b = Chunk::number("b", u16be());
  b.with_tag("two");
  EXPECT_EQ(a.shape_key(), b.shape_key());

  NumberSpec u8;
  u8.width = 1;
  Chunk c = Chunk::number("c", u8);
  EXPECT_NE(a.shape_key(), c.shape_key());
}

TEST(Chunk, ShapeKeySensitiveToEndianness) {
  NumberSpec le = u16be();
  le.endian = Endian::Little;
  EXPECT_NE(Chunk::number("a", u16be()).shape_key(),
            Chunk::number("a", le).shape_key());
}

TEST(Chunk, RelationChangesRuleKey) {
  Chunk plain = Chunk::number("len", u16be());
  Chunk related = Chunk::number("len", u16be());
  related.with_relation(Relation{RelationKind::SizeOf, "body", 1, 0});
  EXPECT_NE(plain.rule_key(), related.rule_key());
}

TEST(Chunk, FixupChangesRuleKey) {
  Chunk plain = Chunk::number("crc", u16be());
  Chunk fixed = Chunk::number("crc", u16be());
  fixed.with_fixup(Fixup{FixupKind::Crc16Modbus, "body"});
  EXPECT_NE(plain.rule_key(), fixed.rule_key());
}

TEST(Chunk, FixedWidthComputation) {
  EXPECT_EQ(Chunk::number("n", u16be()).fixed_width(), 2u);
  StringSpec fixed_string;
  fixed_string.length = 5;
  EXPECT_EQ(Chunk::string("s", fixed_string).fixed_width(), 5u);
  StringSpec terminated = fixed_string;
  terminated.null_terminated = true;
  EXPECT_EQ(Chunk::string("s", terminated).fixed_width(), 6u);
  EXPECT_FALSE(Chunk::blob("b", {}).fixed_width().has_value());
  BlobSpec sized;
  sized.length = 3;
  EXPECT_EQ(Chunk::blob("b", sized).fixed_width(), 3u);
}

TEST(Chunk, BlockFixedWidthSumsChildren) {
  Chunk block = Chunk::block(
      "blk", {Chunk::number("a", u16be()), Chunk::number("b", u16be())});
  EXPECT_EQ(block.fixed_width(), 4u);
  Chunk variable = Chunk::block("blk2", {Chunk::number("a", u16be()),
                                         Chunk::blob("rest", {})});
  EXPECT_FALSE(variable.fixed_width().has_value());
}

TEST(Chunk, FindLocatesNestedChunk) {
  Chunk tree = Chunk::block(
      "root", {Chunk::block("inner", {Chunk::number("deep", u16be())})});
  ASSERT_NE(tree.find("deep"), nullptr);
  EXPECT_EQ(tree.find("deep")->name(), "deep");
  EXPECT_EQ(tree.find("absent"), nullptr);
}

TEST(Chunk, NodeCountCountsSubtree) {
  Chunk tree = Chunk::block(
      "root", {Chunk::block("inner", {Chunk::number("deep", u16be())})});
  EXPECT_EQ(tree.node_count(), 3u);
}

// ----------------------------------------------------------------- Relations

TEST(Relation, SizeOfValue) {
  const Relation rel{RelationKind::SizeOf, "t", 1, 0};
  EXPECT_EQ(relation_value(rel, 10), 10u);
}

TEST(Relation, SizeOfWithBias) {
  const Relation rel{RelationKind::SizeOf, "t", 1, 4};
  EXPECT_EQ(relation_value(rel, 10), 14u);
}

TEST(Relation, NegativeBiasClampsAtZero) {
  const Relation rel{RelationKind::SizeOf, "t", 1, -20};
  EXPECT_EQ(relation_value(rel, 10), 0u);
}

TEST(Relation, CountOfDividesByUnit) {
  const Relation rel{RelationKind::CountOf, "t", 2, 0};
  EXPECT_EQ(relation_value(rel, 10), 5u);
}

TEST(Relation, CountOfZeroUnitTreatedAsOne) {
  const Relation rel{RelationKind::CountOf, "t", 0, 0};
  EXPECT_EQ(relation_value(rel, 3), 3u);
}

TEST(Relation, KindParsing) {
  EXPECT_EQ(relation_kind_from_string("sizeof"), RelationKind::SizeOf);
  EXPECT_EQ(relation_kind_from_string("CountOf"), RelationKind::CountOf);
  EXPECT_EQ(relation_kind_from_string("bogus"), RelationKind::None);
  EXPECT_EQ(to_string(RelationKind::SizeOf), "sizeof");
}

// -------------------------------------------------------------------- Fixups

TEST(Fixup, WidthsMatchAlgorithms) {
  EXPECT_EQ(fixup_width(FixupKind::Crc32), 4u);
  EXPECT_EQ(fixup_width(FixupKind::Crc16Modbus), 2u);
  EXPECT_EQ(fixup_width(FixupKind::CrcDnp3), 2u);
  EXPECT_EQ(fixup_width(FixupKind::Lrc8), 1u);
  EXPECT_EQ(fixup_width(FixupKind::Sum8), 1u);
  EXPECT_EQ(fixup_width(FixupKind::Fletcher16), 2u);
  EXPECT_EQ(fixup_width(FixupKind::None), 0u);
}

TEST(Fixup, ClassNameParsing) {
  EXPECT_EQ(fixup_kind_from_string("Crc32Fixup"), FixupKind::Crc32);
  EXPECT_EQ(fixup_kind_from_string("crc16modbus"), FixupKind::Crc16Modbus);
  EXPECT_EQ(fixup_kind_from_string("CrcDnp3Fixup"), FixupKind::CrcDnp3);
  EXPECT_EQ(fixup_kind_from_string("nope"), FixupKind::None);
}

TEST(Fixup, ValueMatchesChecksumFunctions) {
  const Bytes data = to_bytes("123456789");
  EXPECT_EQ(fixup_value(FixupKind::Crc32, data), 0xCBF43926u);
  EXPECT_EQ(fixup_value(FixupKind::Crc16Modbus, data), 0x4B37u);
}

// --------------------------------------------------------------- DataModel

DataModel make_valid_model() {
  std::vector<Chunk> fields;
  fields.push_back(Chunk::token("Magic", 2, Endian::Big, 0xABCD));
  Chunk length = Chunk::number("Length", NumberSpec{.width = 2});
  length.with_relation(Relation{RelationKind::SizeOf, "Body", 1, 0});
  fields.push_back(std::move(length));
  fields.push_back(Chunk::block(
      "Body", {Chunk::number("A", NumberSpec{.width = 1}),
               Chunk::blob("Rest", {})}));
  Chunk crc = Chunk::number("Crc", NumberSpec{.width = 4});
  crc.with_fixup(Fixup{FixupKind::Crc32, "Body"});
  fields.push_back(std::move(crc));
  return DataModel("M", Chunk::block("root", std::move(fields)));
}

TEST(DataModel, ValidModelPasses) {
  EXPECT_FALSE(make_valid_model().validate().has_value());
}

TEST(DataModel, LinearIsTopLevelFieldOrder) {
  const DataModel model = make_valid_model();
  const auto linear = model.linear();
  ASSERT_EQ(linear.size(), 4u);
  EXPECT_EQ(linear[0]->name(), "Magic");
  EXPECT_EQ(linear[3]->name(), "Crc");
}

TEST(DataModel, LeavesAreWireOrder) {
  const DataModel model = make_valid_model();
  const auto leaves = model.leaves();
  ASSERT_EQ(leaves.size(), 5u);
  EXPECT_EQ(leaves[2]->name(), "A");
  EXPECT_EQ(leaves[3]->name(), "Rest");
}

TEST(DataModel, FindAndRelationSource) {
  const DataModel model = make_valid_model();
  EXPECT_NE(model.find("Rest"), nullptr);
  const Chunk* source = model.relation_source_for("Body");
  ASSERT_NE(source, nullptr);
  EXPECT_EQ(source->name(), "Length");
  EXPECT_EQ(model.relation_source_for("Magic"), nullptr);
}

TEST(DataModel, DuplicateNamesRejected) {
  DataModel model("dup", Chunk::block("root", {Chunk::blob("x", {}),
                                               Chunk::blob("x", {})}));
  const auto error = model.validate();
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("duplicate"), std::string::npos);
}

TEST(DataModel, DanglingRelationRejected) {
  Chunk length = Chunk::number("len", NumberSpec{.width = 1});
  length.with_relation(Relation{RelationKind::SizeOf, "ghost", 1, 0});
  DataModel model("m", Chunk::block("root", {std::move(length)}));
  const auto error = model.validate();
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("ghost"), std::string::npos);
}

TEST(DataModel, DanglingFixupRejected) {
  Chunk crc = Chunk::number("crc", NumberSpec{.width = 2});
  crc.with_fixup(Fixup{FixupKind::Crc16Modbus, "ghost"});
  DataModel model("m", Chunk::block("root", {std::move(crc)}));
  EXPECT_TRUE(model.validate().has_value());
}

TEST(DataModel, EmptyCompositeRejected) {
  DataModel model("m", Chunk::block("root", {Chunk::block("empty", {})}));
  EXPECT_TRUE(model.validate().has_value());
}

TEST(DataModel, OpcodeMetadata) {
  DataModel model = make_valid_model();
  EXPECT_FALSE(model.opcode().has_value());
  model.set_opcode(6);
  EXPECT_EQ(model.opcode(), 6u);
}

TEST(DataModelSet, FindByNameAndValidate) {
  DataModelSet set;
  set.add(make_valid_model());
  EXPECT_NE(set.find("M"), nullptr);
  EXPECT_EQ(set.find("absent"), nullptr);
  EXPECT_FALSE(set.validate().has_value());
  EXPECT_EQ(set.size(), 1u);
}

TEST(DataModelSet, ValidateNamesOffendingModel) {
  DataModelSet set;
  set.add(DataModel("bad", Chunk::block("root", {Chunk::blob("x", {}),
                                                 Chunk::blob("x", {})})));
  const auto error = set.validate();
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("bad"), std::string::npos);
}

}  // namespace
}  // namespace icsfuzz::model
