// Behavioural tests for the Modbus/TCP stack, including the two injected
// Table-I vulnerabilities (heap UAF in 0x17, SEGV in 0x2B).
#include <gtest/gtest.h>

#include "protocols/modbus/modbus_server.hpp"
#include "test_support.hpp"

namespace icsfuzz::proto {
namespace {

using test::run_armed;

/// Builds an MBAP-framed PDU addressed to the configured unit.
Bytes frame(Bytes pdu, std::uint8_t unit = ModbusServer::kUnitId,
            std::uint16_t transaction = 0x0001, std::uint16_t protocol = 0) {
  ByteWriter writer;
  writer.write_u16(transaction, Endian::Big);
  writer.write_u16(protocol, Endian::Big);
  writer.write_u16(static_cast<std::uint16_t>(pdu.size() + 1), Endian::Big);
  writer.write_u8(unit);
  writer.write_bytes(pdu);
  return writer.take();
}

TEST(Modbus, RuntFrameIsDropped) {
  ModbusServer server;
  EXPECT_TRUE(run_armed(server, Bytes{0x00, 0x01}).response.empty());
}

TEST(Modbus, WrongProtocolIdDropped) {
  ModbusServer server;
  const Bytes packet = frame({0x03, 0x00, 0x00, 0x00, 0x01},
                             ModbusServer::kUnitId, 1, 0x5555);
  EXPECT_TRUE(run_armed(server, packet).response.empty());
}

TEST(Modbus, WrongUnitIdDropped) {
  ModbusServer server;
  const Bytes packet = frame({0x03, 0x00, 0x00, 0x00, 0x01}, 0x55);
  EXPECT_TRUE(run_armed(server, packet).response.empty());
}

TEST(Modbus, LengthMismatchDropped) {
  ModbusServer server;
  Bytes packet = frame({0x03, 0x00, 0x00, 0x00, 0x01});
  packet[5] = static_cast<std::uint8_t>(packet[5] + 3);  // inflate MBAP length
  EXPECT_TRUE(run_armed(server, packet).response.empty());
}

TEST(Modbus, ReadHoldingRegistersHappyPath) {
  ModbusServer server;
  const Bytes packet = frame({0x03, 0x00, 0x02, 0x00, 0x03});
  const auto run = run_armed(server, packet);
  ASSERT_FALSE(run.crashed());
  // MBAP(7) + fc + count + 3 registers.
  ASSERT_EQ(run.response.size(), 7u + 2u + 6u);
  EXPECT_EQ(run.response[7], 0x03);
  EXPECT_EQ(run.response[8], 6);  // byte count
}

TEST(Modbus, ReadEchoesTransactionId) {
  ModbusServer server;
  const Bytes packet = frame({0x03, 0x00, 0x00, 0x00, 0x01},
                             ModbusServer::kUnitId, 0xBEEF);
  const auto run = run_armed(server, packet);
  ASSERT_GE(run.response.size(), 2u);
  EXPECT_EQ(run.response[0], 0xBE);
  EXPECT_EQ(run.response[1], 0xEF);
}

TEST(Modbus, ReadBeyondBankIsIllegalAddress) {
  ModbusServer server;
  const Bytes packet = frame({0x03, 0x00, 0x7F, 0x00, 0x10});
  const auto run = run_armed(server, packet);
  ASSERT_EQ(run.response.size(), 9u);
  EXPECT_EQ(run.response[7], 0x83);  // exception fc
  EXPECT_EQ(run.response[8], 0x02);  // illegal data address
}

TEST(Modbus, ZeroQuantityIsIllegalValue) {
  ModbusServer server;
  const Bytes packet = frame({0x03, 0x00, 0x00, 0x00, 0x00});
  const auto run = run_armed(server, packet);
  ASSERT_EQ(run.response.size(), 9u);
  EXPECT_EQ(run.response[8], 0x03);
}

TEST(Modbus, UnknownFunctionIsIllegalFunction) {
  ModbusServer server;
  const Bytes packet = frame({0x55});
  const auto run = run_armed(server, packet);
  ASSERT_EQ(run.response.size(), 9u);
  EXPECT_EQ(run.response[7], 0x55 | 0x80);
  EXPECT_EQ(run.response[8], 0x01);
}

TEST(Modbus, WriteSingleCoilUpdatesState) {
  ModbusServer server;
  const Bytes packet = frame({0x05, 0x00, 0x07, 0xFF, 0x00});
  server.reset();
  san::FaultSink::arm();
  server.process(ByteSpan(packet.data(), packet.size()));
  (void)san::FaultSink::disarm();
  EXPECT_TRUE(server.coil(7));
}

TEST(Modbus, WriteSingleCoilRejectsBadValue) {
  ModbusServer server;
  const Bytes packet = frame({0x05, 0x00, 0x07, 0x12, 0x34});
  const auto run = run_armed(server, packet);
  ASSERT_EQ(run.response.size(), 9u);
  EXPECT_EQ(run.response[8], 0x03);
}

TEST(Modbus, WriteSingleRegisterEcho) {
  ModbusServer server;
  const Bytes packet = frame({0x06, 0x00, 0x04, 0xAB, 0xCD});
  const auto run = run_armed(server, packet);
  ASSERT_EQ(run.response.size(), 12u);
  EXPECT_EQ(Bytes(run.response.begin() + 7, run.response.end()),
            (Bytes{0x06, 0x00, 0x04, 0xAB, 0xCD}));
}

TEST(Modbus, WriteMultipleRegistersValidatesByteCount) {
  ModbusServer server;
  // quantity 2 but byte count 3: invalid.
  const Bytes bad = frame({0x10, 0x00, 0x00, 0x00, 0x02, 0x03, 1, 2, 3});
  const auto run = run_armed(server, bad);
  ASSERT_EQ(run.response.size(), 9u);
  EXPECT_EQ(run.response[8], 0x03);
}

TEST(Modbus, WriteMultipleRegistersStoresValues) {
  ModbusServer server;
  const Bytes packet =
      frame({0x10, 0x00, 0x05, 0x00, 0x02, 0x04, 0x11, 0x22, 0x33, 0x44});
  server.reset();
  san::FaultSink::arm();
  server.process(ByteSpan(packet.data(), packet.size()));
  (void)san::FaultSink::disarm();
  EXPECT_EQ(server.holding_register(5), 0x1122);
  EXPECT_EQ(server.holding_register(6), 0x3344);
}

TEST(Modbus, MaskWriteAppliesMasks) {
  ModbusServer server;
  // Set register 3 to 0xFFFF first, then mask.
  const Bytes set_reg = frame({0x06, 0x00, 0x03, 0xFF, 0xFF});
  const Bytes mask = frame({0x16, 0x00, 0x03, 0x0F, 0x0F, 0xF0, 0x00});
  server.reset();
  san::FaultSink::arm();
  server.process(ByteSpan(set_reg.data(), set_reg.size()));
  (void)san::FaultSink::disarm();
  san::FaultSink::arm();
  // Note process() resets nothing itself; reuse the same server instance.
  server.process(ByteSpan(mask.data(), mask.size()));
  (void)san::FaultSink::disarm();
  // (FFFF & 0F0F) | (F000 & ~0F0F) = 0F0F | F000 = FF0F.
  EXPECT_EQ(server.holding_register(3), 0xFF0F);
}

TEST(Modbus, StreamProcessesMultipleFrames) {
  ModbusServer server;
  Bytes stream = frame({0x03, 0x00, 0x00, 0x00, 0x01});
  const Bytes second = frame({0x06, 0x00, 0x01, 0x00, 0x10});
  append(stream, second);
  const auto run = run_armed(server, stream);
  // Two responses concatenated: read (MBAP 7 + fc + count + 2 data = 11
  // bytes) + write echo (MBAP 7 + fc + addr + value = 12 bytes).
  EXPECT_EQ(run.response.size(), 23u);
}

TEST(Modbus, StreamStopsAtPartialFrame) {
  ModbusServer server;
  Bytes stream = frame({0x03, 0x00, 0x00, 0x00, 0x01});
  stream.push_back(0x00);  // half a header
  const auto run = run_armed(server, stream);
  EXPECT_EQ(run.response.size(), 11u);  // only the complete read answered
}

// ------------------------------------------------- Injected vulnerabilities

TEST(ModbusBug, ReadWriteMultipleZeroWriteIsUseAfterFree) {
  ModbusServer server;
  // fc 0x17: read addr 0 qty 2; write addr 0 qty 0, byte count 0 — slips
  // past the missing lower-bound check and frees the scratch early.
  const Bytes packet =
      frame({0x17, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00, 0x00, 0x00});
  const auto run = run_armed(server, packet);
  ASSERT_TRUE(run.crashed());
  EXPECT_TRUE(run.crashed_with(san::FaultKind::HeapUseAfterFree));
}

TEST(ModbusBug, ReadWriteMultipleWithWritesIsClean) {
  ModbusServer server;
  const Bytes packet = frame(
      {0x17, 0x00, 0x00, 0x00, 0x02, 0x00, 0x08, 0x00, 0x01, 0x02, 0xAA, 0xBB});
  const auto run = run_armed(server, packet);
  EXPECT_FALSE(run.crashed());
  ASSERT_GE(run.response.size(), 9u);
  EXPECT_EQ(run.response[7], 0x17);
  EXPECT_EQ(server.holding_register(8), 0xAABB);
}

TEST(ModbusBug, DeviceIdIndividualAccessOobIsSegv) {
  ModbusServer server;
  // MEI 0x0E, ReadDevId 0x04 (individual), object id 9 (table has 3).
  const Bytes packet = frame({0x2B, 0x0E, 0x04, 0x09});
  const auto run = run_armed(server, packet);
  ASSERT_TRUE(run.crashed());
  EXPECT_TRUE(run.crashed_with(san::FaultKind::Segv));
}

TEST(ModbusBug, DeviceIdValidObjectIsClean) {
  ModbusServer server;
  const Bytes packet = frame({0x2B, 0x0E, 0x04, 0x01});
  const auto run = run_armed(server, packet);
  EXPECT_FALSE(run.crashed());
  EXPECT_FALSE(run.response.empty());
}

TEST(ModbusBug, DeviceIdStreamAccessIsCleanForAnyObject) {
  ModbusServer server;
  for (std::uint8_t object = 0; object < 16; ++object) {
    const Bytes packet = frame({0x2B, 0x0E, 0x01, object});
    const auto run = run_armed(server, packet);
    EXPECT_FALSE(run.crashed()) << "object " << int(object);
  }
}

// Property sweep: every in-range read function never faults for any valid
// address/quantity combination boundary.
struct ReadCase {
  std::uint8_t function;
  std::uint16_t address;
  std::uint16_t quantity;
};

class ModbusReadSweep : public ::testing::TestWithParam<ReadCase> {};

TEST_P(ModbusReadSweep, ValidReadsNeverFault) {
  const ReadCase& param = GetParam();
  ModbusServer server;
  const Bytes packet = frame({param.function,
                              static_cast<std::uint8_t>(param.address >> 8),
                              static_cast<std::uint8_t>(param.address & 0xFF),
                              static_cast<std::uint8_t>(param.quantity >> 8),
                              static_cast<std::uint8_t>(param.quantity & 0xFF)});
  const auto run = run_armed(server, packet);
  EXPECT_FALSE(run.crashed());
  ASSERT_GE(run.response.size(), 8u);
  EXPECT_EQ(run.response[7], param.function);  // not an exception
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, ModbusReadSweep,
    ::testing::Values(ReadCase{0x01, 0, 1}, ReadCase{0x01, 0, 128},
                      ReadCase{0x01, 127, 1}, ReadCase{0x02, 0, 64},
                      ReadCase{0x03, 0, 1}, ReadCase{0x03, 0, 125},
                      ReadCase{0x03, 127, 1}, ReadCase{0x04, 64, 64},
                      ReadCase{0x04, 0, 100}));

}  // namespace
}  // namespace icsfuzz::proto
