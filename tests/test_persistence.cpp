// Tests for session persistence: save/load round-trips of crash
// reproducers and retained seeds, plus replayability of reloaded crashes.
#include <gtest/gtest.h>

#include <filesystem>

#include "distill/distill.hpp"
#include "distill/replay.hpp"
#include "fuzzer/executor.hpp"
#include "fuzzer/persistence.hpp"
#include "pits/pits.hpp"
#include "protocols/lib60870/cs101_server.hpp"
#include "protocols/modbus/modbus_server.hpp"

namespace icsfuzz::fuzz {
namespace {

namespace fs = std::filesystem;

class SessionDir {
 public:
  SessionDir() {
    path_ = fs::temp_directory_path() /
            ("icsfuzz-test-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter_++));
  }
  ~SessionDir() {
    std::error_code error;
    fs::remove_all(path_, error);
  }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  static inline int counter_ = 0;
  fs::path path_;
};

Fuzzer fuzz_cs101(std::uint64_t iterations) {
  static proto::Cs101Server server;  // reset() by every execution
  static const model::DataModelSet models = pits::cs101_pit();
  FuzzerConfig config;
  config.strategy = Strategy::PeachStar;
  config.rng_seed = 5;
  Fuzzer fuzzer(server, models, config);
  fuzzer.run(iterations);
  return fuzzer;
}

TEST(Persistence, SaveCreatesLayout) {
  SessionDir dir;
  Fuzzer fuzzer = fuzz_cs101(8000);
  const auto error = save_session(fuzzer, dir.str());
  ASSERT_FALSE(error.has_value()) << *error;
  EXPECT_TRUE(fs::exists(fs::path(dir.str()) / "stats.csv"));
  EXPECT_TRUE(fs::exists(fs::path(dir.str()) / "summary.txt"));
  EXPECT_TRUE(fs::is_directory(fs::path(dir.str()) / "crashes"));
  EXPECT_TRUE(fs::is_directory(fs::path(dir.str()) / "seeds"));
}

TEST(Persistence, SeedsRoundTrip) {
  SessionDir dir;
  Fuzzer fuzzer = fuzz_cs101(5000);
  ASSERT_FALSE(save_session(fuzzer, dir.str()).has_value());
  const std::vector<Bytes> seeds = load_seeds(dir.str());
  ASSERT_EQ(seeds.size(), fuzzer.retained_seeds().size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(seeds[i], fuzzer.retained_seeds()[i].bytes) << i;
  }
}

TEST(Persistence, CrashesRoundTripAndReplay) {
  SessionDir dir;
  Fuzzer fuzzer = fuzz_cs101(25000);
  ASSERT_GT(fuzzer.crashes().unique_count(), 0u);
  ASSERT_FALSE(save_session(fuzzer, dir.str()).has_value());

  const std::vector<LoadedCrash> crashes = load_crashes(dir.str());
  ASSERT_EQ(crashes.size(), fuzzer.crashes().unique_count());
  for (const LoadedCrash& crash : crashes) {
    proto::Cs101Server replay_server;
    Executor executor;
    const ExecResult result = executor.run(replay_server, crash.reproducer);
    EXPECT_TRUE(result.crashed()) << crash.file_stem;
  }
}

TEST(Persistence, SummaryMentionsKeyNumbers) {
  Fuzzer fuzzer = fuzz_cs101(3000);
  const std::string summary = render_summary(fuzzer);
  EXPECT_NE(summary.find("Peach*"), std::string::npos);
  EXPECT_NE(summary.find("paths covered"), std::string::npos);
  EXPECT_NE(summary.find(std::to_string(fuzzer.path_count())),
            std::string::npos);
}

TEST(Persistence, LoadFromMissingDirectoryIsEmpty) {
  EXPECT_TRUE(load_crashes("/nonexistent/session").empty());
  EXPECT_TRUE(load_seeds("/nonexistent/session").empty());
  const LoadedCorpus corpus = load_distilled_corpus("/nonexistent/corpus");
  EXPECT_TRUE(corpus.seeds.empty());
  EXPECT_FALSE(corpus.has_manifest);
}

TEST(Persistence, DistilledCorpusRoundTripReplaysIdenticalCoverage) {
  // Distill a cs101 campaign's retained seeds, persist the result, reload
  // it, and replay: edge and path coverage must match the manifest
  // bit-for-bit.
  SessionDir dir;
  const fuzz::TargetFactory factory = [] {
    return std::make_unique<proto::Cs101Server>();
  };
  Fuzzer fuzzer = fuzz_cs101(8000);
  std::vector<Bytes> seeds;
  for (const RetainedSeed& seed : fuzzer.retained_seeds()) {
    seeds.push_back(seed.bytes);
  }
  ASSERT_GT(seeds.size(), 1u);

  const distill::CminResult distilled = distill::cmin(factory, seeds, {});
  const distill::ReplayReport report =
      distill::replay_corpus_sharded(factory, distilled.seeds, 2);
  ASSERT_FALSE(
      save_distilled_corpus(dir.str(), distilled.seeds, report).has_value());

  const LoadedCorpus loaded = load_distilled_corpus(dir.str());
  ASSERT_TRUE(loaded.has_manifest);
  ASSERT_EQ(loaded.seeds.size(), distilled.seeds.size());
  for (std::size_t i = 0; i < loaded.seeds.size(); ++i) {
    EXPECT_EQ(loaded.seeds[i], distilled.seeds[i]) << i;
  }
  EXPECT_EQ(loaded.expected.edges, report.edges);
  EXPECT_EQ(loaded.expected.paths, report.paths);

  const distill::ReplayReport replayed =
      distill::replay_corpus_sharded(factory, loaded.seeds, 2);
  EXPECT_TRUE(replayed.same_coverage(loaded.expected));
  EXPECT_EQ(replayed.crashes, loaded.expected.crashes);

  // Re-saving a smaller corpus into the same directory must fully replace
  // it — stale seed files would falsify the fresh manifest.
  std::vector<Bytes> smaller(distilled.seeds.begin(),
                             distilled.seeds.begin() + 1);
  const auto target = factory();
  const distill::ReplayReport smaller_report =
      distill::replay_corpus(*target, smaller);
  ASSERT_FALSE(
      save_distilled_corpus(dir.str(), smaller, smaller_report).has_value());
  const LoadedCorpus reloaded = load_distilled_corpus(dir.str());
  EXPECT_EQ(reloaded.seeds.size(), 1u);
  EXPECT_EQ(reloaded.expected.edges, smaller_report.edges);
}

TEST(Persistence, SaveToUnwritablePathFails) {
  Fuzzer fuzzer = fuzz_cs101(100);
  const auto error = save_session(fuzzer, "/proc/definitely/not/writable");
  EXPECT_TRUE(error.has_value());
}

}  // namespace
}  // namespace icsfuzz::fuzz
