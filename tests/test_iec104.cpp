// Behavioural tests for the IEC 60870-5-104 stack: APCI state machine,
// sequence validation and the command handlers. No bugs are injected in
// this target (Table I lists none), so nothing may ever fault.
#include <gtest/gtest.h>

#include "protocols/iec104/iec104_server.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace icsfuzz::proto {
namespace {

using test::run_armed;

const Bytes kStartDtAct{0x68, 0x04, 0x07, 0x00, 0x00, 0x00};

Bytes i_frame(Bytes asdu, std::uint16_t send_seq = 0) {
  ByteWriter writer;
  writer.write_u8(0x68);
  writer.write_u8(static_cast<std::uint8_t>(4 + asdu.size()));
  writer.write_u16(static_cast<std::uint16_t>(send_seq << 1), Endian::Little);
  writer.write_u16(0, Endian::Little);
  writer.write_bytes(asdu);
  return writer.take();
}

Bytes interrogation_asdu(std::uint8_t cot = 6, std::uint16_t ca = 1,
                         std::uint8_t qoi = 20) {
  return Bytes{100, 1,    cot, 0, static_cast<std::uint8_t>(ca & 0xFF),
               static_cast<std::uint8_t>(ca >> 8), 0, 0, 0, qoi};
}

Bytes session(std::initializer_list<Bytes> frames) {
  Bytes out;
  for (const Bytes& frame : frames) append(out, frame);
  return out;
}

TEST(Iec104, GarbageIsDropped) {
  Iec104Server server;
  EXPECT_TRUE(run_armed(server, Bytes{0x01, 0x02, 0x03}).response.empty());
}

TEST(Iec104, StartDtGetsConfirmation) {
  Iec104Server server;
  const auto run = run_armed(server, kStartDtAct);
  ASSERT_EQ(run.response.size(), 6u);
  EXPECT_EQ(run.response[2], 0x0B);  // STARTDT con
}

TEST(Iec104, TestFrGetsConfirmation) {
  Iec104Server server;
  const Bytes testfr{0x68, 0x04, 0x43, 0x00, 0x00, 0x00};
  const auto run = run_armed(server, testfr);
  ASSERT_EQ(run.response.size(), 6u);
  EXPECT_EQ(run.response[2], 0x83);  // TESTFR con
}

TEST(Iec104, UFrameWithAsduDropped) {
  Iec104Server server;
  const Bytes bad{0x68, 0x05, 0x07, 0x00, 0x00, 0x00, 0xAA};
  EXPECT_TRUE(run_armed(server, bad).response.empty());
}

TEST(Iec104, IFrameBeforeStartDtDropped) {
  Iec104Server server;
  const auto run = run_armed(server, i_frame(interrogation_asdu()));
  EXPECT_TRUE(run.response.empty());
}

TEST(Iec104, InterrogationAfterStartDt) {
  Iec104Server server;
  const auto run =
      run_armed(server, session({kStartDtAct, i_frame(interrogation_asdu())}));
  ASSERT_FALSE(run.crashed());
  // STARTDT con (6) + two I frames (point report + activation con).
  EXPECT_GT(run.response.size(), 6u);
}

TEST(Iec104, WrongSendSequenceClosesLink) {
  Iec104Server server;
  const auto run = run_armed(
      server, session({kStartDtAct, i_frame(interrogation_asdu(), 5)}));
  EXPECT_EQ(run.response.size(), 6u);  // only the STARTDT confirmation
}

TEST(Iec104, BadRecvAckClosesLink) {
  Iec104Server server;
  Bytes frame = i_frame(interrogation_asdu());
  frame[4] = 0x20;  // N(R) = 16: acknowledges frames never sent
  const auto run = run_armed(server, session({kStartDtAct, frame}));
  EXPECT_EQ(run.response.size(), 6u);
}

TEST(Iec104, WrongCommonAddressDropped) {
  Iec104Server server;
  const auto run = run_armed(
      server,
      session({kStartDtAct, i_frame(interrogation_asdu(6, 0x0077))}));
  EXPECT_EQ(run.response.size(), 6u);
}

TEST(Iec104, BroadcastAddressAccepted) {
  Iec104Server server;
  const auto run = run_armed(
      server,
      session({kStartDtAct, i_frame(interrogation_asdu(6, 0xFFFF))}));
  EXPECT_GT(run.response.size(), 6u);
}

TEST(Iec104, TruncatedAsduHeaderDroppedCleanly) {
  Iec104Server server;
  const auto run =
      run_armed(server, session({kStartDtAct, i_frame(Bytes{100, 1})}));
  EXPECT_FALSE(run.crashed());  // no injected bug: must never fault
  EXPECT_EQ(run.response.size(), 6u);
}

TEST(Iec104, SelectThenExecuteSingleCommand) {
  Iec104Server server;
  const Bytes select{45, 1, 6, 0, 1, 0, 0x00, 0x10, 0x00, 0x81};
  const Bytes execute{45, 1, 6, 0, 1, 0, 0x00, 0x10, 0x00, 0x01};
  const auto run = run_armed(
      server,
      session({kStartDtAct, i_frame(select, 0), i_frame(execute, 1)}));
  ASSERT_FALSE(run.crashed());
  // STARTDT con + select con + execute con.
  EXPECT_GT(run.response.size(), 12u);
}

TEST(Iec104, ExecuteWithoutSelectRefused) {
  Iec104Server server;
  const Bytes execute{45, 1, 6, 0, 1, 0, 0x00, 0x10, 0x00, 0x01};
  const auto run =
      run_armed(server, session({kStartDtAct, i_frame(execute, 0)}));
  EXPECT_EQ(run.response.size(), 6u);
}

TEST(Iec104, DoubleCommandValidStates) {
  Iec104Server server;
  const Bytes open_cmd{46, 1, 6, 0, 1, 0, 0x00, 0x18, 0x00, 0x01};
  const auto run =
      run_armed(server, session({kStartDtAct, i_frame(open_cmd, 0)}));
  EXPECT_GT(run.response.size(), 6u);
}

TEST(Iec104, DoubleCommandRejectsNotPermittedStates) {
  Iec104Server server;
  for (std::uint8_t dcs : {std::uint8_t{0x00}, std::uint8_t{0x03}}) {
    const Bytes bad{46, 1, 6, 0, 1, 0, 0x00, 0x18, 0x00, dcs};
    const auto run =
        run_armed(server, session({kStartDtAct, i_frame(bad, 0)}));
    EXPECT_EQ(run.response.size(), 6u) << "dcs " << int(dcs);
  }
}

TEST(Iec104, DoubleCommandBroadcastRefused) {
  Iec104Server server;
  const Bytes cmd{46, 1, 6, 0, 0xFF, 0xFF, 0x00, 0x18, 0x00, 0x01};
  const auto run = run_armed(server, session({kStartDtAct, i_frame(cmd, 0)}));
  EXPECT_EQ(run.response.size(), 6u);
}

TEST(Iec104, CounterInterrogationGroups) {
  Iec104Server server;
  const Bytes request{101, 1, 6, 0, 1, 0, 0, 0, 0, 0x05};
  const auto run =
      run_armed(server, session({kStartDtAct, i_frame(request, 0)}));
  EXPECT_GT(run.response.size(), 6u);
}

TEST(Iec104, ReadCommandBanks) {
  Iec104Server server;
  const Bytes read_sp{102, 1, 5, 0, 1, 0, 0x00, 0x01, 0x00};
  const auto sp = run_armed(server, session({kStartDtAct, i_frame(read_sp, 0)}));
  EXPECT_GT(sp.response.size(), 6u);

  Iec104Server server2;
  const Bytes read_me{102, 1, 5, 0, 1, 0, 0x00, 0x02, 0x00};
  const auto me =
      run_armed(server2, session({kStartDtAct, i_frame(read_me, 0)}));
  EXPECT_GT(me.response.size(), 6u);

  Iec104Server server3;
  const Bytes read_bad{102, 1, 5, 0, 1, 0, 0x42, 0x55, 0x00};
  const auto bad =
      run_armed(server3, session({kStartDtAct, i_frame(read_bad, 0)}));
  EXPECT_EQ(bad.response.size(), 6u);
}

TEST(Iec104, ClockSyncValidatesTimestamp) {
  Iec104Server server;
  Bytes good{103, 1, 6, 0, 1, 0, 0, 0, 0};
  const Bytes time{0x00, 0x00, 0x1E, 0x0A, 0x0C, 0x06, 0x18};
  append(good, time);
  const auto ok = run_armed(server, session({kStartDtAct, i_frame(good, 0)}));
  EXPECT_GT(ok.response.size(), 6u);

  Iec104Server server2;
  Bytes bad{103, 1, 6, 0, 1, 0, 0, 0, 0};
  const Bytes bad_time{0x00, 0x00, 0x3D, 0x0A, 0x0C, 0x06, 0x18};  // min 61
  append(bad, bad_time);
  const auto rejected =
      run_armed(server2, session({kStartDtAct, i_frame(bad, 0)}));
  EXPECT_EQ(rejected.response.size(), 6u);
}

TEST(Iec104, MonitorTypeGetsUnknownTypeReply) {
  Iec104Server server;
  const Bytes monitor{1, 1, 3, 0, 1, 0, 0x00, 0x00, 0x00, 0x01};
  const auto run =
      run_armed(server, session({kStartDtAct, i_frame(monitor, 0)}));
  EXPECT_GT(run.response.size(), 6u);
}

TEST(Iec104, ResetRestoresInitialState) {
  Iec104Server server;
  run_armed(server, kStartDtAct);
  server.reset();
  EXPECT_FALSE(server.started());
  EXPECT_EQ(server.recv_seq(), 0u);
}

// Fuzz-style property: the stack never faults on arbitrary input (Table I
// lists no IEC104 vulnerabilities).
class Iec104NoFaultSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Iec104NoFaultSweep, RandomBytesNeverFault) {
  Iec104Server server;
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    Bytes packet = rng.bytes(rng.below(64));
    if (rng.chance(1, 2) && packet.size() >= 2) {
      packet[0] = 0x68;  // plausible framing half the time
      packet[1] = static_cast<std::uint8_t>(packet.size() - 2);
    }
    const auto run = run_armed(server, packet);
    ASSERT_FALSE(run.crashed()) << "seed " << GetParam() << " iter " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Iec104NoFaultSweep,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace icsfuzz::proto
