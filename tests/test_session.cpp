// Session-layer suite: the in-process vs over-TCP differential session
// oracle, the stateful coverage proof, and the session template plumbing.
//
// The load-bearing properties, asserted rather than eyeballed:
//
//   * Differential oracle — the SAME session stream executed by the
//     in-process session backend and by the kTcp backend (driving a real
//     `icsfuzz-shim-target --tcp` server over a loopback socket) yields
//     byte-identical per-message traffic and bit-identical coverage:
//     trace hash, edge counts, events, faults, responses, session states,
//     accumulated map, path set. A fixed-seed fuzzing campaign over TCP
//     therefore reproduces the in-process campaign's trajectory exactly.
//   * Stateful coverage — a fixed-seed stateful IEC 104 campaign reaches
//     hashed session states (the post-STARTDT ASDU handling chain) that a
//     stateless single-exchange baseline campaign structurally never
//     produces (plain backends carry no session fields at all).
//   * Session pits — pits/iec104_session.xml and pits/mms_session.xml
//     mirror the built-in templates step-for-step; malformed session pit
//     documents are rejected with diagnostics, never half-parsed.
//   * Checkpoint/resume — reached session states survive the Fuzzer
//     checkpoint round trip and the supervise on-disk format ("sstates"),
//     and a restored campaign continues bit-for-bit.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <optional>
#include <memory>
#include <string>
#include <vector>

#include "exec_oop/exec_protocol.hpp"

#include "fuzzer/fuzzer.hpp"
#include "fuzzer/instantiator.hpp"
#include "pits/pits.hpp"
#include "protocols/target_registry.hpp"
#include "session/framing.hpp"
#include "session/sequencer.hpp"
#include "session/session_state.hpp"
#include "session/session_types.hpp"
#include "supervise/checkpoint.hpp"
#include "tests/test_support.hpp"
#include "util/rng.hpp"

namespace icsfuzz {
namespace {

using test::shim_tcp_cmd;

/// Generous per-exec deadline: a scheduler stall on a loaded CI runner
/// must not inject a spurious Hang fault into a bit-identity comparison.
constexpr int kGenerousTimeoutMs = 30000;

/// IEC 104 choreography bytes (mirror iec104_server.cpp).
const Bytes kStartDtAct = {0x68, 0x04, 0x07, 0x00, 0x00, 0x00};
const Bytes kStartDtCon = {0x68, 0x04, 0x0B, 0x00, 0x00, 0x00};
/// Global interrogation I-frame, N(S)=N(R)=0: type C_IC_NA_1 (100),
/// COT activation, common address 1, IOA 0, QOI 20 — the post-STARTDT
/// request the server answers with an I-format burst.
const Bytes kInterrogation = {0x68, 0x0E, 0x00, 0x00, 0x00, 0x00,
                              0x64, 0x01, 0x06, 0x00, 0x01, 0x00,
                              0x00, 0x00, 0x00, 0x14};

/// FNV-1a of ICSFUZZ_STRESS_SEED (0 when unset): the CI fault-stress lane
/// varies campaign shape per round through this.
std::uint64_t stress_hash() {
  const char* stress = std::getenv("ICSFUZZ_STRESS_SEED");
  if (stress == nullptr) return 0;
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char* c = stress; *c != '\0'; ++c) {
    hash = (hash ^ static_cast<std::uint8_t>(*c)) * 0x100000001b3ULL;
  }
  return hash;
}

session::SequencerConfig sequencer_config(const std::string& project) {
  session::SequencerConfig config;
  config.enabled = true;
  config.framing = session::framing_for_project(project);
  config.project = project;
  return config;
}

/// ExecutorConfig for a session backend over `project`.
fuzz::ExecutorConfig session_executor_config(const std::string& project,
                                             fuzz::BackendKind kind,
                                             bool record_traffic) {
  fuzz::ExecutorConfig config;
  config.backend.kind = kind;
  config.backend.session.framing = session::framing_for_project(project);
  config.backend.session.record_traffic = record_traffic;
  config.backend.exec_timeout_ms = kGenerousTimeoutMs;
  if (kind != fuzz::BackendKind::kInProcess) {
    config.backend.target_cmd = shim_tcp_cmd(project);
  }
  return config;
}

/// Owns the pit set + instantiator a SessionSequencer borrows.
struct SequencerRig {
  model::DataModelSet models;
  fuzz::ModelInstantiator instantiator;
  session::SessionSequencer sequencer;

  explicit SequencerRig(const std::string& project)
      : models(pits::pit_for_project(project)),
        instantiator(),
        sequencer(sequencer_config(project), models, instantiator) {}
};

/// Deterministic mixed workload for the differential oracle: sequencer
/// streams (both arms split them into multi-message sessions) plus the
/// adversarial shapes — empty stream, unframeable junk, a torn frame, a
/// tiny-frame flood past the message cap.
std::vector<Bytes> differential_streams(const std::string& project,
                                        std::size_t generated) {
  SequencerRig rig(project);
  Rng rng(0x5E55A10 + project.size());
  std::vector<Bytes> streams;
  Bytes out;
  for (std::size_t i = 0; i < generated; ++i) {
    rig.sequencer.generate_into(rng, out);
    streams.push_back(out);
  }
  streams.push_back({});                              // empty session
  streams.push_back({0x00, 0x01, 0x02, 0x03});        // unframeable junk
  Bytes torn = kStartDtAct;
  torn.resize(4);                                      // mid-frame cut
  streams.push_back(std::move(torn));
  Bytes flood;
  for (int i = 0; i < 300; ++i) {                      // past the 256 cap
    flood.push_back(0x68);
    flood.push_back(0x00);
  }
  streams.push_back(std::move(flood));
  return streams;
}

void expect_results_equal(const fuzz::ExecResult& in_proc,
                          const fuzz::ExecResult& tcp, std::size_t index) {
  EXPECT_EQ(in_proc.trace_hash, tcp.trace_hash) << "stream " << index;
  EXPECT_EQ(in_proc.trace_edges, tcp.trace_edges) << "stream " << index;
  EXPECT_EQ(in_proc.new_coverage, tcp.new_coverage) << "stream " << index;
  EXPECT_EQ(in_proc.new_path, tcp.new_path) << "stream " << index;
  EXPECT_EQ(in_proc.events, tcp.events) << "stream " << index;
  EXPECT_EQ(in_proc.response, tcp.response) << "stream " << index;
  EXPECT_EQ(in_proc.session_messages, tcp.session_messages)
      << "stream " << index;
  EXPECT_EQ(in_proc.session_states, tcp.session_states) << "stream " << index;
  ASSERT_EQ(in_proc.faults.size(), tcp.faults.size()) << "stream " << index;
  for (std::size_t f = 0; f < in_proc.faults.size(); ++f) {
    EXPECT_EQ(in_proc.faults[f].kind, tcp.faults[f].kind)
        << "stream " << index << " fault " << f;
    EXPECT_EQ(in_proc.faults[f].site, tcp.faults[f].site)
        << "stream " << index << " fault " << f;
    EXPECT_EQ(in_proc.faults[f].detail, tcp.faults[f].detail)
        << "stream " << index << " fault " << f;
  }
}

void expect_traffic_equal(const session::SessionTraffic* in_proc,
                          const session::SessionTraffic* tcp,
                          std::size_t index) {
  ASSERT_NE(in_proc, nullptr) << "stream " << index;
  ASSERT_NE(tcp, nullptr) << "stream " << index;
  ASSERT_EQ(in_proc->requests.size(), tcp->requests.size())
      << "stream " << index;
  ASSERT_EQ(in_proc->responses.size(), tcp->responses.size())
      << "stream " << index;
  for (std::size_t m = 0; m < in_proc->requests.size(); ++m) {
    EXPECT_EQ(in_proc->requests[m], tcp->requests[m])
        << "stream " << index << " request " << m;
    EXPECT_EQ(in_proc->responses[m], tcp->responses[m])
        << "stream " << index << " response " << m;
  }
}

// -- Sequencer sanity. ----------------------------------------------------

TEST(SessionSequencer, GeneratesFramedMultiMessageStreams) {
  SequencerRig rig("IEC104");
  Rng rng(42);
  Bytes stream;
  std::vector<session::MessageRange> ranges;
  bool saw_startdt = false;
  bool saw_multi = false;
  for (int i = 0; i < 64; ++i) {
    rig.sequencer.generate_into(rng, stream);
    ASSERT_FALSE(stream.empty()) << "round " << i;
    ASSERT_LE(stream.size(), session::kMaxSessionStreamBytes);
    const std::size_t residue = session::split_stream(
        session::Framing::kApci, ByteSpan(stream.data(), stream.size()),
        ranges);
    ASSERT_GE(ranges.size(), 1u) << "round " << i;
    (void)residue;
    if (ranges.size() > 1) saw_multi = true;
    if (stream.size() >= kStartDtAct.size() &&
        std::equal(kStartDtAct.begin(), kStartDtAct.end(), stream.begin())) {
      saw_startdt = true;
    }
  }
  EXPECT_TRUE(saw_multi) << "no multi-message session in 64 rounds";
  EXPECT_TRUE(saw_startdt) << "no STARTDT-led session in 64 rounds";
}

TEST(SessionSequencer, MutateStreamPreservesFramedShape) {
  SequencerRig rig("IEC104");
  Rng rng(77);
  Bytes seed;
  rig.sequencer.generate_into(rng, seed);
  Bytes mutated;
  std::vector<session::MessageRange> ranges;
  for (int i = 0; i < 64; ++i) {
    rig.sequencer.mutate_stream_into(ByteSpan(seed.data(), seed.size()), rng,
                                     mutated);
    ASSERT_LE(mutated.size(), session::kMaxSessionStreamBytes);
    // A mutated stream stays splittable (possibly with a residue tail —
    // truncate-mid-message is one of the mutations).
    session::split_stream(session::Framing::kApci,
                          ByteSpan(mutated.data(), mutated.size()), ranges);
  }
}

// -- The per-execution differential oracle. -------------------------------

#ifdef ICSFUZZ_SHIM_PATH

void run_differential_oracle(const std::string& project) {
  const std::vector<Bytes> streams = differential_streams(project, 24);
  const auto factory = proto::target_factory(project);
  ASSERT_TRUE(factory) << project;
  std::unique_ptr<ProtocolTarget> in_proc_target = factory();
  std::unique_ptr<ProtocolTarget> placeholder = factory();

  fuzz::Executor in_proc(session_executor_config(
      project, fuzz::BackendKind::kInProcess, /*record_traffic=*/true));
  fuzz::Executor tcp(session_executor_config(
      project, fuzz::BackendKind::kTcp, /*record_traffic=*/true));

  for (std::size_t i = 0; i < streams.size(); ++i) {
    const ByteSpan packet(streams[i].data(), streams[i].size());
    const fuzz::ExecResult in_proc_result =
        in_proc.run(*in_proc_target, packet);
    const fuzz::ExecResult& tcp_result = tcp.run(*placeholder, packet);
    expect_results_equal(in_proc_result, tcp_result, i);
    expect_traffic_equal(in_proc.backend().traffic(), tcp.backend().traffic(),
                         i);
  }

  // Campaign-lifetime fingerprints: same accumulated map, same path set,
  // same session-state set.
  EXPECT_EQ(in_proc.executions(), tcp.executions());
  EXPECT_EQ(in_proc.edge_count(), tcp.edge_count());
  EXPECT_EQ(in_proc.path_count(), tcp.path_count());
  EXPECT_EQ(in_proc.coverage().snapshot_accumulated(),
            tcp.coverage().snapshot_accumulated());
  EXPECT_EQ(in_proc.session_states_snapshot(), tcp.session_states_snapshot());
  EXPECT_GT(in_proc.session_state_count(), 0u);
}

TEST(SessionDifferential, TcpMatchesInProcessIec104) {
  run_differential_oracle("IEC104");
}

TEST(SessionDifferential, TcpMatchesInProcessModbus) {
  run_differential_oracle("libmodbus");
}

TEST(SessionDifferential, FixedSeedCampaignTrajectoryIdenticalOverTcp) {
  struct Fingerprint {
    std::uint64_t executions = 0;
    std::size_t paths = 0;
    std::size_t edges = 0;
    std::size_t crashes = 0;
    std::vector<Bytes> retained;
    std::vector<std::uint64_t> session_states;
    std::vector<std::uint8_t> accumulated;
  };
  const auto run_campaign = [](fuzz::BackendKind kind) {
    const std::string project = "IEC104";
    fuzz::FuzzerConfig config;
    config.rng_seed = 0x5E55;
    config.stats_interval = 50;
    config.session = sequencer_config(project);
    config.executor =
        session_executor_config(project, kind, /*record_traffic=*/false);
    config.telemetry = telem::Sink();
    const auto factory = proto::target_factory(project);
    std::unique_ptr<ProtocolTarget> target = factory();
    const model::DataModelSet models = pits::pit_for_project(project);
    fuzz::Fuzzer fuzzer(*target, models, config);
    fuzzer.run(120);
    Fingerprint fp;
    fp.executions = fuzzer.executor().executions();
    fp.paths = fuzzer.path_count();
    fp.edges = fuzzer.executor().edge_count();
    fp.crashes = fuzzer.crashes().unique_count();
    for (const fuzz::RetainedSeed& seed : fuzzer.retained_seeds()) {
      fp.retained.push_back(seed.bytes);
    }
    fp.session_states = fuzzer.executor().session_states_snapshot();
    fp.accumulated = fuzzer.executor().coverage().snapshot_accumulated();
    return fp;
  };

  const Fingerprint in_proc = run_campaign(fuzz::BackendKind::kInProcess);
  const Fingerprint tcp = run_campaign(fuzz::BackendKind::kTcp);
  EXPECT_EQ(in_proc.executions, tcp.executions);
  EXPECT_EQ(in_proc.paths, tcp.paths);
  EXPECT_EQ(in_proc.edges, tcp.edges);
  EXPECT_EQ(in_proc.crashes, tcp.crashes);
  EXPECT_EQ(in_proc.retained, tcp.retained);
  EXPECT_EQ(in_proc.session_states, tcp.session_states);
  EXPECT_EQ(in_proc.accumulated, tcp.accumulated);
  EXPECT_GT(in_proc.session_states.size(), 0u);
}

#endif  // ICSFUZZ_SHIM_PATH

// -- Stateful coverage: the post-STARTDT proof. ---------------------------

TEST(SessionState, PostStartdtAsduHandlingNeedsTheHandshake) {
  const std::string project = "IEC104";
  const auto factory = proto::target_factory(project);
  std::unique_ptr<ProtocolTarget> target = factory();
  fuzz::Executor executor(session_executor_config(
      project, fuzz::BackendKind::kInProcess, /*record_traffic=*/true));

  // STARTDT then interrogation: both messages answered.
  Bytes with_handshake = kStartDtAct;
  with_handshake.insert(with_handshake.end(), kInterrogation.begin(),
                        kInterrogation.end());
  const fuzz::ExecResult with_result = executor.run(
      *target, ByteSpan(with_handshake.data(), with_handshake.size()));
  ASSERT_EQ(with_result.session_messages, 2u);
  ASSERT_EQ(with_result.session_states.size(), 2u);
  const session::SessionTraffic* traffic = executor.backend().traffic();
  ASSERT_NE(traffic, nullptr);
  ASSERT_EQ(traffic->responses.size(), 2u);
  EXPECT_EQ(traffic->responses[0], kStartDtCon);
  EXPECT_FALSE(traffic->responses[1].empty())
      << "post-STARTDT interrogation must be answered";

  // The state chain is exactly the documented client-side fold.
  const session::ResponseClass class0 = session::classify_response(
      session::Framing::kApci,
      ByteSpan(traffic->responses[0].data(), traffic->responses[0].size()));
  EXPECT_EQ(class0, session::ResponseClass::kApciU);
  const std::uint32_t state0 = session::next_session_state(
      session::kInitialSessionState, class0, 0);
  EXPECT_EQ(with_result.session_states[0], state0);
  const session::ResponseClass class1 = session::classify_response(
      session::Framing::kApci,
      ByteSpan(traffic->responses[1].data(), traffic->responses[1].size()));
  const std::uint32_t state1 =
      session::next_session_state(state0, class1, 1);
  EXPECT_EQ(with_result.session_states[1], state1);

  // The same interrogation without the handshake is dropped on the floor
  // (started_ gate), producing a DIFFERENT state chain.
  const fuzz::ExecResult without_result = executor.run(
      *target, ByteSpan(kInterrogation.data(), kInterrogation.size()));
  ASSERT_EQ(without_result.session_messages, 1u);
  traffic = executor.backend().traffic();
  ASSERT_EQ(traffic->responses.size(), 1u);
  EXPECT_TRUE(traffic->responses[0].empty())
      << "I-frame before STARTDT must be dropped";
  EXPECT_NE(without_result.session_states[0], state0);
}

TEST(SessionState, StatefulCampaignReachesStatesStatelessNeverProduces) {
  const std::string project = "IEC104";
  const auto factory = proto::target_factory(project);
  const model::DataModelSet models = pits::pit_for_project(project);

  // Canonical marker: the hashed state after a STARTDT_act handshake at
  // position 0 — the root of every post-STARTDT session chain.
  std::uint32_t marker = 0;
  {
    std::unique_ptr<ProtocolTarget> target = factory();
    fuzz::Executor probe(session_executor_config(
        project, fuzz::BackendKind::kInProcess, /*record_traffic=*/false));
    const fuzz::ExecResult& result =
        probe.run(*target, ByteSpan(kStartDtAct.data(), kStartDtAct.size()));
    ASSERT_EQ(result.session_states.size(), 1u);
    marker = result.session_states[0];
  }

  // The CI stress lane perturbs the seed and depth per round; the
  // stateful-reaches-marker property must hold across all of them.
  const std::uint64_t perturb = stress_hash();
  const std::uint64_t seed = 0x104u ^ perturb;
  const std::uint64_t iterations = 350 + (perturb % 128);

  // Fixed-seed stateful campaign: session generation + session execution.
  fuzz::FuzzerConfig stateful;
  stateful.rng_seed = seed;
  stateful.session = sequencer_config(project);
  stateful.executor = session_executor_config(
      project, fuzz::BackendKind::kInProcess, /*record_traffic=*/false);
  stateful.telemetry = telem::Sink();
  std::unique_ptr<ProtocolTarget> stateful_target = factory();
  fuzz::Fuzzer stateful_fuzzer(*stateful_target, models, stateful);
  stateful_fuzzer.run(iterations);
  EXPECT_GT(stateful_fuzzer.executor().session_state_count(), 0u);
  EXPECT_TRUE(stateful_fuzzer.executor().session_state_reached(marker))
      << "no session reached the post-STARTDT root state in " << iterations
      << " iterations (seed " << seed << ")";

  // Stateless baseline, same seed and depth: single-exchange executions
  // structurally carry no session states — not few, none.
  fuzz::FuzzerConfig stateless;
  stateless.rng_seed = seed;
  stateless.telemetry = telem::Sink();
  std::unique_ptr<ProtocolTarget> stateless_target = factory();
  fuzz::Fuzzer stateless_fuzzer(*stateless_target, models, stateless);
  stateless_fuzzer.run(iterations);
  EXPECT_EQ(stateless_fuzzer.executor().session_state_count(), 0u);
  EXPECT_FALSE(stateless_fuzzer.executor().session_state_reached(marker));
}

// -- Session pit parsing. -------------------------------------------------

void expect_templates_equal(const std::vector<session::SessionTemplate>& a,
                            const std::vector<session::SessionTemplate>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    EXPECT_EQ(a[t].name, b[t].name) << "template " << t;
    EXPECT_EQ(a[t].project, b[t].project) << "template " << t;
    ASSERT_EQ(a[t].steps.size(), b[t].steps.size()) << a[t].name;
    for (std::size_t s = 0; s < a[t].steps.size(); ++s) {
      EXPECT_EQ(a[t].steps[s].kind, b[t].steps[s].kind)
          << a[t].name << " step " << s;
      EXPECT_EQ(a[t].steps[s].literal, b[t].steps[s].literal)
          << a[t].name << " step " << s;
      EXPECT_EQ(a[t].steps[s].model, b[t].steps[s].model)
          << a[t].name << " step " << s;
      EXPECT_EQ(a[t].steps[s].min_repeat, b[t].steps[s].min_repeat)
          << a[t].name << " step " << s;
      EXPECT_EQ(a[t].steps[s].max_repeat, b[t].steps[s].max_repeat)
          << a[t].name << " step " << s;
    }
  }
}

TEST(SessionPits, Iec104SessionPitMirrorsBuiltins) {
  std::vector<session::SessionTemplate> parsed;
  std::string error;
  ASSERT_TRUE(session::parse_session_templates_file(
      std::string(ICSFUZZ_PITS_DIR) + "/iec104_session.xml", parsed, error))
      << error;
  expect_templates_equal(parsed, session::builtin_session_templates("IEC104"));
}

TEST(SessionPits, MmsSessionPitMirrorsBuiltins) {
  std::vector<session::SessionTemplate> parsed;
  std::string error;
  ASSERT_TRUE(session::parse_session_templates_file(
      std::string(ICSFUZZ_PITS_DIR) + "/mms_session.xml", parsed, error))
      << error;
  expect_templates_equal(parsed,
                         session::builtin_session_templates("libiec61850"));
}

TEST(SessionPits, MalformedDocumentsAreRejectedWithDiagnostics) {
  const char* kBad[] = {
      // Wrong root element.
      "<Peach><Session name='x'><Model/></Session></Peach>",
      // Session without a name.
      "<Sessions><Session><Model/></Session></Sessions>",
      // Odd hex digit count in a literal.
      "<Sessions><Session name='x'><Literal hex='68 0'/></Session></Sessions>",
      // Literal without hex.
      "<Sessions><Session name='x'><Literal/></Session></Sessions>",
      // min > max.
      "<Sessions><Session name='x'><Model min='3' max='1'/></Session>"
      "</Sessions>",
      // min == 0.
      "<Sessions><Session name='x'><Model min='0' max='1'/></Session>"
      "</Sessions>",
      // Non-numeric repeat bound.
      "<Sessions><Session name='x'><Model min='lots'/></Session></Sessions>",
      // Unknown step element.
      "<Sessions><Session name='x'><Blob/></Session></Sessions>",
      // Session with no steps.
      "<Sessions><Session name='x'></Session></Sessions>",
      // No sessions at all.
      "<Sessions></Sessions>",
  };
  for (const char* doc : kBad) {
    std::vector<session::SessionTemplate> out;
    std::string error;
    EXPECT_FALSE(session::parse_session_templates(doc, out, error)) << doc;
    EXPECT_FALSE(error.empty()) << doc;
  }
}

// -- Checkpoint/resume with session states. -------------------------------

fuzz::FuzzerConfig stateful_config(std::uint64_t seed) {
  fuzz::FuzzerConfig config;
  config.rng_seed = seed;
  config.stats_interval = 100;
  config.session = sequencer_config("IEC104");
  config.executor = session_executor_config(
      "IEC104", fuzz::BackendKind::kInProcess, /*record_traffic=*/false);
  config.telemetry = telem::Sink();
  return config;
}

TEST(SessionCheckpoint, FuzzerRoundTripPreservesSessionStates) {
  const auto factory = proto::target_factory("IEC104");
  const model::DataModelSet models = pits::pit_for_project("IEC104");

  std::unique_ptr<ProtocolTarget> original_target = factory();
  fuzz::Fuzzer original(*original_target, models, stateful_config(11));
  original.run(160);
  const fuzz::FuzzerCheckpoint checkpoint = original.capture_checkpoint();
  ASSERT_FALSE(checkpoint.session_states.empty());
  EXPECT_TRUE(std::is_sorted(checkpoint.session_states.begin(),
                             checkpoint.session_states.end()));
  EXPECT_EQ(checkpoint.session_states,
            original.executor().session_states_snapshot());

  std::unique_ptr<ProtocolTarget> resumed_target = factory();
  fuzz::Fuzzer resumed(*resumed_target, models, stateful_config(11));
  resumed.restore_checkpoint(checkpoint);
  EXPECT_EQ(resumed.executor().session_states_snapshot(),
            original.executor().session_states_snapshot());

  // Both continue; the resumed campaign tracks the original bit-for-bit,
  // session-state set included.
  original.run(140);
  resumed.run(140);
  EXPECT_EQ(resumed.executor().executions(),
            original.executor().executions());
  EXPECT_EQ(resumed.path_count(), original.path_count());
  EXPECT_EQ(resumed.executor().edge_count(),
            original.executor().edge_count());
  EXPECT_EQ(resumed.executor().session_states_snapshot(),
            original.executor().session_states_snapshot());
  EXPECT_EQ(resumed.executor().coverage().snapshot_accumulated(),
            original.executor().coverage().snapshot_accumulated());
}

TEST(SessionCheckpoint, SupervisorFormatRoundTripsSessionStates) {
  supervise::CampaignCheckpoint checkpoint;
  checkpoint.completed_iterations = 500;
  checkpoint.base_seed = 7;
  checkpoint.iterations_per_worker = 1000;
  checkpoint.sync_interval = 100;
  par::WorkerState worker;
  worker.fuzzer.session_states = {0x11u, 0x5E551011u, 0xFFFFFFFFu};
  worker.cursor_next = {0};
  checkpoint.workers.push_back(std::move(worker));

  const std::string text = supervise::serialize_checkpoint(checkpoint);
  EXPECT_NE(text.find("sstates"), std::string::npos);
  const std::optional<supervise::CampaignCheckpoint> parsed =
      supervise::parse_checkpoint(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->workers.size(), 1u);
  EXPECT_EQ(parsed->workers[0].fuzzer.session_states,
            checkpoint.workers[0].fuzzer.session_states);

  // Pre-session images carry the old version tag and must be rejected
  // outright, never resumed with a silently empty state set.
  std::string downgraded = text;
  const std::size_t tag = downgraded.find("v2");
  ASSERT_NE(tag, std::string::npos);
  downgraded.replace(tag, 2, "v1");
  EXPECT_FALSE(supervise::parse_checkpoint(downgraded).has_value());
}

// ------------------------------------------------- shm-size env validation

/// Spawns `icsfuzz-shim-target --tcp` with the given shm env pair and
/// returns its exit code (-1 on abnormal termination). The server must
/// reject a bad size before it ever mmaps.
int spawn_tcp_server_with_shm_env(const char* name, const char* size) {
  const pid_t child = ::fork();
  if (child == 0) {
    ::setenv(oop::kShmNameEnv, name, 1);
    ::setenv(oop::kShmSizeEnv, size, 1);
    ::execl(ICSFUZZ_SHIM_PATH, ICSFUZZ_SHIM_PATH, "--project", "libmodbus",
            "--tcp", static_cast<char*>(nullptr));
    ::_exit(127);
  }
  int wstatus = 0;
  while (::waitpid(child, &wstatus, 0) < 0 && errno == EINTR) {
  }
  return WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1;
}

TEST(SessionTcpServer, RejectsMalformedShmSizeEnv) {
  // Regression for the strtoull trust hole: a size like "131072stray"
  // used to parse as 131072 and reach the mmap; garbage became 0. All of
  // these must now exit through the no-usable-segment code (3) up front.
  EXPECT_EQ(spawn_tcp_server_with_shm_env("/icsfuzz-test-none", "banana"), 3);
  EXPECT_EQ(spawn_tcp_server_with_shm_env("/icsfuzz-test-none", ""), 3);
  EXPECT_EQ(spawn_tcp_server_with_shm_env("/icsfuzz-test-none", "-131072"),
            3);
  EXPECT_EQ(spawn_tcp_server_with_shm_env("/icsfuzz-test-none", "131072stray"),
            3);
  // Zero and too-small-for-the-layout sizes.
  EXPECT_EQ(spawn_tcp_server_with_shm_env("/icsfuzz-test-none", "0"), 3);
  EXPECT_EQ(spawn_tcp_server_with_shm_env("/icsfuzz-test-none", "16"), 3);
  // Absurd sizes past the 1 GiB ceiling must never reach the mmap.
  EXPECT_EQ(spawn_tcp_server_with_shm_env("/icsfuzz-test-none",
                                          "18446744073709551615"),
            3);
  EXPECT_EQ(
      spawn_tcp_server_with_shm_env("/icsfuzz-test-none", "999999999999"), 3);
}

}  // namespace
}  // namespace icsfuzz
