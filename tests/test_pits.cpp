// Tests for the built-in pits: structural validity, the default instance of
// every model must be accepted (deep-path-wise) by its server, and the
// cross-model tag sharing the donor mechanism depends on.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <set>

#include "model/instantiation.hpp"
#include "model/pit_parser.hpp"
#include "pits/pits.hpp"
#include "protocols/dnp3/dnp3_server.hpp"
#include "protocols/iccp/iccp_server.hpp"
#include "protocols/iec104/iec104_server.hpp"
#include "protocols/iec61850/mms_server.hpp"
#include "protocols/lib60870/cs101_server.hpp"
#include "protocols/modbus/modbus_server.hpp"
#include "test_support.hpp"

namespace icsfuzz::pits {
namespace {

using test::run_armed;

struct PitCase {
  const char* project;
  model::DataModelSet (*pit)();
  std::function<std::unique_ptr<ProtocolTarget>()> target;
};

class PitSuite : public ::testing::TestWithParam<PitCase> {};

TEST_P(PitSuite, ValidatesStructurally) {
  const model::DataModelSet set = GetParam().pit();
  EXPECT_GE(set.size(), 4u);
  const auto error = set.validate();
  EXPECT_FALSE(error.has_value()) << *error;
}

TEST_P(PitSuite, DefaultInstancesNeverFaultTheTarget) {
  const model::DataModelSet set = GetParam().pit();
  auto target = GetParam().target();
  for (const model::DataModel& model : set.models()) {
    const Bytes packet = model::default_instance(model).serialize();
    const auto run = run_armed(*target, packet);
    EXPECT_FALSE(run.crashed()) << model.name();
  }
}

TEST_P(PitSuite, MostDefaultInstancesElicitResponses) {
  // Pits are written so their defaults represent *valid* requests; at
  // least half of the models must produce a non-empty response (raw
  // catch-all models may legitimately be dropped).
  const model::DataModelSet set = GetParam().pit();
  auto target = GetParam().target();
  std::size_t responded = 0;
  for (const model::DataModel& model : set.models()) {
    const Bytes packet = model::default_instance(model).serialize();
    if (!run_armed(*target, packet).response.empty()) ++responded;
  }
  EXPECT_GE(responded * 2, set.size())
      << "only " << responded << "/" << set.size() << " models responded";
}

TEST_P(PitSuite, SharedTagsSpanModels) {
  // The donor-transfer surface: at least one semantic tag must appear in
  // two or more different models of the pit.
  const model::DataModelSet set = GetParam().pit();
  std::map<std::string, std::set<std::string>> tag_to_models;
  for (const model::DataModel& model : set.models()) {
    for (const model::Chunk* leaf : model.leaves()) {
      if (leaf->tag() != leaf->name()) {
        tag_to_models[leaf->tag()].insert(model.name());
      }
    }
  }
  std::size_t shared = 0;
  for (const auto& [tag, models] : tag_to_models) {
    if (models.size() >= 2) ++shared;
  }
  EXPECT_GE(shared, 1u) << "no cross-model tags in " << GetParam().project;
}

TEST_P(PitSuite, RegistryResolvesProjectName) {
  const model::DataModelSet set = pit_for_project(GetParam().project);
  EXPECT_EQ(set.size(), GetParam().pit().size());
}

INSTANTIATE_TEST_SUITE_P(
    AllProjects, PitSuite,
    ::testing::Values(
        PitCase{"libmodbus", &modbus_pit,
                [] { return std::make_unique<proto::ModbusServer>(); }},
        PitCase{"IEC104", &iec104_pit,
                [] { return std::make_unique<proto::Iec104Server>(); }},
        PitCase{"libiec61850", &mms_pit,
                [] { return std::make_unique<proto::MmsServer>(); }},
        PitCase{"lib60870", &cs101_pit,
                [] { return std::make_unique<proto::Cs101Server>(); }},
        PitCase{"libiec_iccp_mod", &iccp_pit,
                [] { return std::make_unique<proto::IccpServer>(); }},
        PitCase{"opendnp3", &dnp3_pit,
                [] { return std::make_unique<proto::Dnp3Server>(); }}),
    [](const ::testing::TestParamInfo<PitCase>& info) {
      std::string name = info.param.project;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// Every protocol family with a server also ships a file-loadable XML pit
// (pits/*.xml); their defaults must be accepted by the matching stack.
struct XmlPitCase {
  const char* file;
  std::function<std::unique_ptr<ProtocolTarget>()> target;
};

class XmlPitSuite : public ::testing::TestWithParam<XmlPitCase> {};

TEST_P(XmlPitSuite, ShippedXmlDefaultsNeverFaultTheTarget) {
  const model::PitParseResult result = model::parse_pit_file(
      std::string(ICSFUZZ_PITS_DIR) + "/" + GetParam().file);
  ASSERT_TRUE(result.ok()) << result.error;
  ASSERT_GE(result.models.size(), 2u);
  auto target = GetParam().target();
  std::size_t responded = 0;
  for (const model::DataModel& model : result.models.models()) {
    const Bytes packet = model::default_instance(model).serialize();
    const auto run = run_armed(*target, packet);
    EXPECT_FALSE(run.crashed()) << model.name();
    if (!run.response.empty()) ++responded;
  }
  // At least one default per XML pit must be a valid, answered request.
  EXPECT_GE(responded, 1u) << GetParam().file;
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, XmlPitSuite,
    ::testing::Values(
        XmlPitCase{"modbus.xml",
                   [] { return std::make_unique<proto::ModbusServer>(); }},
        XmlPitCase{"iec104.xml",
                   [] { return std::make_unique<proto::Iec104Server>(); }},
        XmlPitCase{"cs101.xml",
                   [] { return std::make_unique<proto::Cs101Server>(); }},
        XmlPitCase{"dnp3.xml",
                   [] { return std::make_unique<proto::Dnp3Server>(); }},
        XmlPitCase{"iccp.xml",
                   [] { return std::make_unique<proto::IccpServer>(); }},
        XmlPitCase{"mms.xml",
                   [] { return std::make_unique<proto::MmsServer>(); }}),
    [](const ::testing::TestParamInfo<XmlPitCase>& info) {
      std::string name = info.param.file;
      name = name.substr(0, name.find('.'));
      return name;
    });

TEST(PitRegistry, UnknownProjectGivesEmptySet) {
  EXPECT_TRUE(pit_for_project("unknown").empty());
}

TEST(PitRegistry, AllProjectNamesMatchPaper) {
  const auto& names = all_project_names();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names[0], "libmodbus");
  EXPECT_EQ(names[5], "opendnp3");
}

TEST(ModbusPitDetail, DeviceIdModelCoversBugSurface) {
  const model::DataModelSet set = modbus_pit();
  const model::DataModel* devid = set.find("ReadDeviceIdentification");
  ASSERT_NE(devid, nullptr);
  EXPECT_EQ(devid->opcode(), 0x2Bu);
  // ReadDevId 0x04 (individual access) must be among the legal values so
  // generation can reach the OOB path.
  const model::Chunk* read_dev_id =
      devid->find("ReadDeviceIdentification.ReadDevId");
  ASSERT_NE(read_dev_id, nullptr);
  const auto& legal = read_dev_id->number_spec().legal_values;
  EXPECT_NE(std::find(legal.begin(), legal.end(), 0x04), legal.end());
}

TEST(Cs101PitDetail, RawModelReachesTruncatedAsdus) {
  // The RawCs101 model must be able to emit I-frames whose ASDU is shorter
  // than 3 bytes — the getCOT bug's precondition.
  const model::DataModelSet set = cs101_pit();
  const model::DataModel* raw = set.find("RawCs101");
  ASSERT_NE(raw, nullptr);
  const model::Chunk* blob = raw->find("RawCs.I.Asdu.Blob");
  ASSERT_NE(blob, nullptr);
  EXPECT_FALSE(blob->blob_spec().length.has_value());  // variable length
}

TEST(Dnp3PitDetail, CrcFixupsProduceAcceptedFrames) {
  const model::DataModelSet set = dnp3_pit();
  proto::Dnp3Server server;
  const model::DataModel* read = set.find("DnpReadBinary");
  ASSERT_NE(read, nullptr);
  const Bytes packet = model::default_instance(*read).serialize();
  const auto run = run_armed(server, packet);
  // A CRC failure would yield an empty response; the fixups must hold.
  EXPECT_FALSE(run.response.empty());
}

}  // namespace
}  // namespace icsfuzz::pits
