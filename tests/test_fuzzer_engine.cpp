// Tests for the executor, crash database, stats series, campaign math and
// the Fuzzer engine's strategy behaviour.
#include <gtest/gtest.h>

#include "coverage/instrument.hpp"
#include "fuzzer/campaign.hpp"
#include "fuzzer/fuzzer.hpp"
#include "pits/pits.hpp"
#include "protocols/modbus/modbus_server.hpp"
#include "sanitizer/guard.hpp"

namespace icsfuzz::fuzz {
namespace {

/// A tiny deterministic target: block A always, block B when byte0 == 0x42,
/// fault when byte0 == 0x66, busy loop when byte0 == 0x77.
class ToyTarget final : public ProtocolTarget {
 public:
  [[nodiscard]] std::string_view name() const override { return "toy"; }
  void reset() override { ++resets_; }

  Bytes process(ByteSpan packet) override {
    ICSFUZZ_COV_BLOCK_ID(10);
    if (packet.empty()) return {};
    if (packet[0] == 0x42) {
      ICSFUZZ_COV_BLOCK_ID(20);
      return Bytes{0x01};
    }
    if (packet[0] == 0x66) {
      san::FaultSink::raise(san::FaultKind::Segv, san::site_id("toy-bug"),
                            "toy fault");
      return {};
    }
    if (packet[0] == 0x77) {
      for (int i = 0; i < 500000; ++i) ICSFUZZ_COV_BLOCK_ID(30);
      return {};
    }
    ICSFUZZ_COV_BLOCK_ID(40);
    return Bytes{0x00};
  }

  int resets_ = 0;
};

// ------------------------------------------------------------------ Executor

TEST(Executor, DetectsNewCoverageOnceThenNot) {
  ToyTarget target;
  Executor executor;
  const Bytes plain{0x00};
  EXPECT_TRUE(executor.run(target, plain).new_coverage);
  EXPECT_FALSE(executor.run(target, plain).new_coverage);
}

TEST(Executor, DistinctInputsDistinctPaths) {
  ToyTarget target;
  Executor executor;
  executor.run(target, Bytes{0x00});
  const ExecResult result = executor.run(target, Bytes{0x42});
  EXPECT_TRUE(result.new_coverage);
  EXPECT_TRUE(result.new_path);
  EXPECT_EQ(executor.path_count(), 2u);
}

TEST(Executor, CollectsFaults) {
  ToyTarget target;
  Executor executor;
  const ExecResult result = executor.run(target, Bytes{0x66});
  ASSERT_TRUE(result.crashed());
  EXPECT_EQ(result.faults[0].kind, san::FaultKind::Segv);
}

TEST(Executor, FlagsHangsViaEventBudget) {
  ToyTarget target;
  ExecutorConfig config;
  config.hang_event_budget = 1000;
  Executor executor(config);
  const ExecResult result = executor.run(target, Bytes{0x77});
  ASSERT_TRUE(result.crashed());
  EXPECT_EQ(result.faults[0].kind, san::FaultKind::Hang);
}

TEST(Executor, ResetsTargetBeforeEveryRun) {
  ToyTarget target;
  Executor executor;
  executor.run(target, Bytes{0x00});
  executor.run(target, Bytes{0x00});
  EXPECT_EQ(target.resets_, 2);
}

TEST(Executor, CampaignResetForgetsEverything) {
  ToyTarget target;
  Executor executor;
  executor.run(target, Bytes{0x42});
  executor.reset_campaign();
  EXPECT_EQ(executor.path_count(), 0u);
  EXPECT_EQ(executor.executions(), 0u);
  EXPECT_TRUE(executor.run(target, Bytes{0x42}).new_coverage);
}

TEST(Executor, ReturnsResponseBytes) {
  ToyTarget target;
  Executor executor;
  EXPECT_EQ(executor.run(target, Bytes{0x42}).response, Bytes{0x01});
}

// ------------------------------------------------------------------- CrashDb

TEST(CrashDb, DeduplicatesByKindAndSite) {
  CrashDb db;
  const san::FaultReport fault{san::FaultKind::Segv, 7, "x"};
  EXPECT_TRUE(db.record(fault, Bytes{1}, 10));
  EXPECT_FALSE(db.record(fault, Bytes{2}, 20));
  EXPECT_EQ(db.unique_count(), 1u);
  const auto records = db.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0]->hits, 2u);
  EXPECT_EQ(records[0]->reproducer, Bytes{1});  // first reproducer kept
  EXPECT_EQ(records[0]->first_execution, 10u);
}

TEST(CrashDb, DifferentSitesAreDistinct) {
  CrashDb db;
  db.record({san::FaultKind::Segv, 1, "a"}, {}, 1);
  db.record({san::FaultKind::Segv, 2, "b"}, {}, 2);
  db.record({san::FaultKind::HeapUseAfterFree, 1, "c"}, {}, 3);
  EXPECT_EQ(db.unique_count(), 3u);
}

TEST(CrashDb, HangsExcludedFromMemoryFaults) {
  CrashDb db;
  db.record({san::FaultKind::Hang, 1, "h"}, {}, 1);
  db.record({san::FaultKind::Segv, 2, "s"}, {}, 2);
  EXPECT_EQ(db.unique_count(), 2u);
  EXPECT_EQ(db.unique_memory_faults(), 1u);
}

TEST(CrashDb, ByKindTallies) {
  CrashDb db;
  db.record({san::FaultKind::Segv, 1, ""}, {}, 1);
  db.record({san::FaultKind::Segv, 2, ""}, {}, 2);
  db.record({san::FaultKind::HeapBufferOverflow, 3, ""}, {}, 3);
  const auto tally = db.by_kind();
  EXPECT_EQ(tally.at(san::FaultKind::Segv), 2u);
  EXPECT_EQ(tally.at(san::FaultKind::HeapBufferOverflow), 1u);
}

TEST(CrashDb, RecordsSortedByDiscovery) {
  CrashDb db;
  db.record({san::FaultKind::Segv, 9, ""}, {}, 500);
  db.record({san::FaultKind::Segv, 3, ""}, {}, 100);
  const auto records = db.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0]->first_execution, 100u);
}

// --------------------------------------------------------------- StatsSeries

TEST(StatsSeries, TicksAtInterval) {
  StatsSeries series(10);
  for (std::uint64_t i = 1; i <= 35; ++i) series.tick(i, i, i, 0, 0);
  EXPECT_EQ(series.checkpoints().size(), 3u);  // 10, 20, 30
  series.finalize(35, 35, 35, 0, 0);
  EXPECT_EQ(series.checkpoints().size(), 4u);
  EXPECT_EQ(series.final_paths(), 35u);
}

TEST(StatsSeries, FinalizeIdempotentAtSameExecution) {
  StatsSeries series(10);
  series.finalize(10, 5, 5, 0, 0);
  series.finalize(10, 5, 5, 0, 0);
  EXPECT_EQ(series.checkpoints().size(), 1u);
}

TEST(StatsSeries, ExecutionsToReach) {
  StatsSeries series(10);
  series.tick(10, 3, 0, 0, 0);
  series.tick(20, 7, 0, 0, 0);
  series.tick(30, 9, 0, 0, 0);
  EXPECT_EQ(series.executions_to_reach(7), 20u);
  EXPECT_EQ(series.executions_to_reach(8), 30u);
  EXPECT_EQ(series.executions_to_reach(100), 0u);
}

TEST(StatsSeries, CsvShape) {
  StatsSeries series(5);
  series.tick(5, 1, 2, 3, 4);
  const std::string csv = series.to_csv();
  EXPECT_NE(csv.find("executions,paths,edges,unique_crashes,corpus"),
            std::string::npos);
  EXPECT_NE(csv.find("5,1,2,3,4"), std::string::npos);
}

TEST(AverageSeries, MeansAlignedCheckpoints) {
  std::vector<std::vector<Checkpoint>> reps = {
      {{100, 10, 0, 0, 0}, {200, 20, 0, 0, 0}},
      {{100, 30, 0, 0, 0}, {200, 40, 0, 0, 0}},
  };
  const auto mean = average_series(reps);
  ASSERT_EQ(mean.size(), 2u);
  EXPECT_EQ(mean[0].paths, 20u);
  EXPECT_EQ(mean[1].paths, 30u);
}

TEST(AverageSeries, UnevenLengthsUseAvailableContributors) {
  std::vector<std::vector<Checkpoint>> reps = {
      {{100, 10, 0, 0, 0}},
      {{100, 30, 0, 0, 0}, {200, 50, 0, 0, 0}},
  };
  const auto mean = average_series(reps);
  ASSERT_EQ(mean.size(), 2u);
  EXPECT_EQ(mean[1].paths, 50u);
}

// -------------------------------------------------------------------- Fuzzer

TEST(Fuzzer, BaselineNeverBuildsCorpus) {
  proto::ModbusServer server;
  const model::DataModelSet models = pits::modbus_pit();
  FuzzerConfig config;
  config.strategy = Strategy::Peach;
  config.rng_seed = 5;
  Fuzzer fuzzer(server, models, config);
  fuzzer.run(500);
  EXPECT_TRUE(fuzzer.corpus().empty());
  EXPECT_TRUE(fuzzer.retained_seeds().empty());
  EXPECT_GT(fuzzer.path_count(), 0u);
}

TEST(Fuzzer, PeachStarBuildsCorpusAndRetainsSeeds) {
  proto::ModbusServer server;
  const model::DataModelSet models = pits::modbus_pit();
  FuzzerConfig config;
  config.strategy = Strategy::PeachStar;
  config.rng_seed = 5;
  Fuzzer fuzzer(server, models, config);
  fuzzer.run(500);
  EXPECT_FALSE(fuzzer.corpus().empty());
  EXPECT_FALSE(fuzzer.retained_seeds().empty());
}

TEST(Fuzzer, DeterministicForSameSeed) {
  const model::DataModelSet models = pits::modbus_pit();
  auto run_once = [&models](std::uint64_t seed) {
    proto::ModbusServer server;
    FuzzerConfig config;
    config.rng_seed = seed;
    Fuzzer fuzzer(server, models, config);
    fuzzer.run(400);
    return std::make_pair(fuzzer.path_count(),
                          fuzzer.executor().edge_count());
  };
  EXPECT_EQ(run_once(9), run_once(9));
  EXPECT_NE(run_once(9), run_once(10));  // and seeds matter
}

TEST(Fuzzer, StatsSeriesTracksProgress) {
  proto::ModbusServer server;
  const model::DataModelSet models = pits::modbus_pit();
  FuzzerConfig config;
  config.stats_interval = 100;
  Fuzzer fuzzer(server, models, config);
  fuzzer.run(500);
  ASSERT_GE(fuzzer.stats().checkpoints().size(), 5u);
  const auto& points = fuzzer.stats().checkpoints();
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].paths, points[i - 1].paths);  // monotone
  }
}

TEST(Fuzzer, StepReturnsPerExecutionResult) {
  proto::ModbusServer server;
  const model::DataModelSet models = pits::modbus_pit();
  Fuzzer fuzzer(server, models, {});
  const ExecResult first = fuzzer.step();
  EXPECT_EQ(fuzzer.executor().executions(), 1u);
  EXPECT_TRUE(first.new_path);  // very first execution is always new
}

TEST(Fuzzer, CallbackSeesEveryExecution) {
  proto::ModbusServer server;
  const model::DataModelSet models = pits::modbus_pit();
  Fuzzer fuzzer(server, models, {});
  int count = 0;
  fuzzer.run(50, [&count](const ExecResult&) { ++count; });
  EXPECT_EQ(count, 50);
}

// ------------------------------------------------------------------ Campaign

TEST(Campaign, RunsBothArmsWithRepetitions) {
  CampaignConfig config;
  config.iterations = 300;
  config.repetitions = 2;
  config.stats_interval = 50;
  const CampaignResult result = run_campaign(
      "libmodbus", [] { return std::make_unique<proto::ModbusServer>(); },
      pits::modbus_pit(), config);
  EXPECT_EQ(result.peach.repetition_series.size(), 2u);
  EXPECT_EQ(result.peach_star.repetition_series.size(), 2u);
  EXPECT_GT(result.peach.mean_final_paths, 0.0);
  EXPECT_GT(result.peach_star.mean_final_paths, 0.0);
  EXPECT_FALSE(result.peach.mean_series.empty());
}

TEST(Campaign, SeriesCsvHasBothColumns) {
  CampaignConfig config;
  config.iterations = 200;
  config.repetitions = 1;
  config.stats_interval = 50;
  const CampaignResult result = run_campaign(
      "libmodbus", [] { return std::make_unique<proto::ModbusServer>(); },
      pits::modbus_pit(), config);
  const std::string csv = series_csv(result);
  EXPECT_NE(csv.find("executions,peach_paths,peachstar_paths"),
            std::string::npos);
}

TEST(Campaign, SpeedupMathFromSyntheticSeries) {
  CampaignResult result;
  result.peach.mean_final_paths = 50.0;
  result.peach.mean_series = {{1000, 30, 0, 0, 0}, {2000, 50, 0, 0, 0}};
  result.peach_star.mean_series = {{1000, 55, 0, 0, 0}, {2000, 70, 0, 0, 0}};
  result.peach_star.mean_final_paths = 70.0;
  EXPECT_EQ(result.executions_to_match_baseline(), 1000u);
  EXPECT_DOUBLE_EQ(result.speedup(), 2.0);
  EXPECT_DOUBLE_EQ(result.path_increase_pct(), 40.0);
}

TEST(Campaign, SpeedupWhenNeverMatched) {
  CampaignResult result;
  result.peach.mean_final_paths = 100.0;
  result.peach.mean_series = {{2000, 100, 0, 0, 0}};
  result.peach_star.mean_series = {{2000, 80, 0, 0, 0}};
  result.peach_star.mean_final_paths = 80.0;
  EXPECT_EQ(result.executions_to_match_baseline(), 0u);
  EXPECT_DOUBLE_EQ(result.speedup(), 1.0);
}

}  // namespace
}  // namespace icsfuzz::fuzz
