// Tests for the telemetry layer: clock manual mode, histogram bucket math,
// multi-threaded shard-merge equivalence, windowed-rate math against a
// hand-computed oracle, journal ring + JSONL round-trips (including via
// Persistence), exporter format round-trips, and the determinism contract —
// a fixed-seed campaign's trajectory is identical telemetry-on vs off.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>

#include "fuzzer/fuzzer.hpp"
#include "fuzzer/persistence.hpp"
#include "pits/pits.hpp"
#include "protocols/modbus/modbus_server.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/windows.hpp"

namespace icsfuzz::telem {
namespace {

namespace fs = std::filesystem;

class SessionDir {
 public:
  SessionDir() {
    path_ = fs::temp_directory_path() /
            ("icsfuzz-telem-test-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter_++));
  }
  ~SessionDir() {
    std::error_code error;
    fs::remove_all(path_, error);
  }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  static inline int counter_ = 0;
  fs::path path_;
};

TEST(TelemetryClock, ManualModeIsDeterministic) {
  Clock clock;
  EXPECT_FALSE(clock.manual());
  clock.set_manual(1000);
  EXPECT_TRUE(clock.manual());
  EXPECT_EQ(clock.now_ns(), 1000u);
  EXPECT_EQ(clock.now_ns(), 1000u);  // frozen until advanced
  clock.advance(500);
  EXPECT_EQ(clock.now_ns(), 1500u);
}

TEST(TelemetryClock, SteadyModeIsMonotonicFromZero) {
  Clock clock;
  const std::uint64_t first = clock.now_ns();
  const std::uint64_t second = clock.now_ns();
  EXPECT_GE(second, first);
  EXPECT_LT(first, kSecondNs);  // campaign-relative, not epoch-relative
}

TEST(TelemetryMetrics, HistogramBucketBoundaries) {
  EXPECT_EQ(bucket_of(0), 0u);
  EXPECT_EQ(bucket_of(1), 1u);
  EXPECT_EQ(bucket_of(2), 2u);
  EXPECT_EQ(bucket_of(3), 2u);
  EXPECT_EQ(bucket_of(4), 3u);
  EXPECT_EQ(bucket_of(7), 3u);
  EXPECT_EQ(bucket_of(8), 4u);
  EXPECT_EQ(bucket_of(~std::uint64_t{0}), kHistBuckets - 1);

  for (std::size_t bucket = 0; bucket < kHistBuckets - 1; ++bucket) {
    EXPECT_EQ(bucket_of(bucket_floor(bucket)), bucket) << bucket;
    EXPECT_EQ(bucket_of(bucket_ceil(bucket)), bucket) << bucket;
    if (bucket > 0) {
      // The bucket boundaries tile the integers with no gaps or overlaps.
      EXPECT_EQ(bucket_floor(bucket), bucket_ceil(bucket - 1) + 1) << bucket;
    }
  }
  EXPECT_EQ(bucket_ceil(kHistBuckets - 1), ~std::uint64_t{0});
}

TEST(TelemetryMetrics, ObserveAccumulatesBucketsAndSum) {
  Telemetry hub;
  const Sink sink(&hub, 0);
  sink.observe(Histogram::kPacketBytes, 0);
  sink.observe(Histogram::kPacketBytes, 5);
  sink.observe(Histogram::kPacketBytes, 5);
  sink.observe(Histogram::kPacketBytes, 260);

  const Snapshot snap = hub.snapshot();
  const HistogramSnapshot& hist = snap.histogram(Histogram::kPacketBytes);
  EXPECT_EQ(hist.count, 4u);
  EXPECT_EQ(hist.sum, 270u);
  EXPECT_EQ(hist.buckets[bucket_of(0)], 1u);
  EXPECT_EQ(hist.buckets[bucket_of(5)], 2u);
  EXPECT_EQ(hist.buckets[bucket_of(260)], 1u);
  EXPECT_DOUBLE_EQ(hist.mean(), 270.0 / 4.0);
}

TEST(TelemetryMetrics, ShardMergeEquivalenceUnderWorkers) {
  // W worker threads each pound a private shard through their own sink; the
  // merged snapshot must equal the analytic per-metric totals exactly.
  constexpr std::size_t kWorkers = 8;
  constexpr std::uint64_t kOpsPerWorker = 20000;
  Telemetry hub;
  std::vector<std::thread> threads;
  threads.reserve(kWorkers);
  for (std::size_t w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&hub, w] {
      const Sink sink(&hub, static_cast<std::uint32_t>(w));
      for (std::uint64_t i = 0; i < kOpsPerWorker; ++i) {
        sink.add(Counter::kExecutions);
        sink.add(Counter::kBatchSeeds, 3);
        sink.observe(Histogram::kPacketBytes, i % 100);
      }
      sink.set(Gauge::kPathsCovered, w + 1);
    });
  }
  for (std::thread& thread : threads) thread.join();

  const Snapshot snap = hub.snapshot();
  EXPECT_EQ(snap.counter(Counter::kExecutions), kWorkers * kOpsPerWorker);
  EXPECT_EQ(snap.counter(Counter::kBatchSeeds), kWorkers * kOpsPerWorker * 3);
  // Gauges sum across shards: 1 + 2 + ... + kWorkers.
  EXPECT_EQ(snap.gauge(Gauge::kPathsCovered),
            kWorkers * (kWorkers + 1) / 2);
  const HistogramSnapshot& hist = snap.histogram(Histogram::kPacketBytes);
  EXPECT_EQ(hist.count, kWorkers * kOpsPerWorker);
  std::uint64_t expected_sum = 0;
  for (std::uint64_t i = 0; i < kOpsPerWorker; ++i) expected_sum += i % 100;
  EXPECT_EQ(hist.sum, kWorkers * expected_sum);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t bucket : hist.buckets) bucket_total += bucket;
  EXPECT_EQ(bucket_total, hist.count);
}

TEST(TelemetryMetrics, DisabledSinkIsInert) {
  const Sink sink;
  EXPECT_FALSE(sink.enabled());
  sink.add(Counter::kExecutions);
  sink.set(Gauge::kPathsCovered, 7);
  sink.observe(Histogram::kPacketBytes, 9);
  sink.event(EventType::kCrash, 1, "nope");
  EXPECT_EQ(sink.now_ns(), 0u);  // nothing to crash into, nothing recorded
}

Snapshot snapshot_at(std::uint64_t ts_ns, std::uint64_t executions,
                     std::uint64_t edges) {
  Snapshot snap;
  snap.ts_ns = ts_ns;
  snap.counters[static_cast<std::size_t>(Counter::kExecutions)] = executions;
  snap.gauges[static_cast<std::size_t>(Gauge::kEdgesCovered)] = edges;
  return snap;
}

TEST(TelemetryWindows, RateMathMatchesHandOracle) {
  RateWindows rates;
  // One snapshot per second: 1000 execs/sec steady, edges growing 10/sec
  // for the first 5 seconds then flat.
  for (std::uint64_t second = 0; second <= 10; ++second) {
    rates.push(snapshot_at(second * kSecondNs, second * 1000,
                           second < 5 ? second * 10 : 50));
  }

  const RateWindows::Rate one_sec =
      rates.counter_rate(Counter::kExecutions, kSecondNs);
  ASSERT_TRUE(one_sec.valid);
  EXPECT_DOUBLE_EQ(one_sec.per_sec, 1000.0);
  EXPECT_DOUBLE_EQ(one_sec.window_seconds, 1.0);

  const RateWindows::Rate five_sec =
      rates.counter_rate(Counter::kExecutions, 5 * kSecondNs);
  ASSERT_TRUE(five_sec.valid);
  EXPECT_DOUBLE_EQ(five_sec.per_sec, 1000.0);
  EXPECT_DOUBLE_EQ(five_sec.window_seconds, 5.0);

  // The 60s window exceeds the ring's reach: falls back to since-start and
  // reports the actual 10s span.
  const RateWindows::Rate sixty_sec =
      rates.counter_rate(Counter::kExecutions, 60 * kSecondNs);
  ASSERT_TRUE(sixty_sec.valid);
  EXPECT_DOUBLE_EQ(sixty_sec.per_sec, 1000.0);
  EXPECT_DOUBLE_EQ(sixty_sec.window_seconds, 10.0);

  // Edge gauge went flat after second 5: the trailing 1s rate is 0, the
  // since-start rate averages 50 edges over 10 seconds.
  EXPECT_DOUBLE_EQ(rates.gauge_rate(Gauge::kEdgesCovered, kSecondNs).per_sec,
                   0.0);
  EXPECT_DOUBLE_EQ(
      rates.gauge_rate(Gauge::kEdgesCovered, 60 * kSecondNs).per_sec, 5.0);
}

TEST(TelemetryWindows, FewerThanTwoSamplesIsInvalid) {
  RateWindows rates;
  EXPECT_FALSE(rates.counter_rate(Counter::kExecutions, kSecondNs).valid);
  rates.push(snapshot_at(0, 0, 0));
  EXPECT_FALSE(rates.counter_rate(Counter::kExecutions, kSecondNs).valid);
  rates.push(snapshot_at(kSecondNs, 500, 0));
  const RateWindows::Rate rate =
      rates.counter_rate(Counter::kExecutions, kSecondNs);
  ASSERT_TRUE(rate.valid);
  EXPECT_DOUBLE_EQ(rate.per_sec, 500.0);
}

TEST(TelemetryWindows, RingEvictsOldestBeyondCapacity) {
  RateWindows rates(4);
  for (std::uint64_t second = 0; second < 10; ++second) {
    rates.push(snapshot_at(second * kSecondNs, second * 100, 0));
  }
  EXPECT_EQ(rates.size(), 4u);
  ASSERT_NE(rates.newest(), nullptr);
  EXPECT_EQ(rates.newest()->ts_ns, 9 * kSecondNs);
  // A huge window reaches the oldest retained entry (second 6), not the
  // evicted start of the series.
  const RateWindows::Rate rate =
      rates.counter_rate(Counter::kExecutions, 60 * kSecondNs);
  ASSERT_TRUE(rate.valid);
  EXPECT_DOUBLE_EQ(rate.window_seconds, 3.0);
}

TEST(TelemetryJournal, RingKeepsNewestAndCountsDropped) {
  EventJournal journal(4);
  for (std::uint64_t i = 0; i < 6; ++i) {
    journal.append(EventType::kCrash, i * 10, 0, i, "x");
  }
  EXPECT_EQ(journal.size(), 4u);
  EXPECT_EQ(journal.total_appended(), 6u);
  EXPECT_EQ(journal.dropped(), 2u);
  const std::vector<Event> events = journal.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().hash, 2u);  // oldest survivor
  EXPECT_EQ(events.back().hash, 5u);
}

TEST(TelemetryJournal, JsonlRoundTripPreservesEverything) {
  EventJournal journal;
  journal.append(EventType::kCrash, 123456789, 3, 0xDEADBEEFCAFEF00DULL,
                 "SEGV site=0000beef");
  journal.append(EventType::kSeedImport, 42, 0, 0, "seeds=5 sync=2");
  // Detail with JSON-hostile characters must escape cleanly.
  journal.append(EventType::kDistill, 7, 1, 1, "quote=\" slash=\\ tab=\t");

  const std::string jsonl = journal.to_jsonl();
  const std::vector<Event> parsed = EventJournal::from_jsonl(jsonl);
  const std::vector<Event> original = journal.events();
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i], original[i]) << i;
  }
}

TEST(TelemetryJournal, MalformedLinesAreSkipped) {
  const std::string text =
      "{\"ts_ns\":1,\"type\":\"crash\",\"worker\":0,\"hash\":"
      "\"0000000000000001\",\"detail\":\"ok\"}\n"
      "not json\n"
      "{\"ts_ns\":2,\"type\":\"no-such-event\",\"worker\":0,\"hash\":"
      "\"0000000000000000\",\"detail\":\"bad type\"}\n"
      "\n"
      "{\"ts_ns\":3,\"type\":\"hang\",\"worker\":1,\"hash\":"
      "\"0000000000000002\",\"detail\":\"ok too\"}\n";
  const std::vector<Event> events = EventJournal::from_jsonl(text);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, EventType::kCrash);
  EXPECT_EQ(events[1].type, EventType::kHang);
  EXPECT_EQ(events[1].worker, 1u);
}

TEST(TelemetryJournal, TornTrailingLineIsDroppedWhole) {
  // A live exporter overwritten mid-write (or a killed writer) leaves an
  // unterminated tail; `icsfuzz-stats --follow` must never half-parse it.
  EventJournal journal;
  journal.append(EventType::kCampaignStart, 1, 0, 0, "workers=1");
  journal.append(EventType::kCrash, 2, 0, 0xBEEF, "SEGV");
  const std::string jsonl = journal.to_jsonl();

  // Cut inside the final record, at every byte offset of its last line.
  const std::size_t last_line = jsonl.rfind('\n', jsonl.size() - 2) + 1;
  for (std::size_t cut = last_line + 1; cut < jsonl.size(); ++cut) {
    const std::vector<Event> events =
        EventJournal::from_jsonl(jsonl.substr(0, cut));
    ASSERT_EQ(events.size(), 1u) << "cut at byte " << cut;
    EXPECT_EQ(events[0].type, EventType::kCampaignStart);
  }
  // The intact document still yields both.
  EXPECT_EQ(EventJournal::from_jsonl(jsonl).size(), 2u);
}

TEST(TelemetryExport, SnapshotJsonRoundTripIsExact) {
  Telemetry hub;
  hub.clock().set_manual(987654321);
  const Sink sink(&hub, 0);
  sink.add(Counter::kExecutions, 123456);
  sink.add(Counter::kUniqueCrashes, 3);
  sink.set(Gauge::kEdgesCovered, 789);
  sink.observe(Histogram::kExecLatencyNs, 0);
  sink.observe(Histogram::kExecLatencyNs, 300);
  sink.observe(Histogram::kPacketBytes, ~std::uint64_t{0});

  const Snapshot snap = hub.snapshot();
  const std::optional<Snapshot> parsed = snapshot_from_json(to_json(snap));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, snap);
}

TEST(TelemetryExport, RejectsWrongSchemaAndGarbage) {
  EXPECT_FALSE(snapshot_from_json("").has_value());
  EXPECT_FALSE(snapshot_from_json("{}").has_value());
  EXPECT_FALSE(snapshot_from_json("{\"schema\":\"other-v9\"}").has_value());
  EXPECT_FALSE(snapshot_from_json("not json at all").has_value());
}

TEST(TelemetryExport, PrometheusFormatShape) {
  Telemetry hub;
  const Sink sink(&hub, 0);
  sink.add(Counter::kExecutions, 1000);
  sink.set(Gauge::kCorpusPuzzles, 12);
  sink.observe(Histogram::kPacketBytes, 5);
  sink.observe(Histogram::kPacketBytes, 100);

  const std::string text = to_prometheus(hub.snapshot());
  EXPECT_NE(text.find("icsfuzz_executions_total 1000"), std::string::npos);
  EXPECT_NE(text.find("icsfuzz_corpus_puzzles 12"), std::string::npos);
  EXPECT_NE(text.find("icsfuzz_packet_bytes_count 2"), std::string::npos);
  EXPECT_NE(text.find("icsfuzz_packet_bytes_sum 105"), std::string::npos);
  // Cumulative buckets: the +Inf bucket always carries the total count.
  EXPECT_NE(text.find("le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE icsfuzz_packet_bytes histogram"),
            std::string::npos);
}

TEST(TelemetryExport, LiveExportWritesAllThreeFiles) {
  SessionDir dir;
  Telemetry hub;
  hub.clock().set_manual(0);
  const Sink sink(&hub, 0);
  sink.add(Counter::kExecutions, 100);
  sink.event(EventType::kCampaignStart, 0, "workers=1");
  RateWindows rates;
  ASSERT_FALSE(export_live(hub, rates, dir.str()).has_value());
  hub.clock().advance(kSecondNs);
  sink.add(Counter::kExecutions, 900);
  ASSERT_FALSE(export_live(hub, rates, dir.str()).has_value());
  EXPECT_EQ(rates.size(), 2u);

  const fs::path root(dir.str());
  EXPECT_TRUE(fs::exists(root / std::string(kMetricsFile)));
  EXPECT_TRUE(fs::exists(root / std::string(kPrometheusFile)));
  EXPECT_TRUE(fs::exists(root / std::string(kJournalFile)));

  // The written snapshot parses and carries the live rates.
  std::ifstream in(root / std::string(kMetricsFile));
  const std::string json((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const std::optional<Snapshot> parsed = snapshot_from_json(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->counter(Counter::kExecutions), 1000u);
  EXPECT_NE(json.find("\"rates\""), std::string::npos);
  EXPECT_NE(json.find("\"execs_per_sec\":900"), std::string::npos);
}

fuzz::Fuzzer fuzz_modbus(Sink sink, std::uint64_t iterations) {
  static proto::ModbusServer server;  // reset() by every execution
  static const model::DataModelSet models = pits::modbus_pit();
  fuzz::FuzzerConfig config;
  config.strategy = fuzz::Strategy::PeachStar;
  config.rng_seed = 77;
  config.telemetry = sink;
  fuzz::Fuzzer fuzzer(server, models, config);
  fuzzer.run(iterations);
  return fuzzer;
}

TEST(TelemetryDeterminism, TrajectoryIdenticalOnVsOff) {
  Telemetry hub;
  const fuzz::Fuzzer with = fuzz_modbus(Sink(&hub, 0), 12000);
  const fuzz::Fuzzer without = fuzz_modbus(Sink(), 12000);

  EXPECT_EQ(with.path_count(), without.path_count());
  EXPECT_EQ(with.executor().edge_count(), without.executor().edge_count());
  EXPECT_EQ(with.crashes().unique_count(), without.crashes().unique_count());
  EXPECT_EQ(with.corpus().size(), without.corpus().size());
  ASSERT_EQ(with.retained_seeds().size(), without.retained_seeds().size());
  for (std::size_t i = 0; i < with.retained_seeds().size(); ++i) {
    EXPECT_EQ(with.retained_seeds()[i].bytes, without.retained_seeds()[i].bytes)
        << i;
  }
  const auto& with_series = with.stats().checkpoints();
  const auto& without_series = without.stats().checkpoints();
  ASSERT_EQ(with_series.size(), without_series.size());
  for (std::size_t i = 0; i < with_series.size(); ++i) {
    EXPECT_EQ(with_series[i].executions, without_series[i].executions) << i;
    EXPECT_EQ(with_series[i].paths, without_series[i].paths) << i;
    EXPECT_EQ(with_series[i].edges, without_series[i].edges) << i;
    EXPECT_EQ(with_series[i].unique_crashes, without_series[i].unique_crashes)
        << i;
    EXPECT_EQ(with_series[i].corpus_size, without_series[i].corpus_size) << i;
    // wall_ns is the one column allowed to differ (0 when telemetry is off).
    EXPECT_EQ(without_series[i].wall_ns, 0u) << i;
  }
}

TEST(TelemetryDeterminism, CampaignCountersMatchEngineTallies) {
  Telemetry hub;
  const fuzz::Fuzzer fuzzer = fuzz_modbus(Sink(&hub, 0), 15000);
  const Snapshot snap = hub.snapshot();
  EXPECT_EQ(snap.counter(Counter::kExecutions),
            fuzzer.executor().executions());
  EXPECT_EQ(snap.counter(Counter::kUniqueCrashes),
            fuzzer.crashes().unique_count());
  EXPECT_EQ(snap.gauge(Gauge::kPathsCovered), fuzzer.path_count());
  EXPECT_EQ(snap.gauge(Gauge::kEdgesCovered),
            fuzzer.executor().edge_count());
  EXPECT_EQ(snap.gauge(Gauge::kRetainedSeeds),
            fuzzer.retained_seeds().size());
  EXPECT_EQ(snap.gauge(Gauge::kCorpusPuzzles), fuzzer.corpus().size());
  // Latency sampling fires every 64th execution, so the histogram holds
  // roughly executions/64 observations.
  const HistogramSnapshot& latency =
      snap.histogram(Histogram::kExecLatencyNs);
  EXPECT_NEAR(static_cast<double>(latency.count),
              static_cast<double>(fuzzer.executor().executions()) / 64.0,
              2.0);
  // Every execution observes its packet size.
  EXPECT_EQ(snap.histogram(Histogram::kPacketBytes).count,
            fuzzer.executor().executions());
}

TEST(TelemetryDeterminism, StatsSeriesCarriesManualClockTimestamps) {
  Telemetry hub;
  hub.clock().set_manual(5 * kSecondNs);
  const fuzz::Fuzzer fuzzer = fuzz_modbus(Sink(&hub, 0), 2000);
  const auto& series = fuzzer.stats().checkpoints();
  ASSERT_FALSE(series.empty());
  for (const fuzz::Checkpoint& point : series) {
    EXPECT_EQ(point.wall_ns, 5 * kSecondNs);
  }
  // The CSV gained a trailing wall_ms column; the original columns lead.
  const std::string csv = fuzzer.stats().to_csv();
  EXPECT_NE(csv.find("executions,paths,edges,unique_crashes,corpus,wall_ms"),
            std::string::npos);
  EXPECT_NE(csv.find(",5000\n"), std::string::npos);
}

TEST(TelemetryPersistence, JournalAndSnapshotRoundTripThroughSession) {
  SessionDir dir;
  Telemetry hub;
  const fuzz::Fuzzer fuzzer = fuzz_modbus(Sink(&hub, 0), 15000);
  ASSERT_FALSE(fuzz::save_session(fuzzer, dir.str()).has_value());

  const fs::path root(dir.str());
  ASSERT_TRUE(fs::exists(root / "telemetry.json"));
  ASSERT_TRUE(fs::exists(root / "journal.jsonl"));

  const std::vector<Event> loaded = fuzz::load_journal(dir.str());
  const std::vector<Event> live = hub.journal().events();
  ASSERT_EQ(loaded.size(), live.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i], live[i]) << i;
  }

  const std::optional<Snapshot> snap =
      fuzz::load_telemetry_snapshot(dir.str());
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->counter(Counter::kExecutions),
            fuzzer.executor().executions());
  EXPECT_EQ(snap->gauge(Gauge::kPathsCovered), fuzzer.path_count());
}

TEST(TelemetryPersistence, DisabledTelemetryWritesNoArtefacts) {
  SessionDir dir;
  const fuzz::Fuzzer fuzzer = fuzz_modbus(Sink(), 1000);
  ASSERT_FALSE(fuzz::save_session(fuzzer, dir.str()).has_value());
  EXPECT_FALSE(fs::exists(fs::path(dir.str()) / "telemetry.json"));
  EXPECT_FALSE(fs::exists(fs::path(dir.str()) / "journal.jsonl"));
  EXPECT_TRUE(fuzz::load_journal(dir.str()).empty());
  EXPECT_FALSE(fuzz::load_telemetry_snapshot(dir.str()).has_value());
}

}  // namespace
}  // namespace icsfuzz::telem
