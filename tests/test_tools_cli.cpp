// CLI argument hygiene for the shipped tools.
//
// Regression suite for the atoi/strtoull bug class: numeric options used
// to be parsed with C conversions that silently turn garbage into 0
// ("--interval-ms banana" polled at a default rate instead of failing),
// so every numeric flag across icsfuzz-stats / icsfuzz-distill /
// icsfuzz-triage / icsfuzz-inject-check now goes through the checked
// parse_u64/parse_int helpers and must reject non-numeric, overflowing,
// and out-of-domain values with a diagnostic on stderr and a usage exit.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace {

/// Runs `cmd` through the shell with stdout discarded and stderr captured;
/// returns the exit status and fills `err` with the stderr text.
int run_tool(const std::string& cmd, std::string& err) {
  const std::string err_path =
      ::testing::TempDir() + "/tools_cli_stderr.txt";
  const std::string full =
      cmd + " >/dev/null 2>" + err_path;
  const int status = std::system(full.c_str());
  err.clear();
  std::ifstream in(err_path);
  std::string line;
  while (std::getline(in, line)) {
    err += line;
    err += '\n';
  }
  std::remove(err_path.c_str());
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return -1;
}

struct RejectCase {
  const char* label;
  std::string cmd;
};

void expect_usage_rejection(const RejectCase& c) {
  SCOPED_TRACE(c.label);
  std::string err;
  const int code = run_tool(c.cmd, err);
  EXPECT_EQ(code, 2) << "bad numeric input must exit through usage";
  EXPECT_FALSE(err.empty()) << "rejection must explain itself on stderr";
}

TEST(ToolsCli, StatsRejectsBadNumerics) {
  const std::string tool = ICSFUZZ_TOOL_STATS;
  const RejectCase cases[] = {
      {"non-numeric interval", tool + " /tmp/nodir --interval-ms banana"},
      {"negative interval", tool + " /tmp/nodir --interval-ms -5"},
      {"trailing garbage", tool + " /tmp/nodir --interval-ms 12abc"},
      {"missing operand", tool + " /tmp/nodir --interval-ms"},
      {"non-numeric events", tool + " /tmp/nodir --events x"},
      {"overflow events",
       tool + " /tmp/nodir --events 99999999999999999999999"},
  };
  for (const RejectCase& c : cases) expect_usage_rejection(c);
}

TEST(ToolsCli, DistillRejectsBadNumerics) {
  const std::string tool = ICSFUZZ_TOOL_DISTILL;
  const RejectCase cases[] = {
      {"non-numeric workers",
       tool + " --project libmodbus --workers banana"},
      {"negative workers", tool + " --project libmodbus --workers -2"},
      {"overflow persistent budget",
       tool + " --project libmodbus --persistent 99999999999 --session x"},
      {"zero persistent budget",
       tool + " --project libmodbus --persistent 0 --session x"},
  };
  for (const RejectCase& c : cases) expect_usage_rejection(c);
}

TEST(ToolsCli, TriageRejectsBadNumerics) {
  const std::string tool = ICSFUZZ_TOOL_TRIAGE;
  const std::string store = ::testing::TempDir() + "/tools_cli_store";
  const RejectCase cases[] = {
      {"non-numeric limit", tool + " list " + store + " --limit banana"},
      {"zero limit", tool + " list " + store + " --limit 0"},
      {"trailing garbage", tool + " list " + store + " --limit 3x"},
  };
  for (const RejectCase& c : cases) expect_usage_rejection(c);
}

TEST(ToolsCli, TriageHonorsValidLimit) {
  const std::string tool = ICSFUZZ_TOOL_TRIAGE;
  const std::string store = ::testing::TempDir() + "/tools_cli_store_ok";
  std::string err;
  const int code = run_tool(tool + " list " + store + " --limit 5", err);
  EXPECT_EQ(code, 0) << err;
}

TEST(ToolsCli, InjectCheckRejectsBadNumerics) {
  const std::string tool = ICSFUZZ_TOOL_INJECT_CHECK;
  const RejectCase cases[] = {
      {"non-numeric timeout",
       tool + " --timeout-ms soon -- /bin/true"},
      {"non-numeric persistent budget",
       tool + " --persistent many -- /bin/true"},
      {"missing target", tool + " --timeout-ms 1000"},
  };
  for (const RejectCase& c : cases) expect_usage_rejection(c);
}

}  // namespace
