// Tests for the instantiation tree: default generation, serialization,
// constraint application (File Fixup machinery) and — most importantly for
// the File Cracker — parse_packet's PARSE/LEGAL semantics, including
// property-style generate->parse->reserialize round-trips.
#include <gtest/gtest.h>

#include "fuzzer/instantiator.hpp"
#include "model/instantiation.hpp"
#include "pits/pits.hpp"
#include "util/checksum.hpp"

namespace icsfuzz::model {
namespace {

NumberSpec u8(std::uint64_t value = 0) {
  NumberSpec spec;
  spec.width = 1;
  spec.default_value = value;
  return spec;
}

NumberSpec u16(std::uint64_t value = 0) {
  NumberSpec spec;
  spec.width = 2;
  spec.default_value = value;
  return spec;
}

/// Magic(token) + Length(sizeof Body) + Body{A, Rest} + Crc32(Body).
DataModel framed_model() {
  std::vector<Chunk> fields;
  fields.push_back(Chunk::token("Magic", 2, Endian::Big, 0xABCD));
  Chunk length = Chunk::number("Length", u16());
  length.with_relation(Relation{RelationKind::SizeOf, "Body", 1, 0});
  fields.push_back(std::move(length));
  fields.push_back(Chunk::block("Body", {Chunk::number("A", u8(0x42)),
                                         Chunk::blob("Rest", {})}));
  Chunk crc = Chunk::number("Crc", NumberSpec{.width = 4});
  crc.with_fixup(Fixup{FixupKind::Crc32, "Body"});
  fields.push_back(std::move(crc));
  return DataModel("framed", Chunk::block("root", std::move(fields)));
}

TEST(DefaultInstance, SerializesWithConstraintsSatisfied) {
  const DataModel model = framed_model();
  const InsTree tree = default_instance(model);
  const Bytes wire = tree.serialize();
  // Magic(2) + Length(2) + Body(1 byte A + 0 rest) + CRC(4).
  ASSERT_EQ(wire.size(), 9u);
  EXPECT_EQ(wire[0], 0xAB);
  EXPECT_EQ(wire[1], 0xCD);
  EXPECT_EQ(wire[2], 0x00);
  EXPECT_EQ(wire[3], 0x01);  // sizeof(Body) == 1
  EXPECT_EQ(wire[4], 0x42);  // A's default
  const std::uint32_t expected_crc = crc32(ByteSpan(&wire[4], 1));
  EXPECT_EQ(decode_uint(ByteSpan(&wire[5], 4), Endian::Big), expected_crc);
}

TEST(ApplyConstraints, CountsRewrites) {
  const DataModel model = framed_model();
  InsTree tree = default_instance(model);
  // Already consistent: second run rewrites nothing (idempotence).
  EXPECT_EQ(apply_constraints(tree), 0u);
  // Corrupt the length and CRC, then repair.
  tree.root.find("Length")->content = {0xFF, 0xFF};
  tree.root.find("Crc")->content = {0, 0, 0, 0};
  EXPECT_EQ(apply_constraints(tree), 2u);
}

TEST(ApplyConstraints, RelationTracksGrowingBody) {
  const DataModel model = framed_model();
  InsTree tree = default_instance(model);
  tree.root.find("Rest")->content = Bytes(10, 0xEE);
  apply_constraints(tree);
  const Bytes wire = tree.serialize();
  EXPECT_EQ(decode_uint(ByteSpan(&wire[2], 2), Endian::Big), 11u);
}

TEST(InsNode, FindAndNodeCount) {
  const DataModel model = framed_model();
  InsTree tree = default_instance(model);
  EXPECT_NE(tree.root.find("Rest"), nullptr);
  EXPECT_EQ(tree.root.find("nope"), nullptr);
  EXPECT_EQ(tree.root.node_count(), 7u);  // root,Magic,Length,Body,A,Rest,Crc
}

TEST(InsNode, SerializedSizeMatchesSerialize) {
  const DataModel model = framed_model();
  const InsTree tree = default_instance(model);
  EXPECT_EQ(tree.root.serialized_size(), tree.serialize().size());
}

TEST(DumpTree, MentionsEveryNode) {
  const DataModel model = framed_model();
  const InsTree tree = default_instance(model);
  const std::string dump = dump_tree(tree);
  for (const char* name : {"Magic", "Length", "Body", "A", "Rest", "Crc"}) {
    EXPECT_NE(dump.find(name), std::string::npos) << name;
  }
}

// -------------------------------------------------------------------- Parse

TEST(Parse, AcceptsOwnSerialization) {
  const DataModel model = framed_model();
  const Bytes wire = default_instance(model).serialize();
  EXPECT_TRUE(parse_packet(model, wire).has_value());
}

TEST(Parse, RejectsTokenMismatch) {
  const DataModel model = framed_model();
  Bytes wire = default_instance(model).serialize();
  wire[0] ^= 0xFF;  // break the magic token
  EXPECT_FALSE(parse_packet(model, wire).has_value());
}

TEST(Parse, RejectsBadChecksum) {
  const DataModel model = framed_model();
  Bytes wire = default_instance(model).serialize();
  wire.back() ^= 0x01;
  EXPECT_FALSE(parse_packet(model, wire).has_value());
  ParseOptions lax;
  lax.verify_fixups = false;
  EXPECT_TRUE(parse_packet(model, wire, lax).has_value());
}

TEST(Parse, RejectsBadLengthField) {
  const DataModel model = framed_model();
  Bytes wire = default_instance(model).serialize();
  wire[3] = 0x05;  // claims a 5-byte body; framing no longer adds up
  EXPECT_FALSE(parse_packet(model, wire).has_value());
}

TEST(Parse, RejectsTrailingGarbage) {
  const DataModel model = framed_model();
  Bytes wire = default_instance(model).serialize();
  wire.push_back(0x00);
  EXPECT_FALSE(parse_packet(model, wire).has_value());
  ParseOptions lax;
  lax.require_full_consumption = false;
  lax.verify_fixups = false;   // CRC field now parses mid-garbage fine
  lax.verify_relations = false;
  EXPECT_TRUE(parse_packet(model, wire, lax).has_value());
}

TEST(Parse, RejectsTruncation) {
  const DataModel model = framed_model();
  Bytes wire = default_instance(model).serialize();
  wire.resize(wire.size() - 2);
  EXPECT_FALSE(parse_packet(model, wire).has_value());
}

TEST(Parse, SizedBodyCarvesVariableBlob) {
  const DataModel model = framed_model();
  InsTree tree = default_instance(model);
  tree.root.find("Rest")->content = {0xAA, 0xBB, 0xCC};
  apply_constraints(tree);
  const Bytes wire = tree.serialize();
  auto parsed = parse_packet(model, wire);
  ASSERT_TRUE(parsed.has_value());
  const InsNode* rest = parsed->root.find("Rest");
  ASSERT_NE(rest, nullptr);
  EXPECT_EQ(rest->content, (Bytes{0xAA, 0xBB, 0xCC}));
}

TEST(Parse, ChoiceSelectsMatchingAlternative) {
  std::vector<Chunk> alts;
  alts.push_back(Chunk::block("ReadAlt", {Chunk::token("ReadFc", 1, Endian::Big, 3),
                                          Chunk::number("ReadAddr", u16())}));
  alts.push_back(Chunk::block("WriteAlt", {Chunk::token("WriteFc", 1, Endian::Big, 6),
                                           Chunk::number("WriteAddr", u16())}));
  DataModel model("choice", Chunk::block("root", {Chunk::choice("Pdu", std::move(alts))}));
  ASSERT_FALSE(model.validate().has_value());

  const Bytes write_wire{0x06, 0x00, 0x10};
  auto parsed = parse_packet(model, write_wire);
  ASSERT_TRUE(parsed.has_value());
  const InsNode& choice = parsed->root.children[0];
  EXPECT_EQ(choice.choice_index, 1u);
  EXPECT_NE(parsed->root.find("WriteAddr"), nullptr);

  const Bytes bogus{0x07, 0x00, 0x10};
  EXPECT_FALSE(parse_packet(model, bogus).has_value());
}

TEST(Parse, NullTerminatedString) {
  StringSpec spec;
  spec.null_terminated = true;
  DataModel model("str", Chunk::block("root", {Chunk::string("Name", spec),
                                               Chunk::number("Tail", u8())}));
  const Bytes wire{'h', 'i', 0x00, 0x42};
  auto parsed = parse_packet(model, wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->root.find("Name")->content, (Bytes{'h', 'i', 0x00}));
  EXPECT_EQ(parsed->root.find("Tail")->content, (Bytes{0x42}));

  const Bytes unterminated{'h', 'i'};
  EXPECT_FALSE(parse_packet(model, unterminated).has_value());
}

TEST(Parse, CountOfRelationCarvesElementArray) {
  Chunk count = Chunk::number("Count", u8());
  count.with_relation(Relation{RelationKind::CountOf, "Items", 2, 0});
  BlobSpec items;
  items.unit = 2;
  DataModel model("counted",
                  Chunk::block("root", {std::move(count),
                                        Chunk::blob("Items", items),
                                        Chunk::number("Tail", u8())}));
  const Bytes wire{0x02, 1, 2, 3, 4, 0x99};
  auto parsed = parse_packet(model, wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->root.find("Items")->content, (Bytes{1, 2, 3, 4}));
  EXPECT_EQ(parsed->root.find("Tail")->content, (Bytes{0x99}));

  const Bytes short_wire{0x05, 1, 2};  // claims 5 elements, has 1
  EXPECT_FALSE(parse_packet(model, short_wire).has_value());
}

TEST(Parse, RelationBiasInverted) {
  // TPKT-style: length counts a 4-byte header plus the payload.
  Chunk length = Chunk::number("Len", u16());
  length.with_relation(Relation{RelationKind::SizeOf, "Payload", 1, 4});
  DataModel model("tpkt", Chunk::block("root", {Chunk::token("Ver", 2, Endian::Big, 0x0300),
                                                std::move(length),
                                                Chunk::blob("Payload", {})}));
  const Bytes wire{0x03, 0x00, 0x00, 0x07, 0xAA, 0xBB, 0xCC};
  auto parsed = parse_packet(model, wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->root.find("Payload")->content.size(), 3u);
  // A length below the bias must fail, not wrap around.
  const Bytes underflow{0x03, 0x00, 0x00, 0x02};
  EXPECT_FALSE(parse_packet(model, underflow).has_value());
}

// ------------------------------------------- Property: roundtrip per pit

struct RoundTripCase {
  const char* pit_name;
  model::DataModelSet (*pit)();
};

class PitRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

// Generate with the mutators, then every packet must (a) parse against its
// own model, (b) reserialize to identical bytes, and (c) keep relations and
// fixups verified — the LEGAL property the cracker relies on.
TEST_P(PitRoundTrip, GenerateParseReserialize) {
  const model::DataModelSet set = GetParam().pit();
  ASSERT_FALSE(set.validate().has_value());
  fuzz::ModelInstantiator instantiator;
  Rng rng(1234);
  for (const DataModel& model : set.models()) {
    for (int i = 0; i < 25; ++i) {
      const Bytes wire = instantiator.generate(model, rng);
      auto parsed = parse_packet(model, wire);
      ASSERT_TRUE(parsed.has_value())
          << model.name() << " iteration " << i;
      EXPECT_EQ(parsed->serialize(), wire) << model.name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPits, PitRoundTrip,
    ::testing::Values(RoundTripCase{"modbus", &pits::modbus_pit},
                      RoundTripCase{"iec104", &pits::iec104_pit},
                      RoundTripCase{"cs101", &pits::cs101_pit},
                      RoundTripCase{"iccp", &pits::iccp_pit},
                      RoundTripCase{"dnp3", &pits::dnp3_pit},
                      RoundTripCase{"mms", &pits::mms_pit}),
    [](const ::testing::TestParamInfo<RoundTripCase>& info) {
      return info.param.pit_name;
    });

}  // namespace
}  // namespace icsfuzz::model
