// Behavioural tests for the lib60870 CS101/CS104 stack, including the three
// injected Table-I SEGV vulnerabilities (getCOT OOB, sequence-element OOB,
// CP56Time2a OOB).
#include <gtest/gtest.h>

#include "protocols/lib60870/cs101_server.hpp"
#include "test_support.hpp"

namespace icsfuzz::proto {
namespace {

using test::run_armed;

const Bytes kStartDtAct{0x68, 0x04, 0x07, 0x00, 0x00, 0x00};

Bytes i_frame(Bytes asdu) {
  ByteWriter writer;
  writer.write_u8(0x68);
  writer.write_u8(static_cast<std::uint8_t>(4 + asdu.size()));
  writer.write_u32(0, Endian::Little);  // control octets
  writer.write_bytes(asdu);
  return writer.take();
}

Bytes session(std::initializer_list<Bytes> frames) {
  Bytes out;
  for (const Bytes& frame : frames) append(out, frame);
  return out;
}

TEST(Cs101, StartDtConfirmed) {
  Cs101Server server;
  const auto run = run_armed(server, kStartDtAct);
  ASSERT_EQ(run.response.size(), 6u);
  EXPECT_EQ(run.response[2], 0x0B);
}

TEST(Cs101, IFrameBeforeStartDropped) {
  Cs101Server server;
  const Bytes interro{100, 1, 6, 0, 3, 0, 0, 0, 0, 20};
  EXPECT_TRUE(run_armed(server, i_frame(interro)).response.empty());
}

TEST(Cs101, InterrogationRespondsWithPointAndConfirm) {
  Cs101Server server;
  const Bytes interro{100, 1, 6, 0, 3, 0, 0, 0, 0, 20};
  const auto run = run_armed(server, session({kStartDtAct, i_frame(interro)}));
  ASSERT_FALSE(run.crashed());
  EXPECT_GT(run.response.size(), 6u);
  EXPECT_EQ(server.commands_executed(), 1u);
}

TEST(Cs101, WrongCommonAddressDropped) {
  Cs101Server server;
  const Bytes interro{100, 1, 6, 0, 9, 0, 0, 0, 0, 20};
  const auto run = run_armed(server, session({kStartDtAct, i_frame(interro)}));
  EXPECT_EQ(run.response.size(), 6u);
}

TEST(Cs101, SingleCommandSelectThenExecute) {
  Cs101Server server;
  const Bytes select{45, 1, 6, 0, 3, 0, 0x00, 0x20, 0x00, 0x81};
  const Bytes execute{45, 1, 6, 0, 3, 0, 0x00, 0x20, 0x00, 0x01};
  const auto run = run_armed(
      server, session({kStartDtAct, i_frame(select), i_frame(execute)}));
  ASSERT_FALSE(run.crashed());
  EXPECT_GT(run.response.size(), 12u);  // both phases confirmed
  EXPECT_EQ(server.commands_executed(), 2u);
}

TEST(Cs101, ExecuteWithoutSelectRefused) {
  Cs101Server server;
  const Bytes execute{45, 1, 6, 0, 3, 0, 0x00, 0x20, 0x00, 0x01};
  const auto run =
      run_armed(server, session({kStartDtAct, i_frame(execute)}));
  ASSERT_FALSE(run.crashed());
  EXPECT_EQ(run.response.size(), 6u);
}

TEST(Cs101, ExecuteOnDifferentIoaAborts) {
  Cs101Server server;
  const Bytes select{45, 1, 6, 0, 3, 0, 0x00, 0x20, 0x00, 0x81};
  const Bytes execute{45, 1, 6, 0, 3, 0, 0x02, 0x20, 0x00, 0x01};
  const auto run = run_armed(
      server, session({kStartDtAct, i_frame(select), i_frame(execute)}));
  ASSERT_FALSE(run.crashed());
  EXPECT_EQ(server.commands_executed(), 1u);  // only the select confirmed
}

TEST(Cs101, SingleCommandUnknownIoaRefused) {
  Cs101Server server;
  const Bytes command{45, 1, 6, 0, 3, 0, 0x00, 0x90, 0x00, 0x01};
  const auto run = run_armed(server, session({kStartDtAct, i_frame(command)}));
  EXPECT_EQ(run.response.size(), 6u);
}

TEST(Cs101, NonSequenceMeasurandsParseSafely) {
  Cs101Server server;
  // SQ=0, two objects, each IOA(3) + value(2) + QDS(1).
  const Bytes asdu{11,   2,    6,    0,    3,    0,     // header
                   0x01, 0x00, 0x00, 0x10, 0x00, 0x00,  // object 1
                   0x02, 0x00, 0x00, 0x20, 0x00, 0x00};
  const auto run = run_armed(server, session({kStartDtAct, i_frame(asdu)}));
  EXPECT_FALSE(run.crashed());
  EXPECT_GT(run.response.size(), 6u);
}

TEST(Cs101, NonSequenceTruncatedObjectsRejectedCleanly) {
  Cs101Server server;
  const Bytes asdu{11, 3, 6, 0, 3, 0, 0x01, 0x00, 0x00, 0x10, 0x00, 0x00};
  const auto run = run_armed(server, session({kStartDtAct, i_frame(asdu)}));
  EXPECT_FALSE(run.crashed());  // the SQ=0 walk is bounds-checked
  EXPECT_EQ(run.response.size(), 6u);
}

// ------------------------------------------------- Injected vulnerabilities

TEST(Cs101Bug, GetCotOnTruncatedAsduIsSegv) {
  // The paper's Listing 1/2: an ASDU holding only type id + VSQ makes
  // CS101_ASDU_getCOT read past the buffer.
  Cs101Server server;
  const Bytes truncated{100, 1};  // 2-byte ASDU, no COT octet
  const auto run =
      run_armed(server, session({kStartDtAct, i_frame(truncated)}));
  ASSERT_TRUE(run.crashed());
  EXPECT_TRUE(run.crashed_with(san::FaultKind::Segv));
  EXPECT_NE(run.faults[0].detail.find("CS101_ASDU_getCOT"),
            std::string::npos);
}

TEST(Cs101Bug, GetCotWithThreeBytesIsClean) {
  Cs101Server server;
  const Bytes minimal{100, 1, 6};  // COT present; header then too short
  const auto run = run_armed(server, session({kStartDtAct, i_frame(minimal)}));
  EXPECT_FALSE(run.crashed());
}

TEST(Cs101Bug, SequenceCountBeyondPayloadIsSegv) {
  Cs101Server server;
  // SQ=1, count=10 but only one 3-byte element follows the IOA.
  const Bytes asdu{11,   0x8A, 6,    0,    3,   0,
                   0x01, 0x00, 0x00,              // IOA
                   0x10, 0x00, 0x00};             // single element
  const auto run = run_armed(server, session({kStartDtAct, i_frame(asdu)}));
  ASSERT_TRUE(run.crashed());
  EXPECT_TRUE(run.crashed_with(san::FaultKind::Segv));
}

TEST(Cs101Bug, SequenceCountMatchingPayloadIsClean) {
  Cs101Server server;
  const Bytes asdu{11,   0x82, 6,    0,    3,    0,
                   0x01, 0x00, 0x00,                          // IOA
                   0x10, 0x00, 0x00, 0x20, 0x00, 0x00};       // two elements
  const auto run = run_armed(server, session({kStartDtAct, i_frame(asdu)}));
  EXPECT_FALSE(run.crashed());
  EXPECT_GT(run.response.size(), 6u);
}

TEST(Cs101Bug, TimeTaggedCommandWithoutTimestampIsSegv) {
  Cs101Server server;
  // C_SC_TA_1 with valid IOA/SCO but no CP56Time2a tail.
  const Bytes asdu{58, 1, 6, 0, 3, 0, 0x00, 0x20, 0x00, 0x01};
  const auto run = run_armed(server, session({kStartDtAct, i_frame(asdu)}));
  ASSERT_TRUE(run.crashed());
  EXPECT_TRUE(run.crashed_with(san::FaultKind::Segv));
}

TEST(Cs101Bug, TimeTaggedCommandWithFullTimestampIsClean) {
  Cs101Server server;
  // Select variant (0x81) so the command also passes the operate latch.
  Bytes asdu{58, 1, 6, 0, 3, 0, 0x00, 0x20, 0x00, 0x81};
  const Bytes time{0x00, 0x00, 0x1E, 0x0A, 0x0C, 0x06, 0x18};
  append(asdu, time);
  const auto run = run_armed(server, session({kStartDtAct, i_frame(asdu)}));
  EXPECT_FALSE(run.crashed());
  EXPECT_GT(run.response.size(), 6u);
}

TEST(Cs101Bug, AllThreeSitesAreDistinct) {
  Cs101Server server;
  auto site_of = [&server](Bytes asdu) {
    const auto run = run_armed(
        server, session({kStartDtAct, i_frame(std::move(asdu))}));
    return run.faults.empty() ? 0u : run.faults[0].site;
  };
  const std::uint32_t getcot = site_of({100, 1});
  const std::uint32_t seq = site_of({11, 0x8A, 6, 0, 3, 0, 1, 0, 0});
  const std::uint32_t time = site_of({58, 1, 6, 0, 3, 0, 0x00, 0x20, 0x00, 1});
  EXPECT_NE(getcot, 0u);
  EXPECT_NE(seq, 0u);
  EXPECT_NE(time, 0u);
  EXPECT_NE(getcot, seq);
  EXPECT_NE(getcot, time);
  EXPECT_NE(seq, time);
}

TEST(Cs101, FaultEndsStreamProcessing) {
  Cs101Server server;
  // Crash frame followed by a valid interrogation: the "process died"
  // semantics must stop the drain at the fault.
  const Bytes interro{100, 1, 6, 0, 3, 0, 0, 0, 0, 20};
  const auto run = run_armed(
      server, session({kStartDtAct, i_frame(Bytes{100, 1}), i_frame(interro)}));
  ASSERT_TRUE(run.crashed());
  EXPECT_EQ(run.response.size(), 6u);  // nothing after the STARTDT con
}

}  // namespace
}  // namespace icsfuzz::proto
