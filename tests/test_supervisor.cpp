// CampaignSupervisor + resilience-layer coverage (src/supervise/): the
// worker watchdog unwedging a hung fork server, graceful stop/resume
// through the checkpoint, the resource jail's kOom classification, the
// retry policy's crash-loop breaker, and shm hygiene after a SIGKILLed
// campaign (sweep_orphans / unlink_all_registered).
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec_oop/oop_executor.hpp"
#include "exec_oop/shm_segment.hpp"
#include "fuzzer/fuzzer.hpp"
#include "parallel/parallel_campaign.hpp"
#include "pits/pits.hpp"
#include "protocols/modbus/modbus_server.hpp"
#include "protocols/target_registry.hpp"
#include "sanitizer/fault.hpp"
#include "supervise/supervisor.hpp"
#include "telemetry/telemetry.hpp"
#include "tests/test_support.hpp"

namespace icsfuzz {
namespace {

namespace fs = std::filesystem;

using test::ScopedEnv;
using test::shim_cmd;

class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& stem) {
    path_ = fs::temp_directory_path() /
            (stem + "-" + std::to_string(::getpid()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScopedTempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

bool has_fault_site(const fuzz::ExecResult& result, std::uint32_t site) {
  for (const san::FaultReport& fault : result.faults) {
    if (fault.site == site) return true;
  }
  return false;
}

const Bytes kPacket = {0x00, 0x01, 0x00, 0x00, 0x00, 0x06,
                       0x01, 0x03, 0x00, 0x00, 0x00, 0x0A};

const fuzz::BackendKind kOopKinds[] = {fuzz::BackendKind::kForkPerExec,
                                       fuzz::BackendKind::kPersistent};

fuzz::FuzzerConfig small_config(std::uint64_t seed) {
  fuzz::FuzzerConfig config;
  config.rng_seed = seed;
  config.stats_interval = 200;
  return config;
}

fuzz::TargetFactory modbus_factory() {
  return [] { return std::make_unique<proto::ModbusServer>(); };
}

// --------------------------------------------------------- crash-loop breaker

TEST(RetryPolicy, CrashLoopBudgetFailsFastInsteadOfRespawningForever) {
  // The server handshakes, then dies before serving its first execution —
  // every respawn is doomed. With a finite budget the executor must stop
  // forking it and fail fast.
  ScopedEnv knob("ICSFUZZ_SHIM_SERVER_EXIT_AT", "1");
  oop::OopExecutorConfig config;
  config.target_cmd = shim_cmd();
  config.retry.max_respawns = 2;
  oop::OutOfProcessExecutor executor(config);

  for (int i = 0; i < 4; ++i) {
    const oop::OutOfProcessExecutor::Outcome& outcome = executor.run(kPacket);
    EXPECT_EQ(outcome.status, oop::ExecStatus::kServerLost) << "run " << i;
  }
  EXPECT_EQ(executor.server_restarts(), 2u)
      << "respawns must stop at the configured budget";
  EXPECT_NE(executor.last_error().find("crash-loop"), std::string::npos)
      << "last_error: " << executor.last_error();
  EXPECT_FALSE(executor.server_running());
}

TEST(RetryPolicy, DefaultsKeepUnlimitedRespawns) {
  const oop::RetryPolicy defaults;
  EXPECT_EQ(defaults.max_retries, 1);
  EXPECT_LT(defaults.max_respawns, 0);  // negative = unlimited (historical)
  EXPECT_EQ(defaults.backoff_initial_ms, 0u);
}

// ------------------------------------------------------------- resource jail

TEST(ResourceJail, AllocationFailureClassifiedAsOomNotCrash) {
  for (const fuzz::BackendKind kind : kOopKinds) {
    SCOPED_TRACE(std::string("backend ") + std::string(fuzz::to_string(kind)));
    ScopedEnv knob("ICSFUZZ_SHIM_OOM_AT", "2");
    const std::unique_ptr<ProtocolTarget> placeholder =
        proto::target_factory("libmodbus")();

    telem::Telemetry hub;
    fuzz::ExecutorConfig config;
    config.backend.kind = kind;
    config.backend.target_cmd = shim_cmd();
    config.backend.jail.address_space_mb = 512;
    config.telemetry = telem::Sink(&hub, 0);
    fuzz::Executor executor(config);

    for (int i = 1; i <= 3; ++i) {
      const fuzz::ExecResult result = executor.run(*placeholder, kPacket);
      if (i == 2) {
        // The jailed child exhausted RLIMIT_AS: a distinct OOM bucket, not
        // a memory-safety crash site.
        EXPECT_TRUE(result.crashed()) << "execution " << i;
        EXPECT_TRUE(has_fault_site(result, san::site_id("oop-child-oom")))
            << "execution " << i;
      } else {
        EXPECT_FALSE(result.crashed()) << "execution " << i;
      }
    }
    ASSERT_NE(executor.oop_backend(), nullptr);
    EXPECT_EQ(executor.oop_backend()->oom_kills(), 1u);
    EXPECT_EQ(executor.oop_backend()->server_restarts(), 0u)
        << "an OOM'd child must not cost a server respawn";
    EXPECT_EQ(hub.snapshot().counter(telem::Counter::kOopOomKills), 1u);
  }
}

// ----------------------------------------------------------------- watchdog

TEST(Supervisor, WatchdogUnwedgesHungForkServer) {
  // The shim's 5th execution hangs forever and the wall-clock deadline is
  // disabled — exactly the wedge only the supervisor's out-of-band
  // watchdog can break. Killing the server unblocks the worker through
  // the server-lost respawn path and the campaign still completes.
  ScopedEnv knob("ICSFUZZ_SHIM_HANG_AT", "5");
  const model::DataModelSet models = pits::modbus_pit();
  telem::Telemetry hub;

  supervise::SupervisorConfig config;
  config.campaign.workers = 1;
  config.campaign.iterations_per_worker = 12;
  config.campaign.base_seed = 5;
  config.campaign.sync_interval = 0;
  config.campaign.fuzzer = small_config(0);
  config.campaign.fuzzer.telemetry = telem::Sink(&hub, 0);
  config.campaign.fuzzer.executor.backend.kind =
      fuzz::BackendKind::kForkPerExec;
  config.campaign.fuzzer.executor.backend.target_cmd = shim_cmd();
  config.campaign.fuzzer.executor.backend.exec_timeout_ms = 0;  // no deadline
  config.checkpoint_interval = 0;  // single chunk
  config.wedge_timeout_ms = 250;
  config.watchdog_poll_ms = 50;
  config.max_watchdog_kicks = 8;

  supervise::CampaignSupervisor supervisor(modbus_factory(), models, config);
  const supervise::SupervisorResult result = supervisor.run();

  EXPECT_FALSE(result.interrupted);
  EXPECT_EQ(result.completed_iterations, 12u);
  EXPECT_GE(result.watchdog_kicks, 1u);
  ASSERT_EQ(result.campaign.workers.size(), 1u);
  EXPECT_EQ(result.campaign.workers[0].executions, 12u);
  EXPECT_GE(hub.snapshot().counter(telem::Counter::kWatchdogKicks), 1u);
}

// ------------------------------------------------------- supervised campaigns

TEST(Supervisor, MultiWorkerCampaignCompletesWithPeriodicCheckpoints) {
  const model::DataModelSet models = pits::modbus_pit();
  const ScopedTempDir dir("icsfuzz-supervisor-w2");

  supervise::SupervisorConfig config;
  config.campaign.workers = 2;
  config.campaign.iterations_per_worker = 600;
  config.campaign.base_seed = 11;
  config.campaign.sync_interval = 200;
  config.campaign.fuzzer = small_config(0);
  config.checkpoint_path = (dir.path() / "campaign.ckpt").string();
  config.checkpoint_interval = 250;  // chunks of 250/250/100

  supervise::CampaignSupervisor supervisor(modbus_factory(), models, config);
  const supervise::SupervisorResult result = supervisor.run();

  EXPECT_FALSE(result.interrupted);
  EXPECT_FALSE(result.resumed);
  EXPECT_EQ(result.completed_iterations, 600u);
  EXPECT_EQ(result.checkpoints_saved, 3u);
  EXPECT_EQ(result.watchdog_kicks, 0u);
  ASSERT_EQ(result.campaign.workers.size(), 2u);
  EXPECT_EQ(result.campaign.total_executions, 1200u);
  for (const par::WorkerReport& report : result.campaign.workers) {
    EXPECT_EQ(report.executions, 600u);
    EXPECT_GT(report.paths, 0u);
  }
  // Deduplicated global coverage bounded by the per-worker tallies.
  std::size_t max_paths = 0;
  std::size_t sum_paths = 0;
  for (const par::WorkerReport& report : result.campaign.workers) {
    max_paths = std::max(max_paths, report.paths);
    sum_paths += report.paths;
  }
  EXPECT_GE(result.campaign.global_paths, max_paths);
  EXPECT_LE(result.campaign.global_paths, sum_paths);
  EXPECT_TRUE(fs::exists(config.checkpoint_path));
}

TEST(Supervisor, GracefulStopCheckpointsAndResumeFinishesBitForBit) {
  const model::DataModelSet models = pits::modbus_pit();
  const ScopedTempDir dir("icsfuzz-supervisor-stop");
  const std::string checkpoint_path = (dir.path() / "campaign.ckpt").string();
  supervise::CampaignSupervisor::clear_stop();

  supervise::SupervisorConfig config;
  config.campaign.workers = 1;
  config.campaign.iterations_per_worker = 20000;
  config.campaign.base_seed = 321;
  config.campaign.sync_interval = 512;
  config.campaign.fuzzer = small_config(0);
  config.checkpoint_path = checkpoint_path;
  config.checkpoint_interval = 128;

  // The stand-in for Ctrl-C: request the stop (from another thread, as a
  // signal handler effectively does) once the first checkpoint landed.
  std::thread interrupter([&] {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (!fs::exists(checkpoint_path) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    supervise::CampaignSupervisor::request_stop();
  });
  supervise::CampaignSupervisor supervisor(modbus_factory(), models, config);
  const supervise::SupervisorResult stopped = supervisor.run();
  interrupter.join();

  ASSERT_TRUE(stopped.interrupted);
  EXPECT_GT(stopped.completed_iterations, 0u);
  EXPECT_LT(stopped.completed_iterations, 20000u);
  EXPECT_EQ(stopped.completed_iterations % 128, 0u)
      << "stop lands on a chunk boundary";
  EXPECT_GE(stopped.checkpoints_saved, 1u);
  // Partial tallies reflect the work actually done.
  ASSERT_EQ(stopped.campaign.workers.size(), 1u);
  EXPECT_EQ(stopped.campaign.workers[0].executions,
            stopped.completed_iterations);

  // Resume to completion and demand equality with a never-stopped run.
  supervise::CampaignSupervisor::clear_stop();
  supervise::CampaignSupervisor resumer(modbus_factory(), models, config);
  const supervise::SupervisorResult resumed = resumer.run();
  EXPECT_TRUE(resumed.resumed);
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.completed_iterations, 20000u);

  par::ParallelCampaign reference_campaign(modbus_factory(), models,
                                           config.campaign);
  const par::ParallelCampaignResult reference = reference_campaign.run();
  const par::WorkerReport& actual = resumed.campaign.workers[0];
  const par::WorkerReport& expected = reference.workers[0];
  EXPECT_EQ(actual.executions, expected.executions);
  EXPECT_EQ(actual.paths, expected.paths);
  EXPECT_EQ(actual.edges, expected.edges);
  EXPECT_EQ(actual.unique_crashes, expected.unique_crashes);
  EXPECT_EQ(actual.corpus_size, expected.corpus_size);
  EXPECT_EQ(actual.retained_seeds, expected.retained_seeds);
  EXPECT_EQ(resumed.campaign.pooled_crashes.unique_count(),
            reference.pooled_crashes.unique_count());
}

// -------------------------------------------------------------- shm hygiene

TEST(ShmHygiene, SweepOrphansReclaimsSegmentsOfKilledProcess) {
  // Probe: the named shm namespace may be unavailable (sandboxed CI).
  {
    oop::ShmSegment probe = oop::ShmSegment::create(4096);
    if (!probe.named()) GTEST_SKIP() << "POSIX shm namespace unavailable";
  }

  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ::close(fds[0]);
    // Leak two live segments on purpose, then wait to be SIGKILLed — the
    // destructor-based unlink never runs, exactly like a killed campaign.
    std::vector<oop::ShmSegment> leaked;
    leaked.push_back(oop::ShmSegment::create(1 << 16));
    leaked.push_back(oop::ShmSegment::create(1 << 16));
    const char ready = leaked[0].named() && leaked[1].named() ? 'R' : 'F';
    (void)!::write(fds[1], &ready, 1);
    for (;;) ::pause();
  }
  ::close(fds[1]);
  char ready = 0;
  ASSERT_EQ(::read(fds[0], &ready, 1), 1);
  ::close(fds[0]);
  ASSERT_EQ(ready, 'R');

  const std::string prefix = "icsfuzz-" + std::to_string(child) + "-";
  std::size_t before = 0;
  for (const auto& entry : fs::directory_iterator("/dev/shm")) {
    if (entry.path().filename().string().rfind(prefix, 0) == 0) ++before;
  }
  ASSERT_EQ(before, 2u) << "child segments must be visible pre-kill";

  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);

  EXPECT_GE(oop::sweep_orphans(), 2u);
  std::size_t after = 0;
  for (const auto& entry : fs::directory_iterator("/dev/shm")) {
    if (entry.path().filename().string().rfind(prefix, 0) == 0) ++after;
  }
  EXPECT_EQ(after, 0u) << "no residue of the killed process may remain";
}

TEST(ShmHygiene, UnlinkAllRegisteredKeepsLiveMappingsUsable) {
  oop::ShmSegment segment = oop::ShmSegment::create(4096);
  if (!segment.named()) GTEST_SKIP() << "POSIX shm namespace unavailable";
  const std::string entry_name = segment.name().substr(1);  // drop '/'
  ASSERT_TRUE(fs::exists(fs::path("/dev/shm") / entry_name));

  EXPECT_GE(oop::unlink_all_registered(), 1u);
  EXPECT_FALSE(fs::exists(fs::path("/dev/shm") / entry_name));
  EXPECT_EQ(oop::unlink_all_registered(), 0u);  // registry drained

  // POSIX unlink-vs-mapping semantics: the pages stay fully usable.
  segment.data()[0] = 0x42;
  segment.data()[4095] = 0x24;
  EXPECT_EQ(segment.data()[0], 0x42);
  EXPECT_EQ(segment.data()[4095], 0x24);
}

}  // namespace
}  // namespace icsfuzz
