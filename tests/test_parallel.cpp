// Tests for the parallel campaign subsystem (src/parallel/) and the merge
// primitives it builds on: coverage-map merge algebra, path-set folding,
// corpus synchronization, the sharded seed exchange, and — the load-bearing
// property — W=1 reproducing the sequential engine bit-for-bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "coverage/coverage_map.hpp"
#include "coverage/instrument.hpp"
#include "coverage/path_tracker.hpp"
#include "fuzzer/campaign.hpp"
#include "fuzzer/fuzzer.hpp"
#include "model/instantiation.hpp"
#include "parallel/parallel_campaign.hpp"
#include "parallel/seed_exchange.hpp"
#include "parallel/worker.hpp"
#include "pits/pits.hpp"
#include "protocols/modbus/modbus_server.hpp"

namespace icsfuzz {
namespace {

using cov::CoverageMap;
using cov::PathTracker;
using fuzz::Fuzzer;
using fuzz::FuzzerConfig;
using fuzz::PuzzleCorpus;
using par::ExchangeSeed;
using par::SeedExchange;

void run_blocks(CoverageMap& map, std::initializer_list<std::uint32_t> blocks) {
  map.begin_execution();
  for (std::uint32_t block : blocks) cov::hit(block);
  map.end_execution();
  map.accumulate();
}

bool accumulated_equal(const CoverageMap& a, const CoverageMap& b) {
  return std::equal(a.accumulated(), a.accumulated() + cov::kMapSize,
                    b.accumulated());
}

// ----------------------------------------------------------- CoverageMap merge

TEST(CoverageMerge, MergeAddsOtherMapsBits) {
  CoverageMap a;
  CoverageMap b;
  run_blocks(a, {10, 20});
  run_blocks(b, {30, 40});
  EXPECT_TRUE(a.merge(b));
  EXPECT_EQ(a.edges_covered(), 4u);
}

TEST(CoverageMerge, MergeIsIdempotent) {
  CoverageMap a;
  CoverageMap b;
  run_blocks(a, {10, 20});
  run_blocks(b, {30, 40});
  EXPECT_TRUE(a.merge(b));
  const std::size_t after_first = a.edges_covered();
  EXPECT_FALSE(a.merge(b));  // second merge adds nothing
  EXPECT_EQ(a.edges_covered(), after_first);
  EXPECT_FALSE(a.merge(a));  // self-merge adds nothing
}

TEST(CoverageMerge, MergeIsCommutative) {
  CoverageMap ab_left;
  CoverageMap ab_right;
  CoverageMap other_a;
  CoverageMap other_b;
  run_blocks(ab_left, {10, 20, 30});
  run_blocks(other_b, {40, 50});
  run_blocks(ab_right, {40, 50});
  run_blocks(other_a, {10, 20, 30});
  ab_left.merge(other_b);   // A ∪ B
  ab_right.merge(other_a);  // B ∪ A
  EXPECT_TRUE(accumulated_equal(ab_left, ab_right));
}

TEST(CoverageMerge, SnapshotRoundTripsThroughMergeAccumulated) {
  CoverageMap source;
  run_blocks(source, {7, 8, 9});
  const std::vector<std::uint8_t> snapshot = source.snapshot_accumulated();
  ASSERT_EQ(snapshot.size(), cov::kMapSize);

  CoverageMap sink;
  EXPECT_TRUE(sink.merge_accumulated(snapshot.data()));
  EXPECT_TRUE(accumulated_equal(source, sink));
  EXPECT_FALSE(sink.merge_accumulated(snapshot.data()));  // idempotent
}

TEST(CoverageMerge, MergeDoesNotTouchTraceBuffer) {
  CoverageMap a;
  CoverageMap b;
  run_blocks(a, {1, 2});
  run_blocks(b, {3, 4});
  const std::uint64_t hash_before = a.trace_hash();
  a.merge(b);
  EXPECT_EQ(a.trace_hash(), hash_before);
}

// ----------------------------------------------------------- PathTracker merge

TEST(PathTrackerMerge, MergeCountsOnlyNewPaths) {
  PathTracker a;
  PathTracker b;
  a.record(1);
  a.record(2);
  b.record(2);
  b.record(3);
  EXPECT_EQ(a.merge(b), 1u);  // only 3 is new
  EXPECT_EQ(a.path_count(), 3u);
  EXPECT_EQ(a.merge(b), 0u);  // idempotent
}

TEST(PathTrackerMerge, SnapshotHoldsAllPaths) {
  PathTracker tracker;
  tracker.record(10);
  tracker.record(20);
  std::vector<std::uint64_t> snapshot = tracker.snapshot();
  std::sort(snapshot.begin(), snapshot.end());
  EXPECT_EQ(snapshot, (std::vector<std::uint64_t>{10, 20}));
}

TEST(PathTrackerMerge, MergeIsCommutativeOnCounts) {
  PathTracker a;
  PathTracker b;
  a.record(1);
  a.record(2);
  b.record(2);
  b.record(3);
  PathTracker a2 = a;
  PathTracker b2 = b;
  a.merge(b);
  b2.merge(a2);
  EXPECT_EQ(a.path_count(), b2.path_count());
}

// ------------------------------------------------------- PuzzleCorpus::merge_from

model::NumberSpec u16() {
  model::NumberSpec spec;
  spec.width = 2;
  return spec;
}

TEST(CorpusMerge, MergeTransfersBothTiers) {
  PuzzleCorpus a;
  PuzzleCorpus b;
  Rng rng(1);
  model::Chunk rule = model::Chunk::number("Addr", u16());
  rule.with_tag("mb-addr");
  b.add(rule, {0x00, 0x42}, rng);

  EXPECT_EQ(a.merge_from(b, rng), 1u);
  ASSERT_NE(a.exact_candidates(rule), nullptr);
  EXPECT_EQ((*a.exact_candidates(rule))[0], (Bytes{0x00, 0x42}));

  // Shape tier transferred too: a same-shape, different-tag consumer hits.
  model::Chunk other = model::Chunk::number("Other", u16());
  other.with_tag("unrelated");
  ASSERT_NE(a.similar_candidates(other), nullptr);
}

TEST(CorpusMerge, MergeDeduplicatesAndIsIdempotent) {
  PuzzleCorpus a;
  PuzzleCorpus b;
  Rng rng(2);
  model::Chunk rule = model::Chunk::number("Addr", u16());
  a.add(rule, {1, 2}, rng);
  b.add(rule, {1, 2}, rng);  // same puzzle on both sides
  b.add(rule, {3, 4}, rng);

  EXPECT_EQ(a.merge_from(b, rng), 1u);  // only {3,4} is new
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.merge_from(b, rng), 0u);  // idempotent
  EXPECT_EQ(a.merge_from(a, rng), 0u);  // self-merge is a no-op
}

TEST(CorpusMerge, MergeRespectsPerRuleCap) {
  fuzz::CorpusConfig small;
  small.per_rule_cap = 4;
  PuzzleCorpus a(small);
  PuzzleCorpus b;
  Rng rng(3);
  model::Chunk rule = model::Chunk::number("Addr", u16());
  for (std::uint8_t i = 0; i < 16; ++i) b.add(rule, {i, i}, rng);

  a.merge_from(b, rng);
  EXPECT_EQ(a.exact_candidates(rule)->size(), 4u);
}

// --------------------------------------------------------------- SeedExchange

TEST(SeedExchange, PublishDeduplicatesContent) {
  SeedExchange exchange;
  EXPECT_TRUE(exchange.publish(0, {1, 2, 3}, "m", 10));
  EXPECT_FALSE(exchange.publish(1, {1, 2, 3}, "m", 20));  // same payload
  EXPECT_TRUE(exchange.publish(1, {1, 2, 4}, "m", 21));
  EXPECT_EQ(exchange.published_count(), 2u);
}

TEST(SeedExchange, PullSkipsOwnSeedsAndAdvancesCursor) {
  SeedExchange exchange;
  exchange.publish(0, {1}, "a", 1);
  exchange.publish(1, {2}, "b", 2);
  exchange.publish(2, {3}, "c", 3);

  SeedExchange::Cursor cursor;
  std::vector<ExchangeSeed> pulled;
  EXPECT_EQ(exchange.pull(1, cursor, pulled), 2u);  // skips own {2}
  for (const ExchangeSeed& seed : pulled) {
    EXPECT_NE(seed.origin_worker, 1u);
  }

  // Nothing new: the cursor saw everything.
  pulled.clear();
  EXPECT_EQ(exchange.pull(1, cursor, pulled), 0u);

  // New publications show up on the next pull only.
  exchange.publish(0, {4}, "d", 4);
  EXPECT_EQ(exchange.pull(1, cursor, pulled), 1u);
  EXPECT_EQ(pulled[0].bytes, (Bytes{4}));
}

TEST(SeedExchange, CoverageMergesGlobally) {
  SeedExchange exchange;
  CoverageMap a;
  CoverageMap b;
  PathTracker pa;
  PathTracker pb;
  run_blocks(a, {10, 20});
  run_blocks(b, {20, 30});
  pa.record(111);
  pb.record(111);
  pb.record(222);

  exchange.merge_coverage(a, pa);
  exchange.merge_coverage(b, pb);
  EXPECT_EQ(exchange.global_paths(), 2u);
  EXPECT_GE(exchange.global_edges(), 3u);

  // Re-merging is idempotent.
  exchange.merge_coverage(a, pa);
  EXPECT_EQ(exchange.global_paths(), 2u);
}

TEST(SeedExchange, PuzzlePoolRoundTrips) {
  SeedExchange exchange;
  PuzzleCorpus source;
  PuzzleCorpus sink;
  Rng rng(7);
  model::Chunk rule = model::Chunk::number("Addr", u16());
  source.add(rule, {0xAA, 0xBB}, rng);

  exchange.publish_puzzles(source);
  EXPECT_EQ(exchange.import_puzzles(sink, rng), 1u);
  ASSERT_NE(sink.exact_candidates(rule), nullptr);
  EXPECT_EQ(exchange.import_puzzles(sink, rng), 0u);  // idempotent
}

TEST(SeedExchange, ConcurrentPublishersDeduplicateExactlyOnce) {
  SeedExchange exchange;
  constexpr int kThreads = 4;
  constexpr std::uint8_t kSeeds = 32;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&exchange, t] {
      // All threads publish the same 32 payloads.
      for (std::uint8_t i = 0; i < kSeeds; ++i) {
        exchange.publish(static_cast<std::size_t>(t), {i, 0x5A}, "m", i);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(exchange.published_count(), static_cast<std::size_t>(kSeeds));
}

// ----------------------------------------------------------- W=1 determinism

fuzz::FuzzerConfig small_config(std::uint64_t seed) {
  FuzzerConfig config;
  config.rng_seed = seed;
  config.stats_interval = 200;
  return config;
}

TEST(ParallelDeterminism, SoloWorkerReproducesSequentialFuzzerBitForBit) {
  const model::DataModelSet models = pits::modbus_pit();
  constexpr std::uint64_t kIterations = 2000;
  constexpr std::uint64_t kSeed = 1234;

  // Sequential reference run.
  proto::ModbusServer sequential_target;
  Fuzzer sequential(sequential_target, models, small_config(kSeed));
  sequential.run(kIterations);

  // One parallel worker, syncing every 256 executions with no peers.
  SeedExchange exchange;
  par::WorkerConfig worker_config;
  worker_config.id = 0;
  worker_config.worker_count = 1;
  worker_config.sync_interval = 256;
  worker_config.fuzzer = small_config(par::worker_seed(kSeed, 0));
  par::Worker worker(worker_config, std::make_unique<proto::ModbusServer>(),
                     models, exchange);
  worker.run(kIterations);
  const Fuzzer& parallel = worker.fuzzer();

  // worker_seed(s, 0) == s by construction.
  EXPECT_EQ(par::worker_seed(kSeed, 0), kSeed);

  // Identical campaign outcome, not merely similar.
  EXPECT_EQ(parallel.path_count(), sequential.path_count());
  EXPECT_EQ(parallel.executor().edge_count(), sequential.executor().edge_count());
  EXPECT_EQ(parallel.executor().executions(), sequential.executor().executions());
  EXPECT_EQ(parallel.crashes().unique_count(), sequential.crashes().unique_count());
  EXPECT_EQ(parallel.corpus().size(), sequential.corpus().size());
  ASSERT_EQ(parallel.retained_seeds().size(), sequential.retained_seeds().size());
  for (std::size_t i = 0; i < parallel.retained_seeds().size(); ++i) {
    EXPECT_EQ(parallel.retained_seeds()[i].bytes,
              sequential.retained_seeds()[i].bytes);
  }
  ASSERT_EQ(parallel.stats().checkpoints().size(),
            sequential.stats().checkpoints().size());
  for (std::size_t i = 0; i < parallel.stats().checkpoints().size(); ++i) {
    EXPECT_EQ(parallel.stats().checkpoints()[i].paths,
              sequential.stats().checkpoints()[i].paths);
  }

  // The exchange carried the solo worker's numbers.
  EXPECT_EQ(exchange.global_paths(), sequential.path_count());
}

TEST(ParallelDeterminism, ParallelCampaignW1MatchesSequential) {
  const model::DataModelSet models = pits::modbus_pit();
  proto::ModbusServer sequential_target;
  Fuzzer sequential(sequential_target, models, small_config(77));
  sequential.run(1500);

  par::ParallelCampaignConfig config;
  config.workers = 1;
  config.iterations_per_worker = 1500;
  config.base_seed = 77;
  config.sync_interval = 500;
  config.fuzzer = small_config(0);  // rng_seed overridden per worker
  par::ParallelCampaign campaign(
      [] { return std::make_unique<proto::ModbusServer>(); }, models, config);
  const par::ParallelCampaignResult result = campaign.run();

  ASSERT_EQ(result.workers.size(), 1u);
  EXPECT_EQ(result.workers[0].paths, sequential.path_count());
  EXPECT_EQ(result.workers[0].edges, sequential.executor().edge_count());
  EXPECT_EQ(result.global_paths, sequential.path_count());
  EXPECT_EQ(result.global_edges, sequential.executor().edge_count());
  EXPECT_EQ(result.total_executions, sequential.executor().executions());
  EXPECT_EQ(result.pooled_crashes.unique_count(),
            sequential.crashes().unique_count());
}

// --------------------------------------------------------- multi-worker runs

TEST(ParallelCampaign, MultiWorkerRunsAndSyncs) {
  const model::DataModelSet models = pits::modbus_pit();
  par::ParallelCampaignConfig config;
  config.workers = 3;
  config.iterations_per_worker = 800;
  config.base_seed = 9;
  config.sync_interval = 200;
  config.fuzzer = small_config(0);
  par::ParallelCampaign campaign(
      [] { return std::make_unique<proto::ModbusServer>(); }, models, config);
  const par::ParallelCampaignResult result = campaign.run();

  ASSERT_EQ(result.workers.size(), 3u);
  EXPECT_EQ(result.total_executions, 3u * 800u);
  // Global (deduplicated) coverage is at least any single worker's and at
  // most the sum of all workers'.
  std::size_t max_worker_paths = 0;
  std::size_t sum_worker_paths = 0;
  for (const par::WorkerReport& report : result.workers) {
    max_worker_paths = std::max(max_worker_paths, report.paths);
    sum_worker_paths += report.paths;
    EXPECT_EQ(report.executions, 800u);
  }
  EXPECT_GE(result.global_paths, max_worker_paths);
  EXPECT_LE(result.global_paths, sum_worker_paths);
  // Workers published valuable seeds and imported peers' discoveries.
  EXPECT_GT(result.seeds_published, 0u);
  std::uint64_t total_imported = 0;
  for (const par::WorkerReport& report : result.workers) {
    total_imported += report.seeds_imported;
  }
  EXPECT_GT(total_imported, 0u);
}

TEST(ParallelCampaign, DistinctWorkersUseDistinctSeeds) {
  EXPECT_NE(par::worker_seed(1, 0), par::worker_seed(1, 1));
  EXPECT_NE(par::worker_seed(1, 1), par::worker_seed(1, 2));
  EXPECT_EQ(par::worker_seed(42, 0), 42u);
}

// ------------------------------------------- parallel repetition scheduler

TEST(ParallelScheduler, RunCampaignParallelMatchesSequential) {
  const model::DataModelSet models = pits::modbus_pit();
  const fuzz::TargetFactory factory = [] {
    return std::make_unique<proto::ModbusServer>();
  };
  fuzz::CampaignConfig config;
  config.iterations = 400;
  config.repetitions = 3;
  config.base_seed = 500;
  config.stats_interval = 100;

  const fuzz::CampaignResult sequential =
      fuzz::run_campaign("libmodbus", factory, models, config);
  const fuzz::CampaignResult parallel =
      fuzz::run_campaign_parallel("libmodbus", factory, models, config, 4);

  EXPECT_DOUBLE_EQ(parallel.peach.mean_final_paths,
                   sequential.peach.mean_final_paths);
  EXPECT_DOUBLE_EQ(parallel.peach_star.mean_final_paths,
                   sequential.peach_star.mean_final_paths);
  EXPECT_DOUBLE_EQ(parallel.peach_star.mean_final_edges,
                   sequential.peach_star.mean_final_edges);
  EXPECT_EQ(parallel.peach_star.pooled_crashes.unique_count(),
            sequential.peach_star.pooled_crashes.unique_count());
  ASSERT_EQ(parallel.peach_star.mean_series.size(),
            sequential.peach_star.mean_series.size());
  for (std::size_t i = 0; i < parallel.peach_star.mean_series.size(); ++i) {
    EXPECT_EQ(parallel.peach_star.mean_series[i].paths,
              sequential.peach_star.mean_series[i].paths);
  }
  EXPECT_EQ(fuzz::series_csv(parallel), fuzz::series_csv(sequential));
}

// ------------------------------------------------------------- fuzzer hooks

TEST(FuzzerHooks, DrainNewRetainedIsACursor) {
  const model::DataModelSet models = pits::modbus_pit();
  proto::ModbusServer target;
  Fuzzer fuzzer(target, models, small_config(5));
  fuzzer.run(600);

  std::vector<fuzz::RetainedSeed> first = fuzzer.drain_new_retained();
  EXPECT_EQ(first.size(), fuzzer.retained_seeds().size());
  EXPECT_TRUE(fuzzer.drain_new_retained().empty());  // nothing new since
}

TEST(FuzzerHooks, ImportedSeedRunsBeforeGeneration) {
  const model::DataModelSet models = pits::modbus_pit();
  proto::ModbusServer target;
  Fuzzer fuzzer(target, models, small_config(6));

  const Bytes seed = model::default_instance(models.at(0)).serialize();
  fuzzer.import_external_seed(seed);
  EXPECT_EQ(fuzzer.imported_pending(), 1u);
  fuzzer.step();
  EXPECT_EQ(fuzzer.imported_pending(), 0u);
  // The imported packet went through the executor.
  EXPECT_EQ(fuzzer.executor().executions(), 1u);
}

}  // namespace
}  // namespace icsfuzz
