// Fault-injection coverage for the fork-server execution path.
//
// The shim binary honours ICSFUZZ_SHIM_* environment knobs that inject
// deterministic failures (exec_oop/shim_runner.hpp): a child SIGKILLed
// mid-execution, a target that never handshakes, a child hanging into the
// wall-clock deadline, the fork-server process itself dying, an orderly
// server retirement, and a legacy v1 shim. This suite drives each of them
// — plus an shm unlink race and a missing binary — across BOTH
// out-of-process backends (fork-per-exec and persistent) where the fault
// applies, and asserts the executor reports the right status while the
// campaign keeps running (a dying target must never take the fuzzer with
// it).
#include <gtest/gtest.h>

#include <sys/mman.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "exec_oop/oop_executor.hpp"
#include "fuzzer/fuzzer.hpp"
#include "pits/pits.hpp"
#include "protocols/target_registry.hpp"
#include "sanitizer/fault.hpp"
#include "telemetry/telemetry.hpp"
#include "tests/test_support.hpp"

namespace icsfuzz {
namespace {

using test::ScopedEnv;
using test::shim_cmd;

/// ExecutorConfig for the shim under the given out-of-process backend.
fuzz::ExecutorConfig oop_config(
    fuzz::BackendKind kind = fuzz::BackendKind::kForkPerExec) {
  fuzz::ExecutorConfig config;
  config.backend.kind = kind;
  config.backend.target_cmd = shim_cmd();
  return config;
}

/// Both out-of-process backend kinds (the faults below must be survivable
/// whichever transport serves the execution).
const fuzz::BackendKind kOopKinds[] = {fuzz::BackendKind::kForkPerExec,
                                       fuzz::BackendKind::kPersistent};

bool has_fault_site(const fuzz::ExecResult& result, std::uint32_t site) {
  for (const san::FaultReport& fault : result.faults) {
    if (fault.site == site) return true;
  }
  return false;
}

const Bytes kPacket = {0x00, 0x01, 0x00, 0x00, 0x00, 0x06,
                       0x01, 0x03, 0x00, 0x00, 0x00, 0x0A};

TEST(ForkServerFaults, ChildKilledMidExecutionReportsCrashAndRecovers) {
  for (const fuzz::BackendKind kind : kOopKinds) {
    SCOPED_TRACE(std::string("backend ") + std::string(fuzz::to_string(kind)));
    ScopedEnv knob("ICSFUZZ_SHIM_KILL_CHILD_AT", "3");
    const std::unique_ptr<ProtocolTarget> placeholder =
        proto::target_factory("libmodbus")();
    const std::unique_ptr<ProtocolTarget> reference_target =
        proto::target_factory("libmodbus")();

    fuzz::Executor executor(oop_config(kind));
    fuzz::Executor reference;

    for (int i = 1; i <= 5; ++i) {
      const fuzz::ExecResult result = executor.run(*placeholder, kPacket);
      const fuzz::ExecResult expected =
          reference.run(*reference_target, kPacket);
      if (i == 3) {
        // The SIGKILLed child is a crash, attributed to the synthetic
        // child-terminated site, with whatever partial trace it left.
        EXPECT_TRUE(result.crashed()) << "execution " << i;
        EXPECT_TRUE(
            has_fault_site(result, san::site_id("oop-child-terminated")))
            << "execution " << i;
      } else {
        // Every surrounding execution is bit-identical to in-process: the
        // fork server survives its children.
        EXPECT_FALSE(result.crashed()) << "execution " << i;
        EXPECT_EQ(result.trace_hash, expected.trace_hash)
            << "execution " << i;
        EXPECT_EQ(result.events, expected.events) << "execution " << i;
        EXPECT_EQ(result.response, expected.response) << "execution " << i;
      }
    }
    ASSERT_NE(executor.oop_backend(), nullptr);
    EXPECT_EQ(executor.oop_backend()->server_restarts(), 0u)
        << "a child death must not force a server respawn";
    if (kind == fuzz::BackendKind::kPersistent) {
      // The crashed persistent child was recycled; a fresh one served the
      // following executions.
      EXPECT_GE(executor.oop_backend()->child_recycles(), 1u);
    }
  }
}

TEST(ForkServerFaults, TargetThatNeverHandshakesReportsServerLost) {
  ScopedEnv knob("ICSFUZZ_SHIM_NO_HANDSHAKE", "1");
  const std::unique_ptr<ProtocolTarget> placeholder =
      proto::target_factory("libmodbus")();

  fuzz::Executor executor(oop_config());

  // Every run fails fast (the shim exits instead of handshaking — no
  // timeout wait), reports the server-lost site, and leaves the executor
  // usable for the next attempt.
  for (int i = 0; i < 3; ++i) {
    const fuzz::ExecResult result = executor.run(*placeholder, kPacket);
    EXPECT_TRUE(result.crashed()) << "execution " << i;
    EXPECT_TRUE(has_fault_site(result, san::site_id("oop-server-lost")))
        << "execution " << i;
    EXPECT_EQ(result.trace_edges, 0u) << "execution " << i;
    EXPECT_EQ(result.events, 0u) << "execution " << i;
  }
  ASSERT_NE(executor.oop_backend(), nullptr);
  EXPECT_FALSE(executor.oop_backend()->last_error().empty());
  EXPECT_FALSE(executor.oop_backend()->server_running());
}

TEST(ForkServerFaults, MissingBinaryReportsServerLost) {
  const std::unique_ptr<ProtocolTarget> placeholder =
      proto::target_factory("libmodbus")();
  fuzz::ExecutorConfig config;
  config.backend.kind = fuzz::BackendKind::kForkPerExec;
  config.backend.target_cmd = {"/nonexistent/icsfuzz-shim-target"};
  fuzz::Executor executor(config);

  const fuzz::ExecResult result = executor.run(*placeholder, kPacket);
  EXPECT_TRUE(result.crashed());
  EXPECT_TRUE(has_fault_site(result, san::site_id("oop-server-lost")));
  // A server that never came up is not a "restart": the counter separates
  // "server keeps dying" from "server never started".
  ASSERT_NE(executor.oop_backend(), nullptr);
  EXPECT_EQ(executor.oop_backend()->server_restarts(), 0u);
}

TEST(ForkServerFaults, HangHitsTheDeadlineAndTheServerSurvives) {
  for (const fuzz::BackendKind kind : kOopKinds) {
    SCOPED_TRACE(std::string("backend ") + std::string(fuzz::to_string(kind)));
    ScopedEnv knob("ICSFUZZ_SHIM_HANG_AT", "2");
    const std::unique_ptr<ProtocolTarget> placeholder =
        proto::target_factory("libmodbus")();
    const std::unique_ptr<ProtocolTarget> reference_target =
        proto::target_factory("libmodbus")();

    fuzz::ExecutorConfig config = oop_config(kind);
    config.backend.exec_timeout_ms = 200;
    fuzz::Executor executor(config);
    fuzz::Executor reference;

    const auto start = std::chrono::steady_clock::now();
    for (int i = 1; i <= 4; ++i) {
      const fuzz::ExecResult result = executor.run(*placeholder, kPacket);
      const fuzz::ExecResult expected =
          reference.run(*reference_target, kPacket);
      if (i == 2) {
        ASSERT_TRUE(result.crashed()) << "execution " << i;
        EXPECT_EQ(result.faults[0].kind, san::FaultKind::Hang)
            << "execution " << i;
        EXPECT_TRUE(has_fault_site(result, san::site_id("oop-exec-deadline")))
            << "execution " << i;
      } else {
        // The hung child was SIGKILLed at the deadline; the server keeps
        // serving bit-identical executions.
        EXPECT_FALSE(result.crashed()) << "execution " << i;
        EXPECT_EQ(result.trace_hash, expected.trace_hash)
            << "execution " << i;
      }
    }
    const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
        std::chrono::steady_clock::now() - start);
    EXPECT_LT(elapsed.count(), 30) << "the deadline must reap hangs promptly";
    ASSERT_NE(executor.oop_backend(), nullptr);
    EXPECT_EQ(executor.oop_backend()->server_restarts(), 0u);
  }
}

TEST(ForkServerFaults, DisabledDeadlineStillExecutesNormally) {
  // backend.exec_timeout_ms <= 0 disables the wall-clock deadline end to
  // end (shim timer disarmed, client waits indefinitely); healthy
  // executions must flow exactly as with a deadline.
  for (const fuzz::BackendKind kind : kOopKinds) {
    SCOPED_TRACE(std::string("backend ") + std::string(fuzz::to_string(kind)));
    const std::unique_ptr<ProtocolTarget> placeholder =
        proto::target_factory("libmodbus")();
    const std::unique_ptr<ProtocolTarget> reference_target =
        proto::target_factory("libmodbus")();

    fuzz::ExecutorConfig config = oop_config(kind);
    config.backend.exec_timeout_ms = 0;
    fuzz::Executor executor(config);
    fuzz::Executor reference;

    for (int i = 0; i < 3; ++i) {
      const fuzz::ExecResult result = executor.run(*placeholder, kPacket);
      const fuzz::ExecResult expected =
          reference.run(*reference_target, kPacket);
      EXPECT_FALSE(result.crashed()) << "execution " << i;
      EXPECT_EQ(result.trace_hash, expected.trace_hash) << "execution " << i;
      EXPECT_EQ(result.response, expected.response) << "execution " << i;
    }
  }
}

TEST(ForkServerFaults, ShmUnlinkRaceDoesNotDisturbALiveServer) {
  const std::unique_ptr<ProtocolTarget> placeholder =
      proto::target_factory("libmodbus")();
  const std::unique_ptr<ProtocolTarget> reference_target =
      proto::target_factory("libmodbus")();

  fuzz::Executor executor(oop_config());
  fuzz::Executor reference;

  const fuzz::ExecResult first = executor.run(*placeholder, kPacket);
  const fuzz::ExecResult expected_first =
      reference.run(*reference_target, kPacket);
  EXPECT_EQ(first.trace_hash, expected_first.trace_hash);

  // Rip the name out from under the running server (a hostile peer, an
  // overzealous cleaner). Both sides hold live mappings, so execution
  // continues bit-identically.
  ASSERT_NE(executor.oop_backend(), nullptr);
  const std::string name = executor.oop_backend()->segment().name();
  ASSERT_FALSE(name.empty());
  ASSERT_EQ(::shm_unlink(name.c_str()), 0);

  for (int i = 0; i < 3; ++i) {
    const fuzz::ExecResult result = executor.run(*placeholder, kPacket);
    const fuzz::ExecResult expected =
        reference.run(*reference_target, kPacket);
    EXPECT_FALSE(result.crashed()) << "execution " << i;
    EXPECT_EQ(result.trace_hash, expected.trace_hash) << "execution " << i;
    EXPECT_EQ(result.response, expected.response) << "execution " << i;
  }
  EXPECT_EQ(executor.oop_backend()->server_restarts(), 0u);
}

TEST(ForkServerFaults, ServerCrashTriggersRespawnAndTheRunRetries) {
  // The server dies right before serving its 3rd execution. The executor
  // respawns it (fresh segment, fresh handshake) and retries the packet,
  // so the caller sees an unbroken stream of clean results. The respawned
  // server re-reads the knob, so it dies again at ITS 3rd execution: 5
  // packets = 2 respawns, every result clean.
  for (const fuzz::BackendKind kind : kOopKinds) {
    SCOPED_TRACE(std::string("backend ") + std::string(fuzz::to_string(kind)));
    ScopedEnv knob("ICSFUZZ_SHIM_SERVER_EXIT_AT", "3");
    const std::unique_ptr<ProtocolTarget> placeholder =
        proto::target_factory("libmodbus")();
    const std::unique_ptr<ProtocolTarget> reference_target =
        proto::target_factory("libmodbus")();

    fuzz::Executor executor(oop_config(kind));
    fuzz::Executor reference;

    for (int i = 1; i <= 5; ++i) {
      const fuzz::ExecResult result = executor.run(*placeholder, kPacket);
      const fuzz::ExecResult expected =
          reference.run(*reference_target, kPacket);
      EXPECT_FALSE(result.crashed()) << "execution " << i;
      EXPECT_EQ(result.trace_hash, expected.trace_hash) << "execution " << i;
      EXPECT_EQ(result.events, expected.events) << "execution " << i;
      EXPECT_EQ(result.response, expected.response) << "execution " << i;
    }
    ASSERT_NE(executor.oop_backend(), nullptr);
    EXPECT_EQ(executor.oop_backend()->server_restarts(), 2u);
    // A nonzero-exit server is a LOST server, never an orderly one.
    EXPECT_EQ(executor.oop_backend()->orderly_server_exits(), 0u);
  }
}

TEST(ForkServerFaults, OrderlyServerRetirementIsNotALostServer) {
  // The shim retires (exit 0) after every 3 served executions. The client
  // must classify the EOF + clean exit as kServerExited: respawn and retry
  // exactly as for a crash, but book it under oop_server_exits — the
  // oop_server_lost counter stays at zero (it used to overcount this).
  for (const fuzz::BackendKind kind : kOopKinds) {
    SCOPED_TRACE(std::string("backend ") + std::string(fuzz::to_string(kind)));
    ScopedEnv knob("ICSFUZZ_SHIM_SERVER_RETIRE_AFTER", "3");
    const std::unique_ptr<ProtocolTarget> placeholder =
        proto::target_factory("libmodbus")();
    const std::unique_ptr<ProtocolTarget> reference_target =
        proto::target_factory("libmodbus")();

    telem::Telemetry hub;
    fuzz::ExecutorConfig config = oop_config(kind);
    config.telemetry = telem::Sink(&hub, 0);
    fuzz::Executor executor(config);
    fuzz::Executor reference;

    // 8 packets across servers that retire every 3: two retirements hit
    // mid-stream, every result still clean and bit-identical.
    for (int i = 1; i <= 8; ++i) {
      const fuzz::ExecResult result = executor.run(*placeholder, kPacket);
      const fuzz::ExecResult expected =
          reference.run(*reference_target, kPacket);
      EXPECT_FALSE(result.crashed()) << "execution " << i;
      EXPECT_EQ(result.trace_hash, expected.trace_hash) << "execution " << i;
      EXPECT_EQ(result.response, expected.response) << "execution " << i;
    }
    ASSERT_NE(executor.oop_backend(), nullptr);
    EXPECT_EQ(executor.oop_backend()->orderly_server_exits(), 2u);
    EXPECT_EQ(executor.oop_backend()->server_restarts(), 2u);

    const telem::Snapshot snap = hub.snapshot();
    EXPECT_EQ(snap.counter(telem::Counter::kOopServerLost), 0u)
        << "orderly retirement must not count as a lost server";
    EXPECT_EQ(snap.counter(telem::Counter::kOopServerExits), 2u);
    EXPECT_EQ(snap.counter(telem::Counter::kOopRestarts), 2u);
  }
}

TEST(ForkServerFaults, LegacyV1ShimDegradesPersistentToForkPerExec) {
  // Handshake version negotiation: a persistent-mode fuzzer against an old
  // (v1) shim — which advertises no capability word at all — must degrade
  // gracefully to fork-per-exec, with results still bit-identical.
  ScopedEnv knob("ICSFUZZ_SHIM_LEGACY_V1", "1");
  const std::unique_ptr<ProtocolTarget> placeholder =
      proto::target_factory("libmodbus")();
  const std::unique_ptr<ProtocolTarget> reference_target =
      proto::target_factory("libmodbus")();

  fuzz::Executor executor(oop_config(fuzz::BackendKind::kPersistent));
  fuzz::Executor reference;

  for (int i = 0; i < 4; ++i) {
    const fuzz::ExecResult result = executor.run(*placeholder, kPacket);
    const fuzz::ExecResult expected =
        reference.run(*reference_target, kPacket);
    EXPECT_FALSE(result.crashed()) << "execution " << i;
    EXPECT_EQ(result.trace_hash, expected.trace_hash) << "execution " << i;
    EXPECT_EQ(result.events, expected.events) << "execution " << i;
    EXPECT_EQ(result.response, expected.response) << "execution " << i;
  }
  const oop::OutOfProcessExecutor* backend = executor.oop_backend();
  ASSERT_NE(backend, nullptr);
  EXPECT_EQ(backend->server().protocol_version(), 1);
  EXPECT_TRUE(backend->persistent_requested());
  EXPECT_FALSE(backend->persistent_active())
      << "a v1 server cannot serve persistent executions";
  EXPECT_EQ(backend->child_recycles(), 0u);
  EXPECT_EQ(backend->server_restarts(), 0u);
}

TEST(ForkServerFaults, CampaignKeepsRunningThroughChildDeaths) {
  // A whole fuzzing campaign over a target whose children die
  // periodically: the fork server absorbs every death, the crash db
  // records the synthetic site, and coverage still accumulates.
  for (const fuzz::BackendKind kind : kOopKinds) {
    SCOPED_TRACE(std::string("backend ") + std::string(fuzz::to_string(kind)));
    ScopedEnv knob("ICSFUZZ_SHIM_KILL_CHILD_AT", "7");
    const std::unique_ptr<ProtocolTarget> placeholder =
        proto::target_factory("libmodbus")();
    const model::DataModelSet models = pits::pit_for_project("libmodbus");

    fuzz::FuzzerConfig config;
    config.strategy = fuzz::Strategy::PeachStar;
    config.rng_seed = 7;
    config.executor = oop_config(kind);
    fuzz::Fuzzer fuzzer(*placeholder, models, config);
    fuzzer.run(60);

    EXPECT_EQ(fuzzer.executor().executions(), 60u);
    EXPECT_GT(fuzzer.path_count(), 1u);
    EXPECT_GT(fuzzer.executor().edge_count(), 0u);
    // The killed child surfaced in the crash accounting.
    bool saw_child_death = false;
    for (const fuzz::CrashRecord* record : fuzzer.crashes().records()) {
      saw_child_death |= record->site == san::site_id("oop-child-terminated");
    }
    EXPECT_TRUE(saw_child_death);
  }
}

}  // namespace
}  // namespace icsfuzz
