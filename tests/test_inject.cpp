// Injection-runtime suite: a foreign binary (demo/, a separate CMake
// project that never links icsfuzz) becomes a coverage-guided fork-server
// target purely via LD_PRELOAD of libicsfuzz-preload.so.
//
// Three rows of the degrade matrix are pinned here:
//
//   * instrumented demo (sancov flags + no-op stubs): edges visibly
//     accumulate in the CoverageMap, the inject-info block advertises
//     sancov, persistent mode engages through the cooperation hooks,
//   * plain demo (no sancov): runs fault-driven — zero events, empty map,
//     but crash/hang/OOM classification still exact,
//   * fault differential: the classification of the demo's deliberate
//     fault endpoints is bit-for-bit the shim's at the ExecResult level
//     (same FaultKind, same site, same detail string) — the shim's
//     ICSFUZZ_SHIM_SEGV_AT knob exists precisely so its crash arm dies on
//     the same signal 11 the demo's null write does.
//
// The demo binaries default to the paths the ExternalProject build wrote;
// the CI injection lane re-points them at a standalone out-of-tree build
// via ICSFUZZ_DEMO_SERVER / ICSFUZZ_DEMO_SERVER_PLAIN env vars.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "coverage/coverage_map.hpp"
#include "exec_oop/oop_executor.hpp"
#include "fuzzer/executor.hpp"
#include "inject/inject_protocol.hpp"
#include "protocols/target_registry.hpp"
#include "tests/test_support.hpp"

namespace icsfuzz {
namespace {

using test::ScopedEnv;
using test::shim_cmd;

std::string preload_path() {
  if (const char* env = std::getenv("ICSFUZZ_PRELOAD")) return env;
  return ICSFUZZ_PRELOAD_PATH;
}

std::vector<std::string> demo_cmd() {
  if (const char* env = std::getenv("ICSFUZZ_DEMO_SERVER")) return {env};
  return {ICSFUZZ_DEMO_SERVER_PATH};
}

std::vector<std::string> demo_plain_cmd() {
  if (const char* env = std::getenv("ICSFUZZ_DEMO_SERVER_PLAIN")) {
    return {env};
  }
  return {ICSFUZZ_DEMO_SERVER_PLAIN_PATH};
}

/// Generous deadline for the non-hang paths (loaded CI runners must not
/// turn a healthy execution into a spurious hang).
constexpr int kGenerousTimeoutMs = 30000;
/// Tight deadline for the hang differential — both arms use the same value
/// so the synthetic Hang fault's detail string matches bit for bit.
constexpr int kHangTimeoutMs = 1000;

oop::OopExecutorConfig injected_config(std::vector<std::string> cmd,
                                       std::uint32_t budget = 0) {
  oop::OopExecutorConfig config;
  config.target_cmd = std::move(cmd);
  config.preload = preload_path();
  config.exec_timeout_ms = kGenerousTimeoutMs;
  config.persistent_budget = budget;
  return config;
}

/// Benign MBAP read-holding-registers exchange (FC 0x03, 3 registers).
const Bytes kBenign = {0x00, 0x01, 0x00, 0x00, 0x00, 0x06,
                       0x11, 0x03, 0x00, 0x6B, 0x00, 0x03};
/// A second benign frame taking different branches (FC 0x01, coils).
const Bytes kBenignCoils = {0x00, 0x02, 0x00, 0x00, 0x00, 0x06,
                            0x11, 0x01, 0x00, 0x10, 0x00, 0x08};

/// Minimal frame carrying one of the demo's deliberate fault endpoints.
Bytes fault_frame(std::uint8_t fc) {
  return {0x00, 0x09, 0x00, 0x00, 0x00, 0x02, 0x11, fc};
}
constexpr std::uint8_t kFaultCrash = 0x66;
constexpr std::uint8_t kFaultHang = 0x67;
constexpr std::uint8_t kFaultOom = 0x68;

std::size_t nonzero_cells(const std::uint64_t* words) {
  std::size_t cells = 0;
  for (std::size_t w = 0; w < cov::kMapWords; ++w) {
    std::uint64_t word = words[w];
    while (word != 0) {
      cells += (word & 0xFF) != 0;
      word >>= 8;
    }
  }
  return cells;
}

// -- Instrumented demo: sancov edges flow into the map. -------------------

TEST(Inject, SancovEdgesAccumulateInCoverageMap) {
  oop::OutOfProcessExecutor executor(injected_config(demo_cmd()));
  ASSERT_TRUE(executor.ensure_started()) << executor.last_error();

  const oop::OutOfProcessExecutor::Outcome& first = executor.run(kBenign);
  ASSERT_EQ(first.status, oop::ExecStatus::kOk) << executor.last_error();
  EXPECT_GT(first.aux.events, 0u)
      << "sancov hits must be counted as instrumentation events";
  EXPECT_FALSE(first.aux.response.empty())
      << "the demo answers FC 0x03 with a register payload";
  EXPECT_GT(nonzero_cells(executor.map_words()), 0u);

  // Adopt into a campaign map: the foreign binary's edges feed the same
  // feedback loop the in-tree targets do, and a branch-different packet
  // surfaces additional edges.
  cov::CoverageMap map;
  map.adopt_external(executor.map_words());
  const cov::TraceSummary a = map.finalize_execution();
  EXPECT_GT(a.trace_edges, 0u);
  EXPECT_TRUE(a.new_coverage);

  const oop::OutOfProcessExecutor::Outcome& second =
      executor.run(kBenignCoils);
  ASSERT_EQ(second.status, oop::ExecStatus::kOk);
  map.adopt_external(executor.map_words());
  const cov::TraceSummary b = map.finalize_execution();
  EXPECT_TRUE(b.new_coverage)
      << "a different function code must reach edges FC 0x03 never did";
  EXPECT_NE(a.trace_hash, b.trace_hash);
}

TEST(Inject, InjectInfoBlockAdvertisesSancov) {
  oop::OutOfProcessExecutor executor(injected_config(demo_cmd()));
  ASSERT_TRUE(executor.ensure_started()) << executor.last_error();
  (void)executor.run(kBenign);

  const inject::InjectInfo info = inject::read_inject_info(
      executor.segment().data(), executor.segment().size());
  ASSERT_TRUE(info.present) << "runtime must publish the info block";
  EXPECT_EQ(info.version, inject::kInjectRuntimeVersion);
  EXPECT_TRUE(info.sancov());
}

TEST(Inject, PersistentModeEngagesThroughCooperationHooks) {
  oop::OutOfProcessExecutor executor(
      injected_config(demo_cmd(), /*budget=*/8));
  ASSERT_TRUE(executor.ensure_started()) << executor.last_error();
  ASSERT_TRUE(executor.persistent_active())
      << "the instrumented demo exports the persistent marker";

  std::uint64_t steady_events = 0;
  for (int i = 0; i < 6; ++i) {
    const oop::OutOfProcessExecutor::Outcome& outcome = executor.run(kBenign);
    ASSERT_EQ(outcome.status, oop::ExecStatus::kOk)
        << "iteration " << i << ": " << executor.last_error();
    EXPECT_TRUE(outcome.persistent) << "iteration " << i;
    EXPECT_GT(outcome.aux.events, 0u) << "iteration " << i;
    // Same packet, same child: from the second iteration on the event
    // count is steady (iteration 1 additionally walks one-time paths —
    // first-call branches, allocator growth — that never re-run inside
    // the persistent child).
    if (i == 1) {
      steady_events = outcome.aux.events;
    } else if (i > 1) {
      EXPECT_EQ(outcome.aux.events, steady_events) << "iteration " << i;
    }
  }
}

TEST(Inject, PersistentOptOutDegradesToForkPerExec) {
  ScopedEnv knob("ICSFUZZ_INJECT_PERSISTENT", "0");
  oop::OutOfProcessExecutor executor(
      injected_config(demo_cmd(), /*budget=*/8));
  ASSERT_TRUE(executor.ensure_started()) << executor.last_error();
  EXPECT_FALSE(executor.persistent_active());

  const oop::OutOfProcessExecutor::Outcome& outcome = executor.run(kBenign);
  ASSERT_EQ(outcome.status, oop::ExecStatus::kOk) << executor.last_error();
  EXPECT_FALSE(outcome.persistent);
  EXPECT_GT(outcome.aux.events, 0u);
}

// -- Plain demo: no instrumentation, fault-driven only. -------------------

TEST(Inject, UninstrumentedBinaryRunsFaultDriven) {
  oop::OutOfProcessExecutor executor(injected_config(demo_plain_cmd()));
  ASSERT_TRUE(executor.ensure_started()) << executor.last_error();

  const oop::OutOfProcessExecutor::Outcome& benign = executor.run(kBenign);
  ASSERT_EQ(benign.status, oop::ExecStatus::kOk) << executor.last_error();
  EXPECT_EQ(benign.aux.events, 0u) << "no sancov, no events";
  EXPECT_EQ(nonzero_cells(executor.map_words()), 0u);
  EXPECT_FALSE(benign.aux.response.empty())
      << "fault-driven fuzzing still observes the response bytes";

  const inject::InjectInfo info = inject::read_inject_info(
      executor.segment().data(), executor.segment().size());
  ASSERT_TRUE(info.present);
  EXPECT_FALSE(info.sancov());

  // Crash classification works without any instrumentation.
  const oop::OutOfProcessExecutor::Outcome& crash =
      executor.run(fault_frame(kFaultCrash));
  EXPECT_EQ(crash.status, oop::ExecStatus::kCrash);
  EXPECT_EQ(crash.term_signal, SIGSEGV);
}

// -- Differential: demo fault classification == shim's, bit for bit. -----

/// Runs `packet` through a fuzz::Executor over the given backend config
/// and returns a private copy of the classified result.
fuzz::ExecResult classify(const fuzz::ExecBackendConfig& backend,
                          ByteSpan packet) {
  fuzz::ExecutorConfig config;
  config.backend = backend;
  const std::unique_ptr<ProtocolTarget> placeholder =
      proto::target_factory("libmodbus")();
  fuzz::Executor executor(std::move(config));
  return executor.run(*placeholder, packet);
}

fuzz::ExecBackendConfig demo_backend(int timeout_ms,
                                     std::uint64_t jail_mb = 0) {
  fuzz::ExecBackendConfig backend;
  backend.kind = fuzz::BackendKind::kForkPerExec;
  backend.target_cmd = demo_cmd();
  backend.preload = preload_path();
  backend.exec_timeout_ms = timeout_ms;
  backend.jail.address_space_mb = jail_mb;
  return backend;
}

fuzz::ExecBackendConfig shim_backend(int timeout_ms,
                                     std::uint64_t jail_mb = 0) {
  fuzz::ExecBackendConfig backend;
  backend.kind = fuzz::BackendKind::kForkPerExec;
  backend.target_cmd = shim_cmd();
  backend.exec_timeout_ms = timeout_ms;
  backend.jail.address_space_mb = jail_mb;
  return backend;
}

/// The classification contract: identical fault lists, field by field.
void expect_same_classification(const fuzz::ExecResult& demo,
                                const fuzz::ExecResult& shim) {
  EXPECT_EQ(demo.crashed(), shim.crashed());
  ASSERT_EQ(demo.faults.size(), shim.faults.size());
  for (std::size_t i = 0; i < demo.faults.size(); ++i) {
    EXPECT_EQ(demo.faults[i].kind, shim.faults[i].kind) << "fault " << i;
    EXPECT_EQ(demo.faults[i].site, shim.faults[i].site) << "fault " << i;
    EXPECT_EQ(demo.faults[i].detail, shim.faults[i].detail) << "fault " << i;
  }
}

TEST(InjectDifferential, CrashClassificationMatchesShim) {
  // The shim arm raises SIGSEGV on execution 1 via the fault plan; the
  // demo arm's FC 0x66 does a real null write. Both die on signal 11, so
  // the synthetic crash fault must match down to the detail string.
  const fuzz::ExecResult demo =
      classify(demo_backend(kGenerousTimeoutMs), fault_frame(kFaultCrash));
  fuzz::ExecResult shim;
  {
    ScopedEnv knob("ICSFUZZ_SHIM_SEGV_AT", "1");
    shim = classify(shim_backend(kGenerousTimeoutMs), kBenign);
  }
  ASSERT_TRUE(demo.crashed());
  expect_same_classification(demo, shim);
}

TEST(InjectDifferential, HangClassificationMatchesShim) {
  const fuzz::ExecResult demo =
      classify(demo_backend(kHangTimeoutMs), fault_frame(kFaultHang));
  fuzz::ExecResult shim;
  {
    ScopedEnv knob("ICSFUZZ_SHIM_HANG_AT", "1");
    shim = classify(shim_backend(kHangTimeoutMs), kBenign);
  }
  ASSERT_TRUE(demo.crashed());
  expect_same_classification(demo, shim);
}

TEST(InjectDifferential, OomClassificationMatchesShim) {
  // Both arms run under the same 256 MiB address-space jail; both exit
  // through the jail's allocation-failure code, never a raw bad_alloc.
  constexpr std::uint64_t kJailMb = 256;
  const fuzz::ExecResult demo = classify(
      demo_backend(kGenerousTimeoutMs, kJailMb), fault_frame(kFaultOom));
  fuzz::ExecResult shim;
  {
    ScopedEnv knob("ICSFUZZ_SHIM_OOM_AT", "1");
    shim = classify(shim_backend(kGenerousTimeoutMs, kJailMb), kBenign);
  }
  ASSERT_TRUE(demo.crashed());
  expect_same_classification(demo, shim);
}

}  // namespace
}  // namespace icsfuzz
