// Behavioural tests for the DNP3 outstation: link-layer CRC framing,
// transport reassembly rules and the application-layer object handlers.
// No bugs are injected (Table I lists none for opendnp3).
#include <gtest/gtest.h>

#include "protocols/dnp3/dnp3_server.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"
#include "util/checksum.hpp"

namespace icsfuzz::proto {
namespace {

using test::run_armed;

/// Frames `user_data` (transport + application octets) as a DNP3 link frame
/// addressed to the outstation, with correct header and block CRCs.
Bytes link_frame(Bytes user_data, std::uint16_t dest = Dnp3Server::kLocalAddress,
                 std::uint8_t control = 0xC4) {
  ByteWriter writer;
  writer.write_u8(0x05);
  writer.write_u8(0x64);
  writer.write_u8(static_cast<std::uint8_t>(5 + user_data.size()));
  writer.write_u8(control);
  writer.write_u16(dest, Endian::Little);
  writer.write_u16(0x0001, Endian::Little);  // master address
  writer.write_u16(crc16_dnp3(ByteSpan(writer.bytes().data(), 8)),
                   Endian::Little);
  std::size_t offset = 0;
  while (offset < user_data.size()) {
    const std::size_t block =
        user_data.size() - offset < 16 ? user_data.size() - offset : 16;
    const ByteSpan slice(user_data.data() + offset, block);
    writer.write_bytes(slice);
    writer.write_u16(crc16_dnp3(slice), Endian::Little);
    offset += block;
  }
  return writer.take();
}

/// Transport octet (FIR|FIN seq 0) + app request header + object header.
Bytes request(std::uint8_t function, Bytes objects) {
  Bytes out{0xC0, 0xC0, function};
  append(out, objects);
  return out;
}

TEST(Dnp3, BadStartBytesDropped) {
  Dnp3Server server;
  Bytes packet = link_frame(request(0x01, {0x01, 0x01, 0x06}));
  packet[1] = 0x65;
  EXPECT_TRUE(run_armed(server, packet).response.empty());
}

TEST(Dnp3, BadHeaderCrcDropped) {
  Dnp3Server server;
  Bytes packet = link_frame(request(0x01, {0x01, 0x01, 0x06}));
  packet[8] ^= 0xFF;
  EXPECT_TRUE(run_armed(server, packet).response.empty());
}

TEST(Dnp3, BadBlockCrcDropped) {
  Dnp3Server server;
  Bytes packet = link_frame(request(0x01, {0x01, 0x01, 0x06}));
  packet.back() ^= 0xFF;
  EXPECT_TRUE(run_armed(server, packet).response.empty());
}

TEST(Dnp3, WrongDestinationDropped) {
  Dnp3Server server;
  const Bytes packet = link_frame(request(0x01, {0x01, 0x01, 0x06}), 0x1234);
  EXPECT_TRUE(run_armed(server, packet).response.empty());
}

TEST(Dnp3, BroadcastAccepted) {
  Dnp3Server server;
  const Bytes packet = link_frame(request(0x01, {0x01, 0x01, 0x06}), 0xFFFF);
  EXPECT_FALSE(run_armed(server, packet).response.empty());
}

TEST(Dnp3, SecondaryFrameIgnored) {
  Dnp3Server server;
  const Bytes packet =
      link_frame(request(0x01, {0x01, 0x01, 0x06}),
                 Dnp3Server::kLocalAddress, 0x44);  // PRM=0
  EXPECT_TRUE(run_armed(server, packet).response.empty());
}

TEST(Dnp3, LinkStatusRequestAnswered) {
  Dnp3Server server;
  const Bytes packet = link_frame({}, Dnp3Server::kLocalAddress, 0xC9);
  const auto run = run_armed(server, packet);
  ASSERT_GE(run.response.size(), 10u);
  EXPECT_EQ(run.response[0], 0x05);
  EXPECT_EQ(run.response[1], 0x64);
}

TEST(Dnp3, MultiFragmentTransportIgnored) {
  Dnp3Server server;
  Bytes user{0x40, 0xC0, 0x01, 0x01, 0x01, 0x06};  // FIR only, no FIN
  EXPECT_TRUE(run_armed(server, link_frame(user)).response.empty());
}

TEST(Dnp3, ReadBinaryAllObjects) {
  Dnp3Server server;
  const auto run = run_armed(server, link_frame(request(0x01, {0x01, 0x01, 0x06})));
  ASSERT_FALSE(run.crashed());
  ASSERT_GT(run.response.size(), 10u);
  // Response function code 0x81 appears in the application fragment.
  // Layout: link(10) + transport(1) + app control(1) + function(1).
  EXPECT_EQ(run.response[12], 0x81);
}

TEST(Dnp3, ReadBinaryRangeOutOfBoundsFlagsIin) {
  Dnp3Server server;
  // 1-byte start/stop with stop beyond the 16-point database.
  const auto run = run_armed(
      server, link_frame(request(0x01, {0x01, 0x01, 0x00, 0x00, 0x40})));
  ASSERT_GT(run.response.size(), 14u);
  const std::uint8_t iin2 = run.response[14];
  EXPECT_TRUE(iin2 & 0x02);  // object unknown
}

TEST(Dnp3, ReadAnalogTwoByteRange) {
  Dnp3Server server;
  const auto run = run_armed(
      server,
      link_frame(request(0x01, {0x1E, 0x01, 0x01, 0x00, 0x00, 0x03, 0x00})));
  ASSERT_FALSE(run.crashed());
  EXPECT_GT(run.response.size(), 20u);  // four 5-byte analog values
}

TEST(Dnp3, ColdRestartSetsRestartIin) {
  Dnp3Server server;
  const auto run = run_armed(server, link_frame({0xC0, 0xC0, 0x0D}));
  ASSERT_GT(run.response.size(), 14u);
  EXPECT_TRUE(run.response[13] & 0x80);  // IIN1.7 device restart
}

TEST(Dnp3, UnsupportedFunctionFlagsIin) {
  Dnp3Server server;
  const auto run = run_armed(server, link_frame({0xC0, 0xC0, 0x70}));
  ASSERT_GT(run.response.size(), 14u);
  EXPECT_TRUE(run.response[14] & 0x01);  // IIN2.0 function not supported
}

Bytes crob(std::uint8_t function, std::uint8_t index, std::uint8_t op) {
  return request(function, {0x0C, 0x01, 0x17, 0x01, index, op, 0x01,
                            0, 0, 0, 0, 0, 0, 0, 0, 0x00});
}

TEST(Dnp3, DirectOperateTogglesPoint) {
  Dnp3Server server;
  const auto run = run_armed(server, link_frame(crob(0x05, 3, 0x01)));
  ASSERT_FALSE(run.crashed());
  EXPECT_EQ(server.operates(), 1u);
}

TEST(Dnp3, OperateWithoutSelectFlagsParamError) {
  Dnp3Server server;
  const auto run = run_armed(server, link_frame(crob(0x04, 3, 0x01)));
  ASSERT_GT(run.response.size(), 14u);
  EXPECT_TRUE(run.response[14] & 0x04);  // IIN2.2 parameter error
  EXPECT_EQ(server.operates(), 0u);
}

TEST(Dnp3, SelectThenOperateWithinOneStream) {
  Dnp3Server server;
  Bytes stream = link_frame(crob(0x03, 3, 0x01));
  append(stream, link_frame(crob(0x04, 3, 0x01)));
  const auto run = run_armed(server, stream);
  ASSERT_FALSE(run.crashed());
  EXPECT_EQ(server.operates(), 1u);
}

TEST(Dnp3, SelectOperateIndexMismatchRefused) {
  Dnp3Server server;
  Bytes stream = link_frame(crob(0x03, 3, 0x01));
  append(stream, link_frame(crob(0x04, 5, 0x01)));
  const auto run = run_armed(server, stream);
  EXPECT_EQ(server.operates(), 0u);
  (void)run;
}

TEST(Dnp3, CrobUnsupportedOpFlagsParamError) {
  Dnp3Server server;
  const auto run = run_armed(server, link_frame(crob(0x05, 3, 0x0F)));
  ASSERT_GT(run.response.size(), 14u);
  EXPECT_TRUE(run.response[14] & 0x04);
}

TEST(Dnp3, ResponsesCarryValidCrcs) {
  Dnp3Server server;
  const auto run = run_armed(server, link_frame(request(0x01, {0x01, 0x01, 0x06})));
  ASSERT_GE(run.response.size(), 10u);
  const std::uint16_t header_crc = static_cast<std::uint16_t>(
      run.response[8] | (run.response[9] << 8));
  EXPECT_EQ(crc16_dnp3(ByteSpan(run.response.data(), 8)), header_crc);
}

// Fuzz-style property: random bytes never fault the outstation.
class Dnp3NoFaultSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Dnp3NoFaultSweep, RandomBytesNeverFault) {
  Dnp3Server server;
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    Bytes packet = rng.bytes(rng.below(80));
    if (packet.size() >= 2 && rng.chance(1, 2)) {
      packet[0] = 0x05;
      packet[1] = 0x64;
    }
    const auto run = run_armed(server, packet);
    ASSERT_FALSE(run.crashed()) << "seed " << GetParam() << " iter " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Dnp3NoFaultSweep, ::testing::Values(7, 8, 9));

}  // namespace
}  // namespace icsfuzz::proto
