// Tests for the Peach-style mutators: mode mix, width discipline, token
// preservation and the byte-level operators.
#include <gtest/gtest.h>

#include "mutation/mutator.hpp"

namespace icsfuzz::mutation {
namespace {

using model::BlobSpec;
using model::Chunk;
using model::NumberSpec;
using model::StringSpec;

TEST(NumberGeneration, RespectsWidthMask) {
  MutatorSuite suite;
  Rng rng(1);
  NumberSpec spec;
  spec.width = 1;
  for (int i = 0; i < 500; ++i) {
    EXPECT_LE(suite.generate_number_value(spec, rng), 0xFFu);
  }
}

TEST(NumberGeneration, DefaultAppearsWithConfiguredFrequency) {
  MutatorConfig config;
  config.default_value_pct = 100;
  config.legal_value_pct = 0;
  config.boundary_pct = 0;
  MutatorSuite suite(config);
  Rng rng(2);
  NumberSpec spec;
  spec.width = 2;
  spec.default_value = 0x1234;
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(suite.generate_number_value(spec, rng), 0x1234u);
  }
}

TEST(NumberGeneration, LegalValuesDominateWhenConfigured) {
  MutatorConfig config;
  config.default_value_pct = 0;
  config.legal_value_pct = 100;
  config.boundary_pct = 0;
  MutatorSuite suite(config);
  Rng rng(3);
  NumberSpec spec;
  spec.width = 2;
  spec.legal_values = {5, 6, 7};
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t v = suite.generate_number_value(spec, rng);
    EXPECT_TRUE(v == 5 || v == 6 || v == 7) << v;
  }
}

TEST(NumberGeneration, RandomModeExploresWidely) {
  MutatorConfig config;
  config.default_value_pct = 0;
  config.legal_value_pct = 0;
  config.boundary_pct = 0;
  MutatorSuite suite(config);
  Rng rng(4);
  NumberSpec spec;
  spec.width = 2;
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(suite.generate_number_value(spec, rng));
  EXPECT_GT(seen.size(), 100u);
}

TEST(LeafGeneration, TokenContentIsAlwaysDefault) {
  MutatorSuite suite;
  Rng rng(5);
  const Chunk token = Chunk::token("t", 2, Endian::Big, 0xBEEF);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(suite.generate_leaf(token, rng), (Bytes{0xBE, 0xEF}));
  }
}

TEST(LeafGeneration, NumberWidthAlwaysExact) {
  MutatorSuite suite;
  Rng rng(6);
  NumberSpec spec;
  spec.width = 4;
  const Chunk chunk = Chunk::number("n", spec);
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(suite.generate_leaf(chunk, rng).size(), 4u);
  }
}

TEST(LeafGeneration, FixedStringKeepsLength) {
  MutatorSuite suite;
  Rng rng(7);
  StringSpec spec;
  spec.length = 6;
  const Chunk chunk = Chunk::string("s", spec);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(suite.generate_leaf(chunk, rng).size(), 6u);
  }
}

TEST(LeafGeneration, NullTerminatedStringEndsWithNul) {
  MutatorConfig config;
  config.post_mutate_pct = 0;  // keep the terminator intact
  MutatorSuite suite(config);
  Rng rng(8);
  StringSpec spec;
  spec.null_terminated = true;
  spec.max_generated = 8;
  const Chunk chunk = Chunk::string("s", spec);
  for (int i = 0; i < 200; ++i) {
    const Bytes out = suite.generate_leaf(chunk, rng);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out.back(), 0);
  }
}

TEST(LeafGeneration, VariableBlobHonoursCapAndUnit) {
  MutatorConfig config;
  config.post_mutate_pct = 0;
  MutatorSuite suite(config);
  Rng rng(9);
  BlobSpec spec;
  spec.max_generated = 12;
  spec.unit = 3;
  const Chunk chunk = Chunk::blob("b", spec);
  for (int i = 0; i < 300; ++i) {
    const Bytes out = suite.generate_leaf(chunk, rng);
    EXPECT_LE(out.size(), 12u);
    EXPECT_EQ(out.size() % 3, 0u);
  }
}

TEST(LeafGeneration, FixedBlobKeepsLength) {
  MutatorSuite suite;
  Rng rng(10);
  BlobSpec spec;
  spec.length = 7;
  const Chunk chunk = Chunk::blob("b", spec);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(suite.generate_leaf(chunk, rng).size(), 7u);
  }
}

TEST(LeafGeneration, CompositeChunksProduceNothing) {
  MutatorSuite suite;
  Rng rng(11);
  const Chunk block = Chunk::block("blk", {Chunk::blob("x", {})});
  EXPECT_TRUE(suite.generate_leaf(block, rng).empty());
}

TEST(MutateBytes, ProducesVariants) {
  MutatorSuite suite;
  Rng rng(12);
  const Bytes input{1, 2, 3, 4, 5, 6, 7, 8};
  int changed = 0;
  for (int i = 0; i < 100; ++i) {
    if (suite.mutate_bytes(input, rng) != input) ++changed;
  }
  EXPECT_GT(changed, 80);
}

TEST(MutateBytes, HandlesEmptyInput) {
  MutatorSuite suite;
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    const Bytes out = suite.mutate_bytes(Bytes{}, rng);
    EXPECT_LE(out.size(), 1u);  // only the insert operator can grow it
  }
}

TEST(MutateBytes, SizeStaysBounded) {
  MutatorSuite suite;
  Rng rng(14);
  const Bytes input(16, 0xAA);
  for (int i = 0; i < 300; ++i) {
    const Bytes out = suite.mutate_bytes(input, rng);
    EXPECT_GE(out.size(), 8u);   // remove caps at 8 bytes
    EXPECT_LE(out.size(), 24u);  // duplicate caps at 8 bytes
  }
}

// Property sweep: leaf generation must stay within each width 1..8.
class NumberWidthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NumberWidthSweep, EncodedWidthMatchesSpec) {
  MutatorSuite suite;
  Rng rng(GetParam());
  NumberSpec spec;
  spec.width = GetParam();
  const Chunk chunk = Chunk::number("n", spec);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(suite.generate_leaf(chunk, rng).size(), GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, NumberWidthSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace icsfuzz::mutation
