// Crash persistence + triage-store coverage: the CrashDb JSONL round-trip
// (fuzzer/persistence.hpp), save_session's crashes.jsonl artefact, and the
// on-disk TriageStore (supervise/triage_store.hpp) — bucketing, reproducer
// re-verification, tmin minimization on ingest, journal-replay reopen,
// re-ingest accumulation, and torn-journal tolerance.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "distill/replay.hpp"
#include "fuzzer/crash_db.hpp"
#include "fuzzer/fuzzer.hpp"
#include "fuzzer/persistence.hpp"
#include "pits/pits.hpp"
#include "protocols/lib60870/cs101_server.hpp"
#include "supervise/triage_store.hpp"

namespace icsfuzz {
namespace {

namespace fs = std::filesystem;

class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& stem) {
    path_ = fs::temp_directory_path() /
            (stem + "-" + std::to_string(::getpid()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScopedTempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const fs::path& path() const { return path_; }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

/// One real crashing campaign, shared across the suite (the lib60870 CS101
/// target reliably yields its Table-I SEGVs at this seed/budget — the same
/// recipe test_distill's replay oracle uses).
struct CrashCampaign {
  model::DataModelSet models = pits::cs101_pit();
  proto::Cs101Server server;
  fuzz::Fuzzer fuzzer;

  CrashCampaign() : fuzzer(server, models, config()) { fuzzer.run(25000); }

  static fuzz::FuzzerConfig config() {
    fuzz::FuzzerConfig config;
    config.strategy = fuzz::Strategy::PeachStar;
    config.rng_seed = 5;
    return config;
  }
};

CrashCampaign& campaign() {
  static CrashCampaign instance;
  return instance;
}

void expect_same_record(const fuzz::CrashRecord& actual,
                        const fuzz::CrashRecord& expected) {
  EXPECT_EQ(actual.kind, expected.kind);
  EXPECT_EQ(actual.site, expected.site);
  EXPECT_EQ(actual.detail, expected.detail);
  EXPECT_EQ(actual.reproducer, expected.reproducer);
  EXPECT_EQ(actual.hits, expected.hits);
  EXPECT_EQ(actual.first_execution, expected.first_execution);
  EXPECT_EQ(actual.trace_hash, expected.trace_hash);
}

// ------------------------------------------------------- CrashDb JSONL form

fuzz::CrashDb synthetic_db() {
  fuzz::CrashDb db;
  fuzz::CrashRecord segv;
  segv.kind = san::FaultKind::Segv;
  segv.site = 0x0012abcd;
  segv.detail = "read of freed chunk\nwith a \"quoted\" tail \\ and tab\t";
  segv.reproducer = Bytes{0x00, 0xff, 0x7f, 0x00, 0x41};
  segv.hits = 3;
  segv.first_execution = 42;
  segv.trace_hash = 0x0123456789abcdefULL;
  db.restore(segv);

  fuzz::CrashRecord hang;
  hang.kind = san::FaultKind::Hang;
  hang.site = 0xffffffff;
  hang.detail = "";            // empty detail round-trips
  hang.reproducer = Bytes{};   // empty reproducer round-trips
  hang.hits = 1;
  hang.first_execution = 7;
  hang.trace_hash = 0;
  db.restore(hang);
  return db;
}

TEST(CrashDbJsonl, RoundTripPreservesEveryField) {
  const fuzz::CrashDb db = synthetic_db();
  const std::string text = fuzz::crash_db_to_jsonl(db);

  fuzz::CrashDb loaded;
  EXPECT_EQ(fuzz::crash_db_from_jsonl(text, loaded), 2u);
  const std::vector<const fuzz::CrashRecord*> expected = db.records();
  const std::vector<const fuzz::CrashRecord*> actual = loaded.records();
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    expect_same_record(*actual[i], *expected[i]);
  }
  // restore() semantics: hits were reinstated, not re-counted from 1.
  EXPECT_EQ(actual[1]->hits, 3u);  // records() orders by first_execution
}

TEST(CrashDbJsonl, SkipsMalformedAndTornLines) {
  const std::string text = fuzz::crash_db_to_jsonl(synthetic_db());
  const std::string dirty = "this is not json\n" + text +
                            "{\"kind\":\"segv\",\"site\":\"00000001\"";
  // One garbage line and one torn (field-incomplete, unterminated)
  // trailing record around two good ones.
  fuzz::CrashDb loaded;
  EXPECT_EQ(fuzz::crash_db_from_jsonl(dirty, loaded), 2u);
}

TEST(CrashDbJsonl, FileRoundTrip) {
  const ScopedTempDir dir("icsfuzz-crashdb");
  const std::string path = (dir.path() / "crashes.jsonl").string();
  const fuzz::CrashDb db = synthetic_db();

  ASSERT_FALSE(fuzz::save_crash_db(db, path).has_value());
  fuzz::CrashDb loaded;
  EXPECT_EQ(fuzz::load_crash_db(path, loaded), 2u);
  EXPECT_EQ(fuzz::crash_db_to_jsonl(loaded), fuzz::crash_db_to_jsonl(db));
  // Missing file: zero records, db untouched.
  fuzz::CrashDb empty;
  EXPECT_EQ(fuzz::load_crash_db((dir.path() / "absent").string(), empty), 0u);
  EXPECT_EQ(empty.unique_count(), 0u);
}

TEST(CrashDbJsonl, SaveSessionWritesReloadableCrashesJsonl) {
  const ScopedTempDir dir("icsfuzz-session");
  ASSERT_FALSE(fuzz::save_session(campaign().fuzzer, dir.str()).has_value());

  const std::string path = (dir.path() / "crashes.jsonl").string();
  ASSERT_TRUE(fs::exists(path));
  fuzz::CrashDb loaded;
  EXPECT_EQ(fuzz::load_crash_db(path, loaded),
            campaign().fuzzer.crashes().unique_count());
  EXPECT_EQ(fuzz::crash_db_to_jsonl(loaded),
            fuzz::crash_db_to_jsonl(campaign().fuzzer.crashes()));
}

// --------------------------------------------------------------- TriageStore

TEST(TriageStore, BucketIdEncodesKindSiteAndTrace) {
  EXPECT_EQ(supervise::triage_bucket_id(san::FaultKind::Segv, 0x12, 0xab),
            "segv-00000012-00000000000000ab");
  EXPECT_EQ(supervise::triage_bucket_id(san::FaultKind::HeapUseAfterFree,
                                        0xdeadbeef, 0),
            "heap-uaf-deadbeef-0000000000000000");
}

TEST(TriageStore, IngestVerifiesMinimizesAndPersistsRealCrashes) {
  const std::vector<const fuzz::CrashRecord*> crashes =
      campaign().fuzzer.crashes().records();
  ASSERT_GT(crashes.size(), 0u) << "the seeded campaign must crash";

  const ScopedTempDir dir("icsfuzz-triage");
  supervise::TriageStore store(dir.str());
  ASSERT_TRUE(store.open());
  EXPECT_TRUE(store.records().empty());

  for (const fuzz::CrashRecord* crash : crashes) {
    proto::Cs101Server replay_target;
    const supervise::TriageStore::IngestOutcome outcome =
        store.ingest(*crash, &replay_target, /*minimize=*/true);
    EXPECT_TRUE(outcome.is_new);
    EXPECT_TRUE(outcome.reproduced)
        << "bucket " << outcome.bucket << ": reproducer must replay";
    EXPECT_FALSE(outcome.verify_failed);

    const supervise::TriageRecord* record = store.find(outcome.bucket);
    ASSERT_NE(record, nullptr);
    EXPECT_TRUE(record->verified);
    EXPECT_EQ(record->ingests, 1u);
    EXPECT_EQ(record->hits, crash->hits);
    EXPECT_EQ(record->first_execution, crash->first_execution);
    EXPECT_EQ(record->original_bytes, crash->reproducer.size());
    EXPECT_LE(record->reproducer_bytes, record->original_bytes);

    // The persisted (possibly tmin-shrunk) reproducer still raises the
    // bucket's own fault.
    const std::optional<Bytes> reproducer =
        store.load_reproducer(outcome.bucket);
    ASSERT_TRUE(reproducer.has_value());
    EXPECT_EQ(reproducer->size(), record->reproducer_bytes);
    proto::Cs101Server verify_target;
    const distill::CrashReplay replay =
        distill::replay_crash(verify_target, *reproducer);
    EXPECT_TRUE(replay.reproduced);
    bool same_fault = false;
    for (const san::FaultReport& fault : replay.faults) {
      same_fault |= fault.kind == record->kind && fault.site == record->site;
    }
    EXPECT_TRUE(same_fault) << "bucket " << outcome.bucket;
  }
  EXPECT_EQ(store.records().size(), crashes.size());

  // Reopen from disk: the journal replays into the identical index.
  supervise::TriageStore reopened(dir.str());
  ASSERT_TRUE(reopened.open());
  ASSERT_EQ(reopened.records().size(), store.records().size());
  for (std::size_t i = 0; i < store.records().size(); ++i) {
    const supervise::TriageRecord& a = reopened.records()[i];
    const supervise::TriageRecord& b = store.records()[i];
    EXPECT_EQ(a.bucket, b.bucket);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.site, b.site);
    EXPECT_EQ(a.trace_hash, b.trace_hash);
    EXPECT_EQ(a.detail, b.detail);
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.first_execution, b.first_execution);
    EXPECT_EQ(a.ingests, b.ingests);
    EXPECT_EQ(a.verified, b.verified);
    EXPECT_EQ(a.minimized, b.minimized);
    EXPECT_EQ(a.reproducer_bytes, b.reproducer_bytes);
    EXPECT_EQ(a.original_bytes, b.original_bytes);
  }

  // Re-ingest of the same campaign: hits accumulate, no new buckets, and a
  // minimized reproducer is never replaced by the bigger duplicate.
  for (const fuzz::CrashRecord* crash : crashes) {
    const supervise::TriageRecord before =
        *reopened.find(supervise::triage_bucket_id(crash->kind, crash->site,
                                                   crash->trace_hash));
    const supervise::TriageStore::IngestOutcome outcome =
        reopened.ingest(*crash, nullptr);
    EXPECT_FALSE(outcome.is_new);
    const supervise::TriageRecord* after = reopened.find(outcome.bucket);
    ASSERT_NE(after, nullptr);
    EXPECT_EQ(after->ingests, 2u);
    EXPECT_EQ(after->hits, 2 * crash->hits);
    EXPECT_EQ(after->first_execution, before.first_execution);
    EXPECT_EQ(after->reproducer_bytes, before.reproducer_bytes);
    EXPECT_EQ(after->minimized, before.minimized);
  }
  EXPECT_EQ(reopened.records().size(), crashes.size());

  // reverify against a fresh target confirms the stored reproducers again.
  for (const supervise::TriageRecord& record : reopened.records()) {
    proto::Cs101Server reverify_target;
    const std::optional<supervise::TriageStore::IngestOutcome> outcome =
        reopened.reverify(record.bucket, reverify_target);
    ASSERT_TRUE(outcome.has_value());
    EXPECT_TRUE(outcome->reproduced);
  }
}

TEST(TriageStore, TornTrailingJournalLineIsDropped) {
  const ScopedTempDir dir("icsfuzz-triage-torn");
  supervise::TriageStore store(dir.str());
  ASSERT_TRUE(store.open());

  fuzz::CrashRecord crash;
  crash.kind = san::FaultKind::Segv;
  crash.site = 0x1234;
  crash.detail = "synthetic";
  crash.reproducer = Bytes{1, 2, 3};
  crash.hits = 1;
  crash.first_execution = 10;
  crash.trace_hash = 0x55;
  store.ingest(crash, nullptr);

  // A killed writer leaves an unterminated fragment at the tail.
  {
    std::ofstream journal(dir.path() / "index.jsonl",
                          std::ios::binary | std::ios::app);
    journal << "{\"bucket\":\"segv-00005678";
  }
  supervise::TriageStore reopened(dir.str());
  ASSERT_TRUE(reopened.open());
  ASSERT_EQ(reopened.records().size(), 1u);
  EXPECT_EQ(reopened.records()[0].bucket,
            supervise::triage_bucket_id(crash.kind, crash.site,
                                        crash.trace_hash));

  // The next append lands on its own line: a fresh ingest after the torn
  // write is not corrupted by the fragment.
  fuzz::CrashRecord other = crash;
  other.site = 0x9999;
  reopened.ingest(other, nullptr);
  supervise::TriageStore third(dir.str());
  ASSERT_TRUE(third.open());
  EXPECT_EQ(third.records().size(), 2u);
}

TEST(TriageStore, MissingStoreIsEmptyAndReverifyOfUnknownBucketIsNullopt) {
  const ScopedTempDir dir("icsfuzz-triage-empty");
  supervise::TriageStore store((dir.path() / "nonexistent").string());
  EXPECT_TRUE(store.open());
  EXPECT_TRUE(store.records().empty());
  EXPECT_EQ(store.find("segv-00000000-0000000000000000"), nullptr);
  proto::Cs101Server target;
  EXPECT_FALSE(store.reverify("no-such-bucket", target).has_value());
  EXPECT_FALSE(store.load_reproducer("no-such-bucket").has_value());
}

}  // namespace
}  // namespace icsfuzz
