// PathTracker regression suite for the open-addressing rewrite (the
// ROADMAP's "batched path-tracker probing" follow-on).
//
// The table replaces std::unordered_set but must be observably identical —
// record/contains answers, merge deltas, path counts, snapshot contents —
// so the suite drives randomized operation streams against an
// unordered_set oracle, covers the zero-hash sentinel corner explicitly,
// and proves campaign trajectories are bit-for-bit reproducible (the
// executor's new_path stream is exactly the record() return stream).
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "coverage/path_tracker.hpp"
#include "fuzzer/fuzzer.hpp"
#include "pits/pits.hpp"
#include "protocols/modbus/modbus_server.hpp"
#include "util/rng.hpp"

namespace icsfuzz::cov {
namespace {

std::vector<std::uint64_t> sorted(std::vector<std::uint64_t> values) {
  std::sort(values.begin(), values.end());
  return values;
}

TEST(PathTracker, RandomizedOperationsMatchUnorderedSetOracle) {
  Rng rng(0x9A7B5);
  PathTracker tracker;
  std::unordered_set<std::uint64_t> oracle;
  // A mixed universe: clustered small keys (forcing probe collisions in
  // the low bits), genuinely random 64-bit keys, and the zero hash.
  for (int step = 0; step < 200000; ++step) {
    std::uint64_t hash;
    const int shape = static_cast<int>(rng.below(4));
    if (shape == 0) {
      hash = rng.below(512);  // dense low-bit collisions, includes 0
    } else if (shape == 1) {
      hash = mix64(rng.below(5000));
    } else {
      hash = rng.next_u64();
      if (shape == 3) hash &= 0xFFFF;  // clustered table slots
    }
    ASSERT_EQ(tracker.record(hash), oracle.insert(hash).second)
        << "step " << step << " hash " << hash;
    ASSERT_EQ(tracker.path_count(), oracle.size()) << "step " << step;
    const std::uint64_t probe =
        rng.chance(1, 2) ? hash : rng.next_u64() & 0x3FF;
    ASSERT_EQ(tracker.contains(probe), oracle.contains(probe))
        << "step " << step;
  }
  EXPECT_EQ(sorted(tracker.snapshot()),
            sorted(std::vector<std::uint64_t>(oracle.begin(), oracle.end())));
}

TEST(PathTracker, ZeroHashIsAnOrdinaryPath) {
  PathTracker tracker;
  EXPECT_FALSE(tracker.contains(0));
  EXPECT_TRUE(tracker.record(0));
  EXPECT_FALSE(tracker.record(0));
  EXPECT_TRUE(tracker.contains(0));
  EXPECT_EQ(tracker.path_count(), 1u);
  EXPECT_EQ(tracker.snapshot(), std::vector<std::uint64_t>{0});
  tracker.clear();
  EXPECT_FALSE(tracker.contains(0));
  EXPECT_EQ(tracker.path_count(), 0u);
}

TEST(PathTracker, MergeMatchesOracleAndReportsExactDeltas) {
  Rng rng(0x4242);
  PathTracker a;
  PathTracker b;
  std::unordered_set<std::uint64_t> oracle_a;
  std::unordered_set<std::uint64_t> oracle_b;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t hash = rng.below(8000);  // heavy overlap
    if (rng.chance(1, 2)) {
      a.record(hash);
      oracle_a.insert(hash);
    } else {
      b.record(hash);
      oracle_b.insert(hash);
    }
  }
  a.record(0);
  oracle_a.insert(0);

  std::size_t expected_added = 0;
  for (const std::uint64_t hash : oracle_b) {
    expected_added += oracle_a.insert(hash).second ? 1 : 0;
  }
  EXPECT_EQ(a.merge(b), expected_added);
  EXPECT_EQ(a.path_count(), oracle_a.size());
  EXPECT_EQ(sorted(a.snapshot()),
            sorted(std::vector<std::uint64_t>(oracle_a.begin(),
                                              oracle_a.end())));
  // Idempotent: a second merge adds nothing.
  EXPECT_EQ(a.merge(b), 0u);
  EXPECT_EQ(a.path_count(), oracle_a.size());
}

TEST(PathTracker, GrowthPreservesEveryRecordedPath) {
  // Push far past several doublings and verify membership of everything.
  PathTracker tracker;
  constexpr std::uint64_t kPaths = 100000;
  for (std::uint64_t i = 0; i < kPaths; ++i) {
    ASSERT_TRUE(tracker.record(mix64(i)));
  }
  EXPECT_EQ(tracker.path_count(), kPaths);
  for (std::uint64_t i = 0; i < kPaths; ++i) {
    ASSERT_TRUE(tracker.contains(mix64(i))) << i;
    ASSERT_FALSE(tracker.record(mix64(i))) << i;
  }
}

TEST(PathTracker, CampaignTrajectoryIsBitForBitReproducible) {
  // The executor's new_path decisions ARE record()'s return values, so two
  // identical fixed-seed campaigns must produce identical new-path streams
  // and path series — the trajectory regression gate for the table
  // rewrite (the sparse/dense/SIMD matrix of test_coverage_sparse.cpp
  // rides on the same tracker and cross-checks it at campaign scale).
  auto run = [] {
    proto::ModbusServer server;
    const model::DataModelSet models = pits::modbus_pit();
    fuzz::FuzzerConfig config;
    config.strategy = fuzz::Strategy::PeachStar;
    config.rng_seed = 7;
    fuzz::Fuzzer fuzzer(server, models, config);
    std::uint64_t fingerprint = 0;
    std::vector<std::size_t> series;
    fuzzer.run(4000, [&](const fuzz::ExecResult& result) {
      fingerprint = fingerprint * 0x100000001B3ULL ^
                    mix64(result.trace_hash ^ (result.new_path ? 1 : 0));
      if (fuzzer.executor().executions() % 500 == 0) {
        series.push_back(fuzzer.path_count());
      }
    });
    return std::pair{fingerprint, series};
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
  EXPECT_GT(first.second.back(), 0u);
}

}  // namespace
}  // namespace icsfuzz::cov
