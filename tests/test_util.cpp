// Unit tests for src/util: byte cursors, integer codecs, checksums,
// hex rendering, string helpers and the deterministic RNG.
#include <gtest/gtest.h>

#include "util/bytes.hpp"
#include "util/checksum.hpp"
#include "util/hexdump.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace icsfuzz {
namespace {

// ---------------------------------------------------------------- ByteReader

TEST(ByteReader, ReadsSequentially) {
  const Bytes data{0x01, 0x02, 0x03};
  ByteReader reader(data);
  EXPECT_EQ(reader.read_u8(), 0x01);
  EXPECT_EQ(reader.read_u8(), 0x02);
  EXPECT_EQ(reader.read_u8(), 0x03);
  EXPECT_TRUE(reader.ok());
  EXPECT_TRUE(reader.at_end());
}

TEST(ByteReader, UnderrunIsStickyAndReturnsZero) {
  const Bytes data{0xAA};
  ByteReader reader(data);
  EXPECT_EQ(reader.read_u8(), 0xAA);
  EXPECT_EQ(reader.read_u8(), 0);  // past end
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.read_u8(), 0);  // stays failed
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(ByteReader, BigEndianU16) {
  const Bytes data{0x12, 0x34};
  ByteReader reader(data);
  EXPECT_EQ(reader.read_u16(Endian::Big), 0x1234);
}

TEST(ByteReader, LittleEndianU16) {
  const Bytes data{0x12, 0x34};
  ByteReader reader(data);
  EXPECT_EQ(reader.read_u16(Endian::Little), 0x3412);
}

TEST(ByteReader, ThreeByteLittleEndianInteger) {
  const Bytes data{0x01, 0x02, 0x03};
  ByteReader reader(data);
  EXPECT_EQ(reader.read_uint(3, Endian::Little), 0x030201u);
}

TEST(ByteReader, RejectsZeroAndOversizedWidths) {
  const Bytes data{0x01, 0x02, 0x03, 0x04};
  ByteReader a(data);
  EXPECT_EQ(a.read_uint(0, Endian::Big), 0u);
  EXPECT_FALSE(a.ok());
  ByteReader b(data);
  EXPECT_EQ(b.read_uint(9, Endian::Big), 0u);
  EXPECT_FALSE(b.ok());
}

TEST(ByteReader, ReadBytesExactAndUnderrun) {
  const Bytes data{1, 2, 3, 4};
  ByteReader reader(data);
  EXPECT_EQ(reader.read_bytes(3), (Bytes{1, 2, 3}));
  EXPECT_TRUE(reader.read_bytes(2).empty());
  EXPECT_FALSE(reader.ok());
}

TEST(ByteReader, ReadRestConsumesEverything) {
  const Bytes data{9, 8, 7};
  ByteReader reader(data);
  reader.read_u8();
  EXPECT_EQ(reader.read_rest(), (Bytes{8, 7}));
  EXPECT_TRUE(reader.at_end());
  EXPECT_TRUE(reader.ok());
}

TEST(ByteReader, PeekDoesNotAdvance) {
  const Bytes data{5, 6};
  ByteReader reader(data);
  EXPECT_EQ(reader.peek_u8(), 5);
  EXPECT_EQ(reader.peek_u8(1), 6);
  EXPECT_EQ(reader.position(), 0u);
  EXPECT_EQ(reader.read_u8(), 5);
}

TEST(ByteReader, SkipAdvancesOrFails) {
  const Bytes data{1, 2, 3};
  ByteReader reader(data);
  reader.skip(2);
  EXPECT_TRUE(reader.ok());
  EXPECT_EQ(reader.read_u8(), 3);
  reader.skip(1);
  EXPECT_FALSE(reader.ok());
}

// ---------------------------------------------------------------- ByteWriter

TEST(ByteWriter, WritesAllWidthsAndOrders) {
  ByteWriter writer;
  writer.write_u8(0xAB);
  writer.write_u16(0x1234, Endian::Big);
  writer.write_u16(0x1234, Endian::Little);
  writer.write_u32(0xDEADBEEF, Endian::Big);
  EXPECT_EQ(writer.bytes(),
            (Bytes{0xAB, 0x12, 0x34, 0x34, 0x12, 0xDE, 0xAD, 0xBE, 0xEF}));
}

TEST(ByteWriter, PatchOverwritesInPlace) {
  ByteWriter writer;
  writer.write_u32(0, Endian::Big);
  EXPECT_TRUE(writer.patch_uint(1, 0xBBCC, 2, Endian::Big));
  EXPECT_EQ(writer.bytes(), (Bytes{0x00, 0xBB, 0xCC, 0x00}));
}

TEST(ByteWriter, PatchOutOfRangeFails) {
  ByteWriter writer;
  writer.write_u16(0, Endian::Big);
  EXPECT_FALSE(writer.patch_uint(1, 0xFFFF, 2, Endian::Big));
}

TEST(EncodeDecode, RoundTripsAllWidths) {
  for (std::size_t width = 1; width <= 8; ++width) {
    const std::uint64_t value = 0x0123456789ABCDEFULL &
                                (width >= 8 ? ~0ULL : ((1ULL << (width * 8)) - 1));
    for (Endian endian : {Endian::Big, Endian::Little}) {
      const Bytes encoded = encode_uint(value, width, endian);
      ASSERT_EQ(encoded.size(), width);
      EXPECT_EQ(decode_uint(encoded, endian), value)
          << "width=" << width;
    }
  }
}

TEST(EncodeDecode, EmptySpanDecodesToZero) {
  EXPECT_EQ(decode_uint(ByteSpan{}, Endian::Big), 0u);
}

// ----------------------------------------------------------------- Checksums

TEST(Checksum, Crc32KnownVector) {
  // IEEE CRC-32 of "123456789".
  const Bytes data = to_bytes("123456789");
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Checksum, Crc16ModbusKnownVector) {
  // CRC-16/MODBUS of "123456789".
  const Bytes data = to_bytes("123456789");
  EXPECT_EQ(crc16_modbus(data), 0x4B37u);
}

TEST(Checksum, Dnp3KnownVector) {
  // CRC-16/DNP of "123456789".
  const Bytes data = to_bytes("123456789");
  EXPECT_EQ(crc16_dnp3(data), 0xEA82u);
}

TEST(Checksum, LrcComplementsSum) {
  const Bytes data{0x10, 0x20, 0x30};
  EXPECT_EQ(static_cast<std::uint8_t>(lrc8(data) + sum8(data)), 0);
}

TEST(Checksum, EmptyInputs) {
  EXPECT_EQ(crc32(ByteSpan{}), 0u);
  EXPECT_EQ(crc16_modbus(ByteSpan{}), 0xFFFFu);
  EXPECT_EQ(sum8(ByteSpan{}), 0u);
  EXPECT_EQ(fletcher16(ByteSpan{}), 0u);
}

TEST(Checksum, Fletcher16Sensitivity) {
  const Bytes a{1, 2, 3};
  const Bytes b{3, 2, 1};  // same bytes, different order
  EXPECT_NE(fletcher16(a), fletcher16(b));
}

// ------------------------------------------------------------------ Hexdump

TEST(Hex, ToHexAndBack) {
  const Bytes data{0x00, 0xFF, 0x5A};
  EXPECT_EQ(to_hex(data), "00ff5a");
  EXPECT_EQ(from_hex("00ff5a"), data);
  EXPECT_EQ(from_hex("00 FF 5a"), data);  // whitespace + case tolerated
}

TEST(Hex, FromHexRejectsBadInput) {
  EXPECT_TRUE(from_hex("0g").empty());
  EXPECT_TRUE(from_hex("abc").empty());  // odd digit count
}

TEST(Hex, HexdumpShape) {
  const Bytes data(20, 0x41);  // 'A' x 20 -> two rows
  const std::string dump = hexdump(data);
  EXPECT_NE(dump.find("00000000"), std::string::npos);
  EXPECT_NE(dump.find("00000010"), std::string::npos);
  EXPECT_NE(dump.find("AAAA"), std::string::npos);
}

TEST(Hex, HexdumpNonPrintableAsDots) {
  const Bytes data{0x00, 0x1F, 0x7F};
  const std::string dump = hexdump(data);
  EXPECT_NE(dump.find("|...|"), std::string::npos);
}

// ------------------------------------------------------------------- Strings

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\n"), "");
}

TEST(Strings, ParseUintDecimalAndHex) {
  EXPECT_EQ(parse_uint("42"), 42u);
  EXPECT_EQ(parse_uint("0x2A"), 42u);
  EXPECT_EQ(parse_uint(" 7 "), 7u);
  EXPECT_FALSE(parse_uint("").has_value());
  EXPECT_FALSE(parse_uint("12a").has_value());
  EXPECT_FALSE(parse_uint("0x").has_value());
}

TEST(Strings, ParseBool) {
  EXPECT_EQ(parse_bool("true"), true);
  EXPECT_EQ(parse_bool("FALSE"), false);
  EXPECT_EQ(parse_bool("1"), true);
  EXPECT_FALSE(parse_bool("yes").has_value());
}

TEST(Strings, PrefixSuffixJoinLower) {
  EXPECT_TRUE(starts_with("abcdef", "abc"));
  EXPECT_FALSE(starts_with("ab", "abc"));
  EXPECT_TRUE(ends_with("abcdef", "def"));
  EXPECT_EQ(to_lower("AbC"), "abc");
  EXPECT_EQ(join({"a", "b"}, "-"), "a-b");
}

// ----------------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(13), 13u);
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.between(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0, 100));
    EXPECT_TRUE(rng.chance(100, 100));
  }
  EXPECT_FALSE(rng.chance(1, 0));  // zero denominator
}

TEST(Rng, BytesLengthAndVariety) {
  Rng rng(13);
  const auto data = rng.bytes(256);
  ASSERT_EQ(data.size(), 256u);
  bool varied = false;
  for (std::size_t i = 1; i < data.size(); ++i) varied |= data[i] != data[0];
  EXPECT_TRUE(varied);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = items;
  rng.shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, sorted);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

// ------------------------------------------------------- checked CLI parses

TEST(Strings, ParseU64AcceptsStrictDecimal) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("42"), 42u);
  EXPECT_EQ(parse_u64(" 7 "), 7u);  // trimmed like the rest of the family
  EXPECT_EQ(parse_u64("18446744073709551615"), UINT64_MAX);
}

TEST(Strings, ParseU64RejectsGarbageInsteadOfReturningZero) {
  // The atoi/strtoull bug class this helper exists to kill: every one of
  // these used to silently become 0 (or saturate) through C conversions.
  EXPECT_FALSE(parse_u64("").has_value());
  EXPECT_FALSE(parse_u64("banana").has_value());
  EXPECT_FALSE(parse_u64("12abc").has_value());
  EXPECT_FALSE(parse_u64("-3").has_value());
  EXPECT_FALSE(parse_u64("+3").has_value());
  EXPECT_FALSE(parse_u64("0x10").has_value());
  EXPECT_FALSE(parse_u64("18446744073709551616").has_value());  // 2^64
  EXPECT_FALSE(parse_u64("99999999999999999999999").has_value());
}

TEST(Strings, ParseU64ReportsWhatAndWhy) {
  std::string error;
  EXPECT_FALSE(parse_u64("banana", "--events", &error).has_value());
  EXPECT_NE(error.find("--events"), std::string::npos);
  EXPECT_NE(error.find("banana"), std::string::npos);
}

TEST(Strings, ParseIntSignedRange) {
  EXPECT_EQ(parse_int("0"), 0);
  EXPECT_EQ(parse_int("-1"), -1);
  EXPECT_EQ(parse_int("+25"), 25);
  EXPECT_EQ(parse_int("9223372036854775807"), INT64_MAX);
  EXPECT_EQ(parse_int("-9223372036854775808"), INT64_MIN);
  EXPECT_FALSE(parse_int("9223372036854775808").has_value());
  EXPECT_FALSE(parse_int("-9223372036854775809").has_value());
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("-").has_value());
  EXPECT_FALSE(parse_int("1.5").has_value());
}

// ------------------------------------------------ JSON \uXXXX + surrogates

TEST(Json, DecodesBasicPlaneEscapes) {
  const auto parsed = json_parse("\"\\u0041\\u00e9\\u20ac\"");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->string, "A\xC3\xA9\xE2\x82\xAC");  // A é €
}

TEST(Json, DecodesSurrogatePairsToFourByteUtf8) {
  // U+1F600 (😀) = \ud83d\ude00: the pair must decode to one code point,
  // F0 9F 98 80 — not six bytes of raw surrogate-encoded UTF-8.
  const auto parsed = json_parse("\"\\ud83d\\ude00\"");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->string, "\xF0\x9F\x98\x80");
}

TEST(Json, RejectsLoneSurrogates) {
  // A high surrogate with no low half, a bare low surrogate, and a high
  // surrogate followed by a non-surrogate escape are all parse errors —
  // the old decoder emitted them as invalid 3-byte UTF-8.
  EXPECT_FALSE(json_parse("\"\\ud83d\"").has_value());
  EXPECT_FALSE(json_parse("\"\\ude00\"").has_value());
  EXPECT_FALSE(json_parse("\"\\ud83dx\"").has_value());
  EXPECT_FALSE(json_parse("\"\\ud83d\\u0041\"").has_value());
  EXPECT_FALSE(json_parse("\"\\ud83d\\ud83d\"").has_value());
}

TEST(Json, SurrogatePairSurvivesObjectRoundTrip) {
  const auto parsed =
      json_parse("{\"name\": \"\\ud83d\\ude00 ok\", \"n\": 3}");
  ASSERT_TRUE(parsed.has_value());
  const JsonValue* name = parsed->find("name");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->string, "\xF0\x9F\x98\x80 ok");
}

}  // namespace
}  // namespace icsfuzz
