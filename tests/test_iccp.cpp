// Behavioural tests for the ICCP/TASE.2 stack, including the four injected
// Table-I vulnerabilities (3 SEGV, 1 heap buffer overflow).
#include <gtest/gtest.h>

#include "protocols/iccp/iccp_server.hpp"
#include "test_support.hpp"

namespace icsfuzz::proto {
namespace {

using test::run_armed;

Bytes tpkt(Bytes pdu) {
  ByteWriter writer;
  writer.write_u8(0x03);
  writer.write_u8(0x00);
  writer.write_u16(static_cast<std::uint16_t>(4 + pdu.size()), Endian::Big);
  writer.write_bytes(pdu);
  return writer.take();
}

Bytes tlv(std::uint8_t tag, Bytes value) {
  Bytes out{tag, static_cast<std::uint8_t>(value.size())};
  append(out, value);
  return out;
}

/// Valid initiate-Request: local detail 8000, max outstanding 5, version 1.
Bytes initiate_pdu() {
  Bytes params;
  append(params, tlv(0x80, {0x00, 0x00, 0x1F, 0x40}));
  append(params, tlv(0x81, {0x05}));
  append(params, tlv(0x82, {0x01}));
  return tlv(0xA8, params);
}

Bytes confirmed(std::uint8_t service_tag, Bytes service_body,
                std::uint32_t invoke_id = 1) {
  Bytes inner = tlv(0x02, {static_cast<std::uint8_t>(invoke_id >> 24),
                           static_cast<std::uint8_t>(invoke_id >> 16),
                           static_cast<std::uint8_t>(invoke_id >> 8),
                           static_cast<std::uint8_t>(invoke_id)});
  append(inner, tlv(service_tag, std::move(service_body)));
  return tlv(0xA0, inner);
}

Bytes session(std::initializer_list<Bytes> pdus) {
  Bytes out;
  for (const Bytes& pdu : pdus) append(out, tpkt(pdu));
  return out;
}

TEST(Iccp, BadTpktVersionDropped) {
  IccpServer server;
  Bytes packet = tpkt(initiate_pdu());
  packet[0] = 0x02;
  EXPECT_TRUE(run_armed(server, packet).response.empty());
}

TEST(Iccp, TpktLengthMismatchDropped) {
  IccpServer server;
  Bytes packet = tpkt(initiate_pdu());
  packet[3] = static_cast<std::uint8_t>(packet[3] + 1);
  EXPECT_TRUE(run_armed(server, packet).response.empty());
}

TEST(Iccp, AssociationNegotiation) {
  IccpServer server;
  const auto run = run_armed(server, tpkt(initiate_pdu()));
  ASSERT_FALSE(run.response.empty());
  EXPECT_EQ(run.response[0], 0xA9);  // initiate response
  EXPECT_TRUE(server.associated());
}

TEST(Iccp, AssociationRejectsBadDetail) {
  IccpServer server;
  Bytes params;
  append(params, tlv(0x80, {0x00, 0x00, 0x00, 0x10}));  // 16 < 1000
  append(params, tlv(0x81, {0x05}));
  append(params, tlv(0x82, {0x01}));
  const auto run = run_armed(server, tpkt(tlv(0xA8, params)));
  EXPECT_TRUE(run.response.empty());
  EXPECT_FALSE(server.associated());
}

TEST(Iccp, AssociationRejectsBadVersion) {
  IccpServer server;
  Bytes params;
  append(params, tlv(0x80, {0x00, 0x00, 0x1F, 0x40}));
  append(params, tlv(0x81, {0x05}));
  append(params, tlv(0x82, {0x07}));
  EXPECT_TRUE(run_armed(server, tpkt(tlv(0xA8, params))).response.empty());
}

TEST(Iccp, ServiceBeforeAssociationDropped) {
  IccpServer server;
  const Bytes read = confirmed(0xA4, tlv(0x80, {0x03}));
  EXPECT_TRUE(run_armed(server, tpkt(read)).response.empty());
}

TEST(Iccp, ReadNamedVariable) {
  IccpServer server;
  const auto run = run_armed(
      server, session({initiate_pdu(), confirmed(0xA4, tlv(0x80, {0x03}))}));
  ASSERT_FALSE(run.crashed());
  // Initiate response + confirmed response.
  EXPECT_GT(run.response.size(), 10u);
}

TEST(Iccp, ReadUnknownItemGivesError) {
  IccpServer server;
  const auto run = run_armed(
      server, session({initiate_pdu(), confirmed(0xA4, tlv(0x80, {0x30}))}));
  EXPECT_FALSE(run.crashed());
  // Confirmed-error PDU tag 0xA2 appears in the concatenated output.
  bool saw_error = false;
  for (std::size_t i = 0; i + 1 < run.response.size(); ++i) {
    if (run.response[i] == 0xA2) saw_error = true;
  }
  EXPECT_TRUE(saw_error);
}

TEST(Iccp, WriteToReadOnlyPointRefused) {
  IccpServer server;
  Bytes body = tlv(0x80, {0x01});  // transfer-set point: read-only
  append(body, tlv(0x81, {0x04}));
  append(body, tlv(0x82, {1, 2, 3, 4}));
  const auto run =
      run_armed(server, session({initiate_pdu(), confirmed(0xA5, body)}));
  EXPECT_FALSE(run.crashed());
  EXPECT_EQ(server.writes_accepted(), 0u);
}

TEST(Iccp, WriteWithinCapacityAccepted) {
  IccpServer server;
  Bytes body = tlv(0x80, {0x04});
  append(body, tlv(0x81, {0x04}));
  append(body, tlv(0x82, {1, 2, 3, 4}));
  const auto run =
      run_armed(server, session({initiate_pdu(), confirmed(0xA5, body)}));
  EXPECT_FALSE(run.crashed());
  EXPECT_EQ(server.writes_accepted(), 1u);
}

TEST(Iccp, NameListFromStart) {
  IccpServer server;
  const auto run = run_armed(
      server, session({initiate_pdu(), confirmed(0xA1, tlv(0x80, {0x00}))}));
  EXPECT_FALSE(run.crashed());
  // Response carries VisibleString names.
  bool saw_string = false;
  for (std::uint8_t byte : run.response) saw_string |= byte == 0x1A;
  EXPECT_TRUE(saw_string);
}

TEST(Iccp, ConcludeEndsAssociation) {
  IccpServer server;
  const auto run =
      run_armed(server, session({initiate_pdu(), tlv(0x8B, {})}));
  EXPECT_FALSE(run.crashed());
  EXPECT_FALSE(server.associated());
}

// ------------------------------------------------- Injected vulnerabilities

TEST(IccpBug, NameListContinuationOobIsSegv) {
  IccpServer server;
  Bytes body = tlv(0x80, {0x00});
  append(body, tlv(0x81, {0x09}));  // continue after entry 9 of 6
  const auto run =
      run_armed(server, session({initiate_pdu(), confirmed(0xA1, body)}));
  ASSERT_TRUE(run.crashed());
  EXPECT_TRUE(run.crashed_with(san::FaultKind::Segv));
}

TEST(IccpBug, NameListContinuationInRangeIsClean) {
  IccpServer server;
  Bytes body = tlv(0x80, {0x00});
  append(body, tlv(0x81, {0x02}));
  const auto run =
      run_armed(server, session({initiate_pdu(), confirmed(0xA1, body)}));
  EXPECT_FALSE(run.crashed());
}

TEST(IccpBug, StructuredReadComponentOobIsSegv) {
  IccpServer server;
  Bytes body = tlv(0x80, {0x03});
  append(body, tlv(0x81, {0x05}));  // component 5 of a 2-entry structure
  const auto run =
      run_armed(server, session({initiate_pdu(), confirmed(0xA4, body)}));
  ASSERT_TRUE(run.crashed());
  EXPECT_TRUE(run.crashed_with(san::FaultKind::Segv));
}

TEST(IccpBug, StructuredReadValidComponentIsClean) {
  IccpServer server;
  Bytes body = tlv(0x80, {0x03});
  append(body, tlv(0x81, {0x01}));
  const auto run =
      run_armed(server, session({initiate_pdu(), confirmed(0xA4, body)}));
  EXPECT_FALSE(run.crashed());
}

TEST(IccpBug, WriteDeclaredLengthOverflowsHeap) {
  IccpServer server;
  Bytes value(24, 0xEE);
  Bytes body = tlv(0x80, {0x04});
  append(body, tlv(0x81, {24}));  // declared 24 > 16-byte staging buffer
  append(body, tlv(0x82, value));
  const auto run =
      run_armed(server, session({initiate_pdu(), confirmed(0xA5, body)}));
  ASSERT_TRUE(run.crashed());
  EXPECT_TRUE(run.crashed_with(san::FaultKind::HeapBufferOverflow));
}

TEST(IccpBug, WriteDeclaredLengthWithinBufferIsClean) {
  IccpServer server;
  Bytes body = tlv(0x80, {0x04});
  append(body, tlv(0x81, {16}));
  append(body, tlv(0x82, Bytes(16, 0xEE)));
  const auto run =
      run_armed(server, session({initiate_pdu(), confirmed(0xA5, body)}));
  EXPECT_FALSE(run.crashed());
}

TEST(IccpBug, InformationReportOffsetOobIsSegv) {
  IccpServer server;
  Bytes body = tlv(0x80, {0x02});
  append(body, tlv(0x81, {0x00, 0x09}));  // second offset points past data
  append(body, tlv(0x82, {0xAA, 0xBB}));
  const auto run =
      run_armed(server, session({initiate_pdu(), tlv(0xA3, body)}));
  ASSERT_TRUE(run.crashed());
  EXPECT_TRUE(run.crashed_with(san::FaultKind::Segv));
}

TEST(IccpBug, InformationReportValidOffsetsClean) {
  IccpServer server;
  Bytes body = tlv(0x80, {0x02});
  append(body, tlv(0x81, {0x00, 0x01}));
  append(body, tlv(0x82, {0xAA, 0xBB}));
  const auto run =
      run_armed(server, session({initiate_pdu(), tlv(0xA3, body)}));
  EXPECT_FALSE(run.crashed());
}

TEST(IccpBug, FourSitesAreDistinct) {
  // Table I: 3 SEGV + 1 heap buffer overflow, four distinct sites.
  IccpServer server;
  std::set<std::uint32_t> sites;
  auto collect = [&](Bytes pdu) {
    const auto run = run_armed(server, session({initiate_pdu(), pdu}));
    if (!run.faults.empty()) sites.insert(run.faults[0].site);
  };
  {
    Bytes body = tlv(0x80, {0x00});
    append(body, tlv(0x81, {0x09}));
    collect(confirmed(0xA1, body));
  }
  {
    Bytes body = tlv(0x80, {0x03});
    append(body, tlv(0x81, {0x05}));
    collect(confirmed(0xA4, body));
  }
  {
    Bytes body = tlv(0x80, {0x04});
    append(body, tlv(0x81, {24}));
    append(body, tlv(0x82, Bytes(24, 0)));
    collect(confirmed(0xA5, body));
  }
  {
    Bytes body = tlv(0x80, {0x02});
    append(body, tlv(0x81, {0x00, 0x09}));
    append(body, tlv(0x82, {0xAA, 0xBB}));
    collect(tlv(0xA3, body));
  }
  EXPECT_EQ(sites.size(), 4u);
}

}  // namespace
}  // namespace icsfuzz::proto
