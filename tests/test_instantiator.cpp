// Tests for ModelInstantiator's two generation profiles: Peach's
// sequential field mutation (defaults + 1-2 aberrant fields) and
// independent full-field regeneration.
#include <gtest/gtest.h>

#include "fuzzer/instantiator.hpp"
#include "pits/pits.hpp"

namespace icsfuzz::fuzz {
namespace {

using model::Chunk;
using model::DataModel;
using model::NumberSpec;

/// Token + three free 2-byte fields with distinct defaults.
DataModel probe_model() {
  std::vector<Chunk> fields;
  fields.push_back(Chunk::token("Fc", 1, Endian::Big, 0x42));
  for (int i = 0; i < 3; ++i) {
    NumberSpec spec;
    spec.width = 2;
    spec.default_value = static_cast<std::uint64_t>(0x1110 * (i + 1));
    fields.push_back(Chunk::number("F" + std::to_string(i), spec));
  }
  return DataModel("probe", Chunk::block("root", std::move(fields)));
}

std::array<std::uint16_t, 3> fields_of(const Bytes& packet) {
  return {static_cast<std::uint16_t>((packet[1] << 8) | packet[2]),
          static_cast<std::uint16_t>((packet[3] << 8) | packet[4]),
          static_cast<std::uint16_t>((packet[5] << 8) | packet[6])};
}

TEST(SequentialProfile, MostFieldsHoldDefaults) {
  mutation::MutatorConfig config;
  config.sequential_mode_pct = 100;
  config.post_mutate_pct = 0;
  ModelInstantiator instantiator(config);
  const DataModel model = probe_model();
  Rng rng(1);
  int deviations_total = 0;
  for (int i = 0; i < 200; ++i) {
    const Bytes packet = instantiator.generate(model, rng);
    ASSERT_EQ(packet.size(), 7u);
    EXPECT_EQ(packet[0], 0x42);
    const auto fields = fields_of(packet);
    int deviations = 0;
    deviations += fields[0] != 0x1110;
    deviations += fields[1] != 0x2220;
    deviations += fields[2] != 0x3330;
    EXPECT_LE(deviations, 2) << "iteration " << i;
    deviations_total += deviations;
  }
  EXPECT_GT(deviations_total, 0);  // something must actually mutate
}

TEST(FullRandomProfile, FieldsVaryIndependently) {
  mutation::MutatorConfig config;
  config.sequential_mode_pct = 0;
  config.default_value_pct = 0;
  config.legal_value_pct = 0;
  config.boundary_pct = 0;
  ModelInstantiator instantiator(config);
  const DataModel model = probe_model();
  Rng rng(2);
  int all_three_deviate = 0;
  for (int i = 0; i < 100; ++i) {
    const auto fields = fields_of(instantiator.generate(model, rng));
    if (fields[0] != 0x1110 && fields[1] != 0x2220 && fields[2] != 0x3330) {
      ++all_three_deviate;
    }
  }
  EXPECT_GT(all_three_deviate, 90);  // fully random: defaults vanish
}

TEST(FreeLeaves, ExcludesTokensRelationsAndFixups) {
  const model::DataModelSet set = pits::modbus_pit();
  const model::DataModel* model = set.find("WriteMultipleRegisters");
  ASSERT_NE(model, nullptr);
  ModelInstantiator instantiator;
  Rng rng(3);
  model::InsTree tree = instantiator.instantiate(*model, rng);
  const auto leaves = ModelInstantiator::free_leaves(tree.root);
  for (const model::InsNode* leaf : leaves) {
    EXPECT_FALSE(leaf->rule->number_spec().is_token &&
                 leaf->rule->kind() == model::ChunkKind::Number);
    EXPECT_FALSE(leaf->rule->relation().active());
    EXPECT_FALSE(leaf->rule->fixup().active());
  }
  // WriteMultipleRegisters free leaves: TransactionId, UnitId, Address,
  // Values blob (FunctionCode/ProtocolId are tokens; Quantity/ByteCount
  // carry relations; Length carries a relation).
  EXPECT_EQ(leaves.size(), 4u);
}

TEST(SequentialProfile, ConstraintsStillHold) {
  mutation::MutatorConfig config;
  config.sequential_mode_pct = 100;
  ModelInstantiator instantiator(config);
  const model::DataModelSet set = pits::modbus_pit();
  Rng rng(4);
  for (const model::DataModel& model : set.models()) {
    for (int i = 0; i < 20; ++i) {
      const Bytes packet = instantiator.generate(model, rng);
      EXPECT_TRUE(model::parse_packet(model, packet).has_value())
          << model.name();
    }
  }
}

}  // namespace
}  // namespace icsfuzz::fuzz
