// Unit tests for src/coverage: the paper's instrumentation semantics
// (shared_mem[cur ^ prev]++, prev = cur >> 1), hit-count bucketing,
// virgin-map accumulation and path hashing.
#include <gtest/gtest.h>

#include "coverage/coverage_map.hpp"
#include "coverage/instrument.hpp"
#include "coverage/path_tracker.hpp"

namespace icsfuzz::cov {
namespace {

TEST(Instrument, HitsAreDroppedWhenUnarmed) {
  end_trace();  // ensure disarmed
  tls_event_count = 0;
  ICSFUZZ_COV_BLOCK_ID(42);
  EXPECT_EQ(tls_event_count, 1u);  // events still counted for hang budget
}

TEST(Instrument, PaperUpdateRule) {
  std::vector<std::uint8_t> map(kMapSize, 0);
  begin_trace(map.data());
  hit(100);
  // First hit: prev = 0, so cell (100 ^ 0) increments.
  EXPECT_EQ(map[100], 1);
  hit(200);
  // Second: prev = 100 >> 1 = 50, cell (200 ^ 50).
  EXPECT_EQ(map[200 ^ 50], 1);
  end_trace();
}

TEST(Instrument, EdgeDirectionalitity) {
  // A->B and B->A map to different cells (the xor/shift breaks symmetry).
  std::vector<std::uint8_t> ab(kMapSize, 0);
  begin_trace(ab.data());
  hit(100);
  hit(200);
  end_trace();
  std::vector<std::uint8_t> ba(kMapSize, 0);
  begin_trace(ba.data());
  hit(200);
  hit(100);
  end_trace();
  EXPECT_NE(ab, ba);
}

TEST(Instrument, SaturatesAt255) {
  std::vector<std::uint8_t> map(kMapSize, 0);
  begin_trace(map.data());
  for (int i = 0; i < 300; ++i) {
    tls_prev_location = 0;  // force the same cell every time
    hit(7);
  }
  end_trace();
  EXPECT_EQ(map[7], 255);
}

TEST(Instrument, BlockIdsAreMasked) {
  std::vector<std::uint8_t> map(kMapSize, 0);
  begin_trace(map.data());
  hit(0xFFFFFFFF);  // must not write out of bounds
  end_trace();
  SUCCEED();
}

TEST(Instrument, Fnv1aDistinctForDifferentSeeds) {
  constexpr std::uint32_t a = fnv1a("file.cpp", 1);
  constexpr std::uint32_t b = fnv1a("file.cpp", 2);
  static_assert(a != b);
  EXPECT_NE(a, b);
}

TEST(ClassifyCount, AflBuckets) {
  EXPECT_EQ(classify_count(0), 0);
  EXPECT_EQ(classify_count(1), 1);
  EXPECT_EQ(classify_count(2), 2);
  EXPECT_EQ(classify_count(3), 4);
  EXPECT_EQ(classify_count(4), 8);
  EXPECT_EQ(classify_count(7), 8);
  EXPECT_EQ(classify_count(8), 16);
  EXPECT_EQ(classify_count(15), 16);
  EXPECT_EQ(classify_count(16), 32);
  EXPECT_EQ(classify_count(31), 32);
  EXPECT_EQ(classify_count(32), 64);
  EXPECT_EQ(classify_count(127), 64);
  EXPECT_EQ(classify_count(128), 128);
  EXPECT_EQ(classify_count(255), 128);
}

class CoverageMapTest : public ::testing::Test {
 protected:
  void run_blocks(std::initializer_list<std::uint32_t> blocks) {
    map_.begin_execution();
    for (std::uint32_t block : blocks) hit(block);
    map_.end_execution();
  }
  CoverageMap map_;
};

TEST_F(CoverageMapTest, FirstTraceIsNew) {
  run_blocks({1, 2, 3});
  EXPECT_TRUE(map_.has_new_bits());
  EXPECT_TRUE(map_.accumulate());
  EXPECT_GT(map_.edges_covered(), 0u);
}

TEST_F(CoverageMapTest, RepeatTraceIsNotNew) {
  run_blocks({1, 2, 3});
  map_.accumulate();
  run_blocks({1, 2, 3});
  EXPECT_FALSE(map_.has_new_bits());
  EXPECT_FALSE(map_.accumulate());
}

TEST_F(CoverageMapTest, NewBlockIsNew) {
  run_blocks({1, 2});
  map_.accumulate();
  run_blocks({1, 2, 99});
  EXPECT_TRUE(map_.has_new_bits());
}

TEST_F(CoverageMapTest, LoopCountBucketChangeIsNew) {
  run_blocks({5, 6});  // edge once
  map_.accumulate();
  // Same blocks but the 5->6 edge taken twice: different bucket.
  map_.begin_execution();
  hit(5);
  hit(6);
  tls_prev_location = 5 >> 1;
  hit(6);
  map_.end_execution();
  EXPECT_TRUE(map_.has_new_bits());
}

TEST_F(CoverageMapTest, TraceHashStableForIdenticalExecutions) {
  run_blocks({10, 20, 30});
  const std::uint64_t first = map_.trace_hash();
  run_blocks({10, 20, 30});
  EXPECT_EQ(map_.trace_hash(), first);
}

TEST_F(CoverageMapTest, TraceHashDiffersForDifferentTraces) {
  run_blocks({10, 20, 30});
  const std::uint64_t first = map_.trace_hash();
  run_blocks({10, 20, 31});
  EXPECT_NE(map_.trace_hash(), first);
}

TEST_F(CoverageMapTest, TraceHashSensitiveToHitCounts) {
  run_blocks({10, 20});
  const std::uint64_t once = map_.trace_hash();
  map_.begin_execution();
  hit(10);
  hit(20);
  tls_prev_location = 10 >> 1;
  hit(20);
  map_.end_execution();
  EXPECT_NE(map_.trace_hash(), once);
}

TEST_F(CoverageMapTest, EmptyTraceHashesToConstant) {
  run_blocks({});
  EXPECT_EQ(map_.trace_hash(), map_.trace_hash());
  EXPECT_EQ(map_.trace_edge_count(), 0u);
}

TEST_F(CoverageMapTest, ResetAccumulatedForgets) {
  run_blocks({1, 2, 3});
  map_.accumulate();
  map_.reset_accumulated();
  EXPECT_EQ(map_.edges_covered(), 0u);
  run_blocks({1, 2, 3});
  EXPECT_TRUE(map_.has_new_bits());
}

TEST_F(CoverageMapTest, EdgeCountMatchesDistinctEdges) {
  // Blocks 10, 20, 30 produce cells 10^0=10, 20^5=17, 30^10=20 — three
  // distinct edges (small ids like 1,2,3 would collide: 1^0 == 3^1).
  run_blocks({10, 20, 30});
  EXPECT_EQ(map_.trace_edge_count(), 3u);
}

TEST(PathTracker, CountsDistinctHashes) {
  PathTracker tracker;
  EXPECT_TRUE(tracker.record(1));
  EXPECT_TRUE(tracker.record(2));
  EXPECT_FALSE(tracker.record(1));
  EXPECT_EQ(tracker.path_count(), 2u);
  EXPECT_TRUE(tracker.contains(2));
  EXPECT_FALSE(tracker.contains(3));
  tracker.clear();
  EXPECT_EQ(tracker.path_count(), 0u);
}

}  // namespace
}  // namespace icsfuzz::cov
