// Randomized stress coverage for two bounded-state mechanisms the hot
// path leans on, closing the gap noted in test_hotpath_alloc.cpp (which
// pins their deterministic corner cases only):
//
//   * GenerationalDedup's half-clear rotation, driven with adversarial
//     randomized insert streams against an exact two-generation oracle
//     model plus the properties the fuzzer actually relies on (the most
//     recent capacity/2 distinct packets always stay deduplicated, memory
//     stays bounded, evicted hashes become insertable again).
//
//   * The reader-side dirty-list rebuild (CoverageMap::adopt_external),
//     hammered with adversarial external word patterns — boundary words 0
//     and 8191, single-byte cells at word edges, dense smears, saturated
//     counters, repeated adopt/clear cycles — on every runnable kernel,
//     checking the rebuilt list stays complete, duplicate-free, and
//     analysis-equivalent to in-process tracing.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "coverage/coverage_map.hpp"
#include "coverage/instrument.hpp"
#include "fuzzer/dedup.hpp"
#include "tests/test_support.hpp"
#include "util/rng.hpp"

namespace icsfuzz {
namespace {

using test::dirty_list_defect;
using test::emit_pattern;
using test::runnable_kernels;
using Pattern = test::CellPattern;

// -- GenerationalDedup stress. --------------------------------------------

/// Exact reference model of the documented semantics: two generations,
/// inserts into `current`, rotation into `previous` at capacity/2.
class DedupOracle {
 public:
  explicit DedupOracle(std::size_t capacity)
      : capacity_(capacity < 2 ? 2 : capacity) {}

  bool insert(std::uint64_t hash) {
    if (contains(hash)) return false;
    current_.insert(hash);
    if (current_.size() >= capacity_ / 2) {
      previous_ = std::move(current_);
      current_.clear();
    }
    return true;
  }

  [[nodiscard]] bool contains(std::uint64_t hash) const {
    return current_.contains(hash) || previous_.contains(hash);
  }

  [[nodiscard]] std::size_t size() const {
    return current_.size() + previous_.size();
  }

 private:
  std::size_t capacity_;
  std::unordered_set<std::uint64_t> current_;
  std::unordered_set<std::uint64_t> previous_;
};

TEST(GenerationalDedupStress, RandomizedStreamsMatchTheOracle) {
  Rng rng(0xDED0);
  for (const std::size_t capacity : {std::size_t{2}, std::size_t{3},
                                     std::size_t{8}, std::size_t{64},
                                     std::size_t{1000}}) {
    SCOPED_TRACE("capacity " + std::to_string(capacity));
    fuzz::GenerationalDedup dedup(capacity);
    DedupOracle oracle(capacity);
    // A hash universe a few times the capacity makes repeats, rotations
    // and re-insertions of evicted hashes all common.
    const std::uint64_t universe = 3 * capacity + 7;
    for (int step = 0; step < 20000; ++step) {
      const std::uint64_t hash = 1 + rng.below(universe);
      ASSERT_EQ(dedup.insert(hash), oracle.insert(hash)) << "step " << step;
      ASSERT_EQ(dedup.size(), oracle.size()) << "step " << step;
      ASSERT_LE(dedup.size(), dedup.capacity()) << "step " << step;
      // Spot-check membership agreement on a random probe.
      const std::uint64_t probe = 1 + rng.below(universe);
      ASSERT_EQ(dedup.contains(probe), oracle.contains(probe))
          << "step " << step;
    }
  }
}

TEST(GenerationalDedupStress, RecentHalfAlwaysStaysDeduplicated) {
  // The load-bearing guarantee: at any moment the most recent capacity/2
  // distinct hashes are still known. Streams of distinct hashes make the
  // window exact.
  const std::size_t capacity = 128;
  fuzz::GenerationalDedup dedup(capacity);
  std::vector<std::uint64_t> inserted;
  Rng rng(0x5115);
  for (std::uint64_t h = 1; h <= 5000; ++h) {
    // Mix in re-inserts of known-recent hashes; they must never count as
    // fresh or disturb the window.
    if (!inserted.empty() && rng.chance(1, 4)) {
      const std::size_t back =
          rng.index(std::min<std::size_t>(inserted.size(), capacity / 4));
      ASSERT_FALSE(dedup.insert(inserted[inserted.size() - 1 - back]));
      continue;
    }
    ASSERT_TRUE(dedup.insert(h));
    inserted.push_back(h);
    const std::size_t window = std::min<std::size_t>(
        inserted.size(), capacity / 2);
    for (std::size_t i = 0; i < window; ++i) {
      ASSERT_TRUE(dedup.contains(inserted[inserted.size() - 1 - i]))
          << "recent hash " << inserted[inserted.size() - 1 - i]
          << " evicted too early after " << inserted.size() << " inserts";
    }
    ASSERT_LE(dedup.size(), capacity);
  }
}

TEST(GenerationalDedupStress, EvictedHashesBecomeInsertableAgain) {
  const std::size_t capacity = 64;
  fuzz::GenerationalDedup dedup(capacity);
  for (std::uint64_t h = 1; h <= 32; ++h) dedup.insert(h);
  // Two full generations of fresh hashes must evict the first batch.
  for (std::uint64_t h = 1000; h < 1000 + capacity; ++h) dedup.insert(h);
  for (std::uint64_t h = 1; h <= 32; ++h) {
    ASSERT_TRUE(dedup.insert(h)) << "hash " << h << " still resident";
  }
}

// -- Reader-side dirty-list rebuild stress. -------------------------------

/// Adversarial pattern generator: biases cells toward word boundaries
/// (words 0 and 8191, cell edges within words) and mixes sparse, dense and
/// saturated shapes.
Pattern adversarial_pattern(Rng& rng) {
  Pattern pattern;
  const int shape = static_cast<int>(rng.below(4));
  if (shape == 0) {
    // Boundary-focused: the words PR 3's reviews called out.
    for (const std::uint32_t word : {0u, 1u, 8190u, 8191u}) {
      const std::uint32_t base = word * 8;
      pattern.push_back({base, static_cast<std::uint32_t>(1 + rng.below(5))});
      pattern.push_back(
          {base + 7, static_cast<std::uint32_t>(1 + rng.below(5))});
    }
  } else if (shape == 1) {
    // Saturation: counters pinned at/beyond 0xFF.
    for (int i = 0; i < 6; ++i) {
      pattern.push_back({static_cast<std::uint32_t>(rng.below(cov::kMapSize)),
                         200 + static_cast<std::uint32_t>(rng.below(120))});
    }
  } else if (shape == 2) {
    // Dense smear: thousands of cells, many words fully populated.
    const std::uint32_t start =
        static_cast<std::uint32_t>(rng.below(cov::kMapSize - 4096));
    for (std::uint32_t c = 0; c < 3000; ++c) {
      pattern.push_back({start + c, 1});
    }
  } else {
    // Sparse scatter.
    const std::size_t edges = 1 + rng.index(64);
    for (std::size_t i = 0; i < edges; ++i) {
      pattern.push_back({static_cast<std::uint32_t>(rng.below(cov::kMapSize)),
                         static_cast<std::uint32_t>(1 + rng.below(8))});
    }
  }
  return pattern;
}

TEST(DirtyRebuildStress, AdversarialAdoptCyclesStayExactOnEveryKernel) {
  auto external = std::make_unique<std::uint64_t[]>(cov::kMapWords);
  auto* external_bytes = reinterpret_cast<std::uint8_t*>(external.get());
  for (const cov::simd::Kernel kind : runnable_kernels()) {
    SCOPED_TRACE(std::string("kernel ") +
                 std::string(cov::simd::kernel_name(kind)));
    Rng rng(0xD127);
    cov::CoverageMap adopted;
    adopted.use_kernel(kind);
    cov::CoverageMap reference;
    reference.use_kernel(kind);
    for (int round = 0; round < 60; ++round) {
      const Pattern pattern = adversarial_pattern(rng);

      std::memset(external_bytes, 0, cov::kMapSize);
      cov::begin_trace(external_bytes);
      emit_pattern(pattern);
      cov::end_trace();

      adopted.adopt_external(external.get());
      ASSERT_EQ(dirty_list_defect(adopted), "") << "round " << round;
      const cov::TraceSummary a = adopted.finalize_execution();

      reference.begin_execution();
      emit_pattern(pattern);
      const cov::TraceSummary b = reference.finalize_execution();

      ASSERT_EQ(a.trace_hash, b.trace_hash) << "round " << round;
      ASSERT_EQ(a.trace_edges, b.trace_edges) << "round " << round;
      ASSERT_EQ(a.new_coverage, b.new_coverage) << "round " << round;
      ASSERT_EQ(adopted.edges_covered(), reference.edges_covered())
          << "round " << round;
      ASSERT_EQ(0, std::memcmp(adopted.trace(), reference.trace(),
                               cov::kMapSize))
          << "round " << round;
      ASSERT_EQ(adopted.snapshot_accumulated(),
                reference.snapshot_accumulated())
          << "round " << round;
    }
  }
}

TEST(DirtyRebuildStress, StaleDirtyWordsNeverLeakAcrossAdoptions) {
  // A dense adoption followed by a tiny one: every word of the dense trace
  // must be cleared even though the new external map no longer lists it.
  auto external = std::make_unique<std::uint64_t[]>(cov::kMapWords);
  auto* external_bytes = reinterpret_cast<std::uint8_t*>(external.get());
  cov::CoverageMap map;

  Pattern dense_smear;
  for (std::uint32_t c = 0; c < cov::kMapSize; c += 3) {
    dense_smear.push_back({c, 1});
  }
  std::memset(external_bytes, 0, cov::kMapSize);
  cov::begin_trace(external_bytes);
  emit_pattern(dense_smear);
  cov::end_trace();
  map.adopt_external(external.get());
  map.finalize_execution();

  const Pattern tiny = {{8191u * 8 + 7, 1}};
  std::memset(external_bytes, 0, cov::kMapSize);
  cov::begin_trace(external_bytes);
  emit_pattern(tiny);
  cov::end_trace();
  map.adopt_external(external.get());
  ASSERT_EQ(dirty_list_defect(map), "");
  EXPECT_EQ(map.dirty_word_count(), 1u);
  EXPECT_EQ(map.dirty_words()[0], 8191u);
  const cov::TraceSummary summary = map.finalize_execution();
  EXPECT_EQ(summary.trace_edges, 1u);
}

}  // namespace
}  // namespace icsfuzz
