// Tests for src/distill/: greedy set-cover corpus minimization (cmin),
// trace-invariant seed trimming (tmin), sharded replay tracing, the
// deterministic replay verifier, and the auto-distill / parallel-campaign
// wiring.
#include <gtest/gtest.h>

#include <memory>

#include "distill/distill.hpp"
#include "distill/replay.hpp"
#include "fuzzer/fuzzer.hpp"
#include "model/instantiation.hpp"
#include "parallel/parallel_campaign.hpp"
#include "pits/pits.hpp"
#include "protocols/lib60870/cs101_server.hpp"
#include "protocols/modbus/modbus_server.hpp"

namespace icsfuzz::distill {
namespace {

fuzz::TargetFactory modbus_factory() {
  return [] { return std::make_unique<proto::ModbusServer>(); };
}

const model::DataModelSet& modbus_models() {
  static const model::DataModelSet models = pits::modbus_pit();
  return models;
}

/// Valuable seeds of two overlapping Peach* campaigns, then the whole pool
/// tripled — the redundancy profile of a long-running campaign that keeps
/// re-discovering known coverage.
std::vector<Bytes> redundant_corpus() {
  std::vector<Bytes> pool;
  for (const std::uint64_t seed : {11ULL, 12ULL}) {
    proto::ModbusServer server;
    fuzz::FuzzerConfig config;
    config.strategy = fuzz::Strategy::PeachStar;
    config.rng_seed = seed;
    fuzz::Fuzzer fuzzer(server, modbus_models(), config);
    fuzzer.run(4000);
    for (const fuzz::RetainedSeed& retained : fuzzer.retained_seeds()) {
      pool.push_back(retained.bytes);
    }
  }
  std::vector<Bytes> corpus;
  for (int copy = 0; copy < 3; ++copy) {
    corpus.insert(corpus.end(), pool.begin(), pool.end());
  }
  return corpus;
}

TEST(Cmin, ShrinksRedundantCorpusWithBitIdenticalCoverage) {
  const std::vector<Bytes> corpus = redundant_corpus();
  ASSERT_GE(corpus.size(), 30u);

  CminConfig config;
  config.workers = 2;
  const CminResult result = cmin(modbus_factory(), corpus, config);

  ASSERT_FALSE(result.seeds.empty());
  EXPECT_EQ(result.stats.seeds_before, corpus.size());
  EXPECT_EQ(result.stats.seeds_after, result.seeds.size());
  // The acceptance bar: at least a 40% reduction on the redundant corpus.
  EXPECT_GE(result.stats.reduction_ratio(), 0.40)
      << result.stats.seeds_after << " of " << result.stats.seeds_before;

  // The replay verifier must see the bit-identical edge map and path set.
  const ReplayReport full =
      replay_corpus_sharded(modbus_factory(), corpus, 2);
  const ReplayReport distilled =
      replay_corpus_sharded(modbus_factory(), result.seeds, 2);
  EXPECT_EQ(full.edges, distilled.edges);
  EXPECT_EQ(full.paths, distilled.paths);
  EXPECT_EQ(full.map_fingerprint, distilled.map_fingerprint);
  EXPECT_EQ(full.path_fingerprint, distilled.path_fingerprint);
  EXPECT_TRUE(full.same_coverage(distilled));
}

TEST(Cmin, EveryKeptSeedIsLoadBearing) {
  const std::vector<Bytes> corpus = redundant_corpus();
  CminResult result = cmin(modbus_factory(), corpus, {});
  ASSERT_GT(result.seeds.size(), 1u);

  const ReplayReport full = replay_corpus_sharded(modbus_factory(), corpus, 1);
  // Dropping any seed chosen by the greedy cover must lose coverage: each
  // pick contributed at least one uncovered element.
  std::vector<Bytes> crippled = result.seeds;
  crippled.pop_back();
  const auto target = modbus_factory()();
  const ReplayReport partial = replay_corpus(*target, crippled);
  EXPECT_FALSE(full.same_coverage(partial));
}

TEST(Cmin, DeterministicAndIdempotent) {
  const std::vector<Bytes> corpus = redundant_corpus();
  const CminResult first = cmin(modbus_factory(), corpus, {});
  const CminResult second = cmin(modbus_factory(), corpus, {});
  EXPECT_EQ(first.kept, second.kept);

  // Distilling a distilled corpus changes nothing.
  const CminResult again = cmin(modbus_factory(), first.seeds, {});
  EXPECT_EQ(again.seeds.size(), first.seeds.size());
}

TEST(Cmin, EmptyCorpus) {
  const CminResult result = cmin(modbus_factory(), {}, {});
  EXPECT_TRUE(result.kept.empty());
  EXPECT_TRUE(result.seeds.empty());
  EXPECT_EQ(result.stats.reduction_ratio(), 0.0);
}

TEST(Trace, ShardedCollectionMatchesSequential) {
  const std::vector<Bytes> corpus = redundant_corpus();
  proto::ModbusServer server;
  const std::vector<SeedTrace> sequential = collect_traces(server, corpus);
  const std::vector<SeedTrace> sharded =
      collect_traces_sharded(modbus_factory(), corpus, 4);
  ASSERT_EQ(sequential.size(), sharded.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].index, sharded[i].index);
    EXPECT_EQ(sequential[i].trace_hash, sharded[i].trace_hash) << i;
    EXPECT_EQ(sequential[i].elements, sharded[i].elements) << i;
    EXPECT_EQ(sequential[i].crashed, sharded[i].crashed) << i;
  }
}

TEST(Tmin, RemovesPaddingWhileTraceHashStaysInvariant) {
  proto::ModbusServer server;
  const model::DataModel& model = modbus_models().models().front();
  Bytes padded = model::default_instance(model).serialize();
  const std::size_t real_size = padded.size();
  padded.insert(padded.end(), 24, 0x5A);  // trailing junk past the ADU

  // Precondition of the shrink expectation: the server ignores the junk.
  fuzz::Executor probe;
  const std::uint64_t clean_hash =
      probe.run(server, Bytes(padded.begin(),
                              padded.begin() +
                                  static_cast<std::ptrdiff_t>(real_size)))
          .trace_hash;
  const std::uint64_t padded_hash = probe.run(server, padded).trace_hash;
  ASSERT_EQ(clean_hash, padded_hash);

  const TminResult trimmed = tmin(server, padded);
  EXPECT_TRUE(trimmed.shrunk());
  EXPECT_LE(trimmed.seed.size(), real_size);
  EXPECT_GT(trimmed.executions, 1u);

  // The invariant the trimmer promises: identical whole-trace hash.
  fuzz::Executor verify;
  EXPECT_EQ(verify.run(server, trimmed.seed).trace_hash, padded_hash);
}

TEST(Replay, ReportFromTracesMatchesLiveReplay) {
  const std::vector<Bytes> corpus = redundant_corpus();
  const std::vector<SeedTrace> traces =
      collect_traces_sharded(modbus_factory(), corpus, 2);
  const ReplayReport derived = report_from_traces(traces);
  const ReplayReport live = replay_corpus_sharded(modbus_factory(), corpus, 2);
  EXPECT_TRUE(derived.same_coverage(live));
  EXPECT_EQ(derived.crashes, live.crashes);
  EXPECT_EQ(derived.seeds, live.seeds);
  EXPECT_EQ(derived.executions, live.executions);
}

TEST(Replay, DeterministicAcrossRounds) {
  const std::vector<Bytes> corpus = redundant_corpus();
  EXPECT_TRUE(verify_deterministic(modbus_factory(), corpus, 3));
}

TEST(Replay, CrashReproductionFromCrashDb) {
  proto::Cs101Server server;
  const model::DataModelSet models = pits::cs101_pit();
  fuzz::FuzzerConfig config;
  config.strategy = fuzz::Strategy::PeachStar;
  config.rng_seed = 5;
  fuzz::Fuzzer fuzzer(server, models, config);
  fuzzer.run(25000);
  ASSERT_GT(fuzzer.crashes().unique_count(), 0u);

  for (const fuzz::CrashRecord* record : fuzzer.crashes().records()) {
    proto::Cs101Server replay_server;
    const CrashReplay replay = replay_crash(replay_server, record->reproducer);
    EXPECT_TRUE(replay.reproduced);
    ASSERT_FALSE(replay.faults.empty());
    EXPECT_EQ(replay.faults.front().kind, record->kind);
    EXPECT_EQ(replay.faults.front().site, record->site);
  }
}

TEST(Replay, CrackIntoCorpusWarmStartsPuzzleStore) {
  const std::vector<Bytes> corpus = redundant_corpus();
  const CminResult result = cmin(modbus_factory(), corpus, {});
  fuzz::PuzzleCorpus puzzles;
  Rng rng(7);
  const std::size_t added =
      crack_into_corpus(modbus_models(), result.seeds, puzzles, rng);
  EXPECT_GT(added, 0u);
  EXPECT_FALSE(puzzles.empty());
}

TEST(AutoDistill, PrunesRetainedPoolWithoutChangingTrajectory) {
  proto::ModbusServer plain_server;
  fuzz::FuzzerConfig plain_config;
  plain_config.rng_seed = 21;
  fuzz::Fuzzer plain(plain_server, modbus_models(), plain_config);
  plain.run(6000);

  proto::ModbusServer distilling_server;
  fuzz::FuzzerConfig distilling_config;
  distilling_config.rng_seed = 21;
  distilling_config.distill_interval = 1000;
  fuzz::Fuzzer distilling(distilling_server, modbus_models(),
                          distilling_config);
  distilling.run(6000);

  EXPECT_GE(distilling.distill_passes(), 5u);
  // Replays draw no randomness, so the campaign trajectory is identical.
  EXPECT_EQ(plain.path_count(), distilling.path_count());
  EXPECT_EQ(plain.executor().edge_count(), distilling.executor().edge_count());
  EXPECT_EQ(plain.crashes().unique_count(),
            distilling.crashes().unique_count());
  EXPECT_EQ(plain.corpus().size(), distilling.corpus().size());
  // Only the retained pool shrinks: every drop is accounted for (neither
  // run reaches the eviction cap at this budget).
  EXPECT_EQ(distilling.retained_seeds().size() + distilling.distill_dropped(),
            plain.retained_seeds().size());
}

TEST(ParallelDistill, FinalDistilledCorpusReplaysGlobalEdgeMap) {
  par::ParallelCampaignConfig config;
  config.workers = 2;
  config.iterations_per_worker = 3000;
  config.base_seed = 1000;
  config.distill_final = true;
  par::ParallelCampaign campaign(modbus_factory(), modbus_models(), config);
  const par::ParallelCampaignResult result = campaign.run();

  ASSERT_FALSE(result.distilled_corpus.empty());
  EXPECT_GT(result.distill_stats.seeds_before,
            result.distill_stats.seeds_after);

  // Every accumulated edge of a Peach* campaign came from an execution
  // that was retained as a valuable seed, so the distilled corpus must
  // replay the campaign's global edge map exactly.
  const ReplayReport replayed =
      replay_corpus_sharded(modbus_factory(), result.distilled_corpus, 2);
  EXPECT_EQ(replayed.edges, result.global_edges);
}

}  // namespace
}  // namespace icsfuzz::distill
