// Tests for the XML mini-DOM and the Pit front-end that turns Peach-style
// XML format specifications into DataModel sets.
#include <gtest/gtest.h>

#include "model/instantiation.hpp"
#include "model/pit_parser.hpp"
#include "model/xml.hpp"

namespace icsfuzz::model {
namespace {

// ---------------------------------------------------------------------- XML

TEST(Xml, ParsesElementsAttributesAndText) {
  const auto result = parse_xml(
      R"(<?xml version="1.0"?>
      <Root a="1" b="two">
        <Child name='x'/>
        text here
        <Child name="y">inner</Child>
      </Root>)");
  ASSERT_TRUE(result.ok()) << result.error;
  const XmlElement& root = *result.root;
  EXPECT_EQ(root.name, "Root");
  EXPECT_EQ(root.attr("a"), "1");
  EXPECT_EQ(root.attr("b"), "two");
  EXPECT_FALSE(root.attr("absent").has_value());
  ASSERT_EQ(root.children_named("Child").size(), 2u);
  EXPECT_EQ(root.first_child("Child")->attr("name"), "x");
  EXPECT_NE(root.text.find("text here"), std::string::npos);
  EXPECT_EQ(root.children[1].text, "inner");
}

TEST(Xml, ParsesComments) {
  const auto result = parse_xml("<A><!-- nothing --><B/></A>");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.root->children.size(), 1u);
}

TEST(Xml, DecodesEntities) {
  const auto result = parse_xml(R"(<A v="&lt;&amp;&gt;">&quot;x&apos;</A>)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.root->attr("v"), "<&>");
  EXPECT_EQ(result.root->text, "\"x'");
}

TEST(Xml, RejectsMismatchedTags) {
  EXPECT_FALSE(parse_xml("<A><B></A></B>").ok());
}

TEST(Xml, RejectsUnterminatedElement) {
  EXPECT_FALSE(parse_xml("<A><B>").ok());
}

TEST(Xml, RejectsTrailingContent) {
  EXPECT_FALSE(parse_xml("<A/><B/>").ok());
}

TEST(Xml, RejectsUnquotedAttribute) {
  EXPECT_FALSE(parse_xml("<A v=1/>").ok());
}

TEST(Xml, ErrorsIncludeOffset) {
  const auto result = parse_xml("<A><B></A>");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("offset"), std::string::npos);
}

// ---------------------------------------------------------------------- Pit

constexpr const char* kMiniPit = R"(
<Peach>
  <DataModel name="Frame" opcode="3">
    <Number name="Magic" size="16" token="true" value="0xABCD"/>
    <Number name="Length" size="16">
      <Relation type="sizeof" of="Body"/>
    </Number>
    <Block name="Body">
      <Number name="Kind" size="8" values="1,2,3" value="1" tag="kind"/>
      <Blob name="Payload" maxGenerated="8"/>
    </Block>
    <Number name="Crc" size="32">
      <Fixup class="Crc32Fixup" ref="Body"/>
    </Number>
  </DataModel>
</Peach>
)";

TEST(Pit, ParsesMiniPit) {
  const PitParseResult result = parse_pit(kMiniPit);
  ASSERT_TRUE(result.ok()) << result.error;
  ASSERT_EQ(result.models.size(), 1u);
  const DataModel& model = *result.models.find("Frame");
  EXPECT_EQ(model.opcode(), 3u);
  ASSERT_NE(model.find("Kind"), nullptr);
  EXPECT_EQ(model.find("Kind")->tag(), "kind");
  EXPECT_EQ(model.find("Kind")->number_spec().legal_values.size(), 3u);
  EXPECT_EQ(model.find("Magic")->number_spec().is_token, true);
  EXPECT_EQ(model.find("Length")->relation().kind, RelationKind::SizeOf);
  EXPECT_EQ(model.find("Crc")->fixup().kind, FixupKind::Crc32);
}

TEST(Pit, ParsedModelGeneratesAndReparses) {
  const PitParseResult result = parse_pit(kMiniPit);
  ASSERT_TRUE(result.ok());
  const DataModel& model = result.models.at(0);
  const Bytes wire = default_instance(model).serialize();
  EXPECT_TRUE(parse_packet(model, wire).has_value());
}

TEST(Pit, SizeAttributeIsBits) {
  const auto result = parse_pit(
      R"(<Peach><DataModel name="m"><Number name="n" size="24"/></DataModel></Peach>)");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.models.at(0).find("n")->number_spec().width, 3u);
}

TEST(Pit, RejectsNonByteSizes) {
  const auto result = parse_pit(
      R"(<Peach><DataModel name="m"><Number name="n" size="12"/></DataModel></Peach>)");
  EXPECT_FALSE(result.ok());
}

TEST(Pit, RejectsUnknownElement) {
  const auto result = parse_pit(
      R"(<Peach><DataModel name="m"><Widget name="w"/></DataModel></Peach>)");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("Widget"), std::string::npos);
}

TEST(Pit, RejectsMissingNames) {
  EXPECT_FALSE(parse_pit(R"(<Peach><DataModel name="m"><Number size="8"/></DataModel></Peach>)").ok());
  EXPECT_FALSE(parse_pit(R"(<Peach><DataModel><Number name="n" size="8"/></DataModel></Peach>)").ok());
}

TEST(Pit, RejectsDanglingRelation) {
  const auto result = parse_pit(
      R"(<Peach><DataModel name="m">
           <Number name="n" size="8"><Relation type="sizeof" of="ghost"/></Number>
         </DataModel></Peach>)");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("ghost"), std::string::npos);
}

TEST(Pit, RejectsBadFixupClass) {
  const auto result = parse_pit(
      R"(<Peach><DataModel name="m">
           <Number name="n" size="16"><Fixup class="Nope" ref="n"/></Number>
         </DataModel></Peach>)");
  EXPECT_FALSE(result.ok());
}

TEST(Pit, RejectsEmptyDocument) {
  EXPECT_FALSE(parse_pit("<Peach></Peach>").ok());
  EXPECT_FALSE(parse_pit("<NotPeach/>").ok());
}

TEST(Pit, StringAndChoiceElements) {
  const auto result = parse_pit(R"(
    <Peach>
      <DataModel name="m">
        <Choice name="c">
          <Block name="alt1">
            <Number name="t1" size="8" token="true" value="1"/>
            <String name="s" length="4" value="abcd"/>
          </Block>
          <Block name="alt2">
            <Number name="t2" size="8" token="true" value="2"/>
            <String name="z" nullTerminated="true" value="hi"/>
          </Block>
        </Choice>
      </DataModel>
    </Peach>)");
  ASSERT_TRUE(result.ok()) << result.error;
  const DataModel& model = result.models.at(0);
  EXPECT_EQ(model.find("c")->kind(), ChunkKind::Choice);
  EXPECT_EQ(model.find("s")->string_spec().length, 4u);
  EXPECT_TRUE(model.find("z")->string_spec().null_terminated);

  // Parse both alternatives.
  EXPECT_TRUE(parse_packet(model, Bytes{1, 'a', 'b', 'c', 'd'}).has_value());
  EXPECT_TRUE(parse_packet(model, Bytes{2, 'h', 'i', 0}).has_value());
  EXPECT_FALSE(parse_packet(model, Bytes{3, 0}).has_value());
}

TEST(Pit, BlobValueHex) {
  const auto result = parse_pit(
      R"(<Peach><DataModel name="m"><Blob name="b" valueHex="dead beef"/></DataModel></Peach>)");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.models.at(0).find("b")->blob_spec().default_value,
            (Bytes{0xDE, 0xAD, 0xBE, 0xEF}));
}

TEST(Pit, RelationUnitAndBias) {
  const auto result = parse_pit(R"(
    <Peach><DataModel name="m">
      <Number name="len" size="8"><Relation type="countof" of="b" unit="2" bias="-1"/></Number>
      <Blob name="b" unit="2"/>
    </DataModel></Peach>)");
  ASSERT_TRUE(result.ok()) << result.error;
  const Relation& rel = result.models.at(0).find("len")->relation();
  EXPECT_EQ(rel.kind, RelationKind::CountOf);
  EXPECT_EQ(rel.unit, 2u);
  EXPECT_EQ(rel.bias, -1);
}

TEST(Pit, FileLoaderReportsMissingFile) {
  const PitParseResult result = parse_pit_file("/nonexistent/path.xml");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("cannot open"), std::string::npos);
}

TEST(Pit, ShippedModbusXmlLoadsAndRoundTrips) {
  const PitParseResult result =
      parse_pit_file(std::string(ICSFUZZ_PITS_DIR) + "/modbus.xml");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.models.size(), 4u);
  ASSERT_FALSE(result.models.validate().has_value());
  for (const DataModel& model : result.models.models()) {
    const Bytes wire = default_instance(model).serialize();
    EXPECT_TRUE(parse_packet(model, wire).has_value()) << model.name();
  }
}

TEST(Pit, ShippedIec104XmlLoadsAndRoundTrips) {
  const PitParseResult result =
      parse_pit_file(std::string(ICSFUZZ_PITS_DIR) + "/iec104.xml");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.models.size(), 3u);
  ASSERT_FALSE(result.models.validate().has_value());
  for (const DataModel& model : result.models.models()) {
    const Bytes wire = default_instance(model).serialize();
    EXPECT_TRUE(parse_packet(model, wire).has_value()) << model.name();
  }
}

TEST(Pit, ShippedCs101XmlLoadsAndRoundTrips) {
  const PitParseResult result =
      parse_pit_file(std::string(ICSFUZZ_PITS_DIR) + "/cs101.xml");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.models.size(), 3u);
  ASSERT_FALSE(result.models.validate().has_value());
  for (const DataModel& model : result.models.models()) {
    const Bytes wire = default_instance(model).serialize();
    EXPECT_TRUE(parse_packet(model, wire).has_value()) << model.name();
  }
}

TEST(Pit, ShippedDnp3XmlLoadsAndRoundTrips) {
  const PitParseResult result =
      parse_pit_file(std::string(ICSFUZZ_PITS_DIR) + "/dnp3.xml");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.models.size(), 3u);
  ASSERT_FALSE(result.models.validate().has_value());
  for (const DataModel& model : result.models.models()) {
    const Bytes wire = default_instance(model).serialize();
    EXPECT_TRUE(parse_packet(model, wire).has_value()) << model.name();
  }
  // The link frames must carry real DNP3 CRC fixups, not placeholders.
  const DataModel* read = result.models.find("DnpReadAllObjects");
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->find("HeaderCrc")->fixup().kind, FixupKind::CrcDnp3);
  EXPECT_EQ(read->find("BlockCrc")->fixup().kind, FixupKind::CrcDnp3);
}

TEST(Pit, ShippedIccpXmlLoadsAndRoundTrips) {
  const PitParseResult result =
      parse_pit_file(std::string(ICSFUZZ_PITS_DIR) + "/iccp.xml");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.models.size(), 2u);
  ASSERT_FALSE(result.models.validate().has_value());
  for (const DataModel& model : result.models.models()) {
    const Bytes wire = default_instance(model).serialize();
    EXPECT_TRUE(parse_packet(model, wire).has_value()) << model.name();
  }
}

TEST(Pit, ShippedMmsXmlLoadsAndRoundTrips) {
  const PitParseResult result =
      parse_pit_file(std::string(ICSFUZZ_PITS_DIR) + "/mms.xml");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.models.size(), 2u);
  ASSERT_FALSE(result.models.validate().has_value());
  for (const DataModel& model : result.models.models()) {
    const Bytes wire = default_instance(model).serialize();
    EXPECT_TRUE(parse_packet(model, wire).has_value()) << model.name();
  }
}

TEST(Pit, ShippedHvacXmlLoads) {
  const PitParseResult result =
      parse_pit_file(std::string(ICSFUZZ_PITS_DIR) + "/hvac.xml");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.models.size(), 2u);
  const DataModel* set_model = result.models.find("SetSetpoint");
  ASSERT_NE(set_model, nullptr);
  EXPECT_EQ(set_model->find("Check")->fixup().kind, FixupKind::Fletcher16);
}

}  // namespace
}  // namespace icsfuzz::model
