// Property suite for the session framing layer (src/session/framing.hpp,
// reassembler.hpp) — the segmentation oracle the TCP session transport
// rests on:
//
//   * for ANY segmentation of a valid frame stream (every split point,
//     byte-at-a-time writes, coalesced frames, random chunking) the
//     reassembler emits the identical message sequence and residue as
//     split_stream() of the whole stream,
//   * malformed and oversized length fields are rejected into a raw tail
//     without hangs or allocation blowups (buffered bytes never exceed
//     bytes actually received, oversized streams clip deterministically
//     at kMaxSessionStreamBytes),
//   * the message cap collapses pathological many-tiny-frame streams into
//     a raw tail on both sides identically.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "session/framing.hpp"
#include "session/reassembler.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace icsfuzz {
namespace {

using session::Framing;
using session::MessageRange;
using session::Peek;
using session::StreamReassembler;

/// All framings with real header rules (kNone treats the stream as one
/// message and has no interesting segmentation behaviour).
const Framing kFramings[] = {Framing::kApci, Framing::kMbap, Framing::kTpkt,
                             Framing::kDnp3Link};

// -- Frame builders (valid frames per framing.hpp's header rules). --------

Bytes apci_frame(std::uint8_t body_len, std::uint8_t fill) {
  Bytes frame = {0x68, body_len};
  frame.insert(frame.end(), body_len, fill);
  return frame;
}

Bytes mbap_frame(std::uint16_t declared, std::uint8_t fill) {
  // declared counts unit id + PDU; total frame = 6 + declared.
  Bytes frame = {0x00, 0x01, 0x00, 0x00,
                 static_cast<std::uint8_t>(declared >> 8),
                 static_cast<std::uint8_t>(declared & 0xFF)};
  frame.insert(frame.end(), declared, fill);
  return frame;
}

Bytes tpkt_frame(std::uint16_t total, std::uint8_t fill) {
  Bytes frame = {0x03, 0x00, static_cast<std::uint8_t>(total >> 8),
                 static_cast<std::uint8_t>(total & 0xFF)};
  frame.insert(frame.end(), total - 4, fill);
  return frame;
}

Bytes dnp3_frame(std::uint8_t declared, std::uint8_t fill) {
  // declared >= 5; user = declared - 5; frame = 10 + user + 2*ceil(user/16).
  const std::size_t user = declared - 5;
  const std::size_t total = 10 + user + 2 * ((user + 15) / 16);
  Bytes frame = {0x05, 0x64, declared, 0xC4, 0x01, 0x00, 0x02, 0x00,
                 0xAA, 0xBB};
  frame.insert(frame.end(), total - 10, fill);
  return frame;
}

/// A short valid multi-frame stream for each framing, plus an optional
/// incomplete tail.
Bytes sample_stream(Framing framing, bool with_tail) {
  Bytes stream;
  switch (framing) {
    case Framing::kApci:
      append(stream, ByteSpan(apci_frame(4, 0x11)));
      append(stream, ByteSpan(apci_frame(0, 0x00)));
      append(stream, ByteSpan(apci_frame(9, 0x22)));
      if (with_tail) {
        const Bytes tail = {0x68, 0x0A, 0x01};  // 9 more bytes never arrive
        append(stream, ByteSpan(tail));
      }
      break;
    case Framing::kMbap:
      append(stream, ByteSpan(mbap_frame(3, 0x33)));
      append(stream, ByteSpan(mbap_frame(1, 0x44)));
      append(stream, ByteSpan(mbap_frame(7, 0x55)));
      if (with_tail) {
        const Bytes tail = {0x00, 0x02, 0x00};  // header cut mid-way
        append(stream, ByteSpan(tail));
      }
      break;
    case Framing::kTpkt:
      append(stream, ByteSpan(tpkt_frame(7, 0x66)));
      append(stream, ByteSpan(tpkt_frame(4, 0x00)));
      append(stream, ByteSpan(tpkt_frame(12, 0x77)));
      if (with_tail) {
        const Bytes tail = {0x03, 0x00, 0x00, 0x20, 0x01};
        append(stream, ByteSpan(tail));
      }
      break;
    default:
      append(stream, ByteSpan(dnp3_frame(5, 0x88)));
      append(stream, ByteSpan(dnp3_frame(21, 0x99)));
      append(stream, ByteSpan(dnp3_frame(6, 0xAA)));
      if (with_tail) {
        const Bytes tail = {0x05, 0x64, 0x10, 0xC4};
        append(stream, ByteSpan(tail));
      }
      break;
  }
  return stream;
}

/// Expected decomposition of `stream`: complete-frame byte strings plus
/// the residue bytes, straight from the canonical splitter.
struct Canonical {
  std::vector<Bytes> frames;
  Bytes residue;
};

Canonical canonical_split(Framing framing, const Bytes& stream) {
  std::vector<MessageRange> ranges;
  const std::size_t residue_index =
      session::split_stream(framing, ByteSpan(stream), ranges);
  Canonical out;
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    const std::uint8_t* data = stream.data() + ranges[i].offset;
    if (i == residue_index) {
      out.residue.assign(data, data + ranges[i].length);
    } else {
      out.frames.emplace_back(data, data + ranges[i].length);
    }
  }
  return out;
}

/// Feeds `stream` to a reassembler in the given chunk sizes and checks the
/// emitted frames + residue equal the canonical split.
void expect_matches_canonical(Framing framing, const Bytes& stream,
                              const std::vector<std::size_t>& chunks,
                              const std::string& label) {
  const Canonical expected = canonical_split(framing, stream);
  std::vector<Bytes> frames;
  StreamReassembler reassembler(
      framing, [&](ByteSpan frame) {
        frames.emplace_back(frame.begin(), frame.end());
      });
  std::size_t offset = 0;
  for (const std::size_t chunk : chunks) {
    const std::size_t take = std::min(chunk, stream.size() - offset);
    reassembler.feed(ByteSpan(stream.data() + offset, take));
    offset += take;
    if (offset == stream.size()) break;
  }
  ASSERT_EQ(offset, stream.size()) << label << ": chunks must cover stream";
  const ByteSpan residue = reassembler.finish();
  EXPECT_EQ(frames, expected.frames) << label;
  EXPECT_EQ(Bytes(residue.begin(), residue.end()), expected.residue) << label;
}

// -- Segmentation properties. ---------------------------------------------

TEST(Reassembler, EverySplitPointMatchesCanonicalSplit) {
  for (const Framing framing : kFramings) {
    for (const bool with_tail : {false, true}) {
      const Bytes stream = sample_stream(framing, with_tail);
      for (std::size_t split = 0; split <= stream.size(); ++split) {
        expect_matches_canonical(
            framing, stream, {split, stream.size() - split},
            "framing=" + std::string(session::to_string(framing)) +
                " tail=" + std::to_string(with_tail) +
                " split=" + std::to_string(split));
      }
    }
  }
}

TEST(Reassembler, ByteAtATimeEqualsCoalesced) {
  for (const Framing framing : kFramings) {
    for (const bool with_tail : {false, true}) {
      const Bytes stream = sample_stream(framing, with_tail);
      const std::vector<std::size_t> single_bytes(stream.size(), 1);
      const std::string label =
          "framing=" + std::string(session::to_string(framing));
      expect_matches_canonical(framing, stream, single_bytes,
                               label + " byte-at-a-time");
      expect_matches_canonical(framing, stream, {stream.size()},
                               label + " coalesced");
    }
  }
}

TEST(Reassembler, RandomChunkingFuzz) {
  Rng rng(0xF4A6);
  for (const Framing framing : kFramings) {
    for (int round = 0; round < 64; ++round) {
      // Random frame mix, then random segmentation of the concatenation.
      Bytes stream;
      const std::uint64_t frames = rng.between(1, 6);
      for (std::uint64_t f = 0; f < frames; ++f) {
        switch (framing) {
          case Framing::kApci:
            append(stream, ByteSpan(apci_frame(
                               static_cast<std::uint8_t>(rng.below(32)),
                               rng.byte())));
            break;
          case Framing::kMbap:
            append(stream, ByteSpan(mbap_frame(
                               static_cast<std::uint16_t>(rng.between(1, 40)),
                               rng.byte())));
            break;
          case Framing::kTpkt:
            append(stream, ByteSpan(tpkt_frame(
                               static_cast<std::uint16_t>(rng.between(4, 48)),
                               rng.byte())));
            break;
          default:
            append(stream, ByteSpan(dnp3_frame(
                               static_cast<std::uint8_t>(rng.between(5, 60)),
                               rng.byte())));
            break;
        }
      }
      if (rng.chance(1, 2)) {  // chop the last frame into a tail
        stream.resize(stream.size() - rng.between(1, 3));
      }
      std::vector<std::size_t> chunks;
      std::size_t remaining = stream.size();
      while (remaining > 0) {
        const std::size_t take =
            static_cast<std::size_t>(rng.between(1, remaining));
        chunks.push_back(take);
        remaining -= take;
      }
      expect_matches_canonical(
          framing, stream, chunks,
          "fuzz framing=" + std::string(session::to_string(framing)) +
              " round=" + std::to_string(round));
    }
  }
}

// -- Malformed / oversized inputs. ----------------------------------------

TEST(Reassembler, MalformedHeadersBecomeRawTailEverywhere) {
  struct Case {
    Framing framing;
    Bytes bytes;
  };
  const Case cases[] = {
      // MBAP declared length 0 — the server's drain loop breaks malformed.
      {Framing::kMbap, {0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x01}},
      // TPKT total length below the header size.
      {Framing::kTpkt, {0x03, 0x00, 0x00, 0x03, 0xFF, 0xFF}},
      // DNP3 declared length below the minimum of 5.
      {Framing::kDnp3Link, {0x05, 0x64, 0x04, 0xC4, 0x01, 0x00, 0x02, 0x00,
                            0xAA, 0xBB, 0x00, 0x00}},
  };
  for (const Case& c : cases) {
    // Prefix with one valid frame: the frame must still be emitted, the
    // malformed remainder collapses to the residue. Check at every split.
    Bytes stream = sample_stream(c.framing, false);
    append(stream, ByteSpan(c.bytes));
    const Canonical expected = canonical_split(c.framing, stream);
    ASSERT_EQ(expected.frames.size(), 3u);
    ASSERT_EQ(expected.residue.size(), c.bytes.size());
    for (std::size_t split = 0; split <= stream.size(); ++split) {
      expect_matches_canonical(c.framing, stream,
                               {split, stream.size() - split},
                               "malformed split=" + std::to_string(split));
    }
    // Raw-tail mode latches: nothing after the malformed header re-frames.
    StreamReassembler reassembler(c.framing, [](ByteSpan) {});
    reassembler.feed(ByteSpan(stream));
    EXPECT_TRUE(reassembler.raw_tail());
    const Bytes more = sample_stream(c.framing, false);
    reassembler.feed(ByteSpan(more));
    EXPECT_EQ(reassembler.frames(), 3u);
    EXPECT_EQ(reassembler.finish().size(), c.bytes.size() + more.size());
  }
}

TEST(Reassembler, OversizedDeclaredLengthBuffersOnlyReceivedBytes) {
  // MBAP header declaring the maximum body: a complete frame would need
  // 6 + 65535 bytes. The reassembler must wait (kNeedMore), not allocate
  // the declared size up front, and hand the partial bytes back as residue.
  const Bytes header = {0x00, 0x01, 0x00, 0x00, 0xFF, 0xFF};
  StreamReassembler reassembler(Framing::kMbap, [](ByteSpan) {
    FAIL() << "incomplete oversized frame must not be emitted";
  });
  reassembler.feed(ByteSpan(header));
  const Bytes chunk(1024, 0xAB);
  for (int i = 0; i < 16; ++i) reassembler.feed(ByteSpan(chunk));
  EXPECT_EQ(reassembler.frames(), 0u);
  // Buffered exactly what was received — no declared-size preallocation.
  EXPECT_EQ(reassembler.finish().size(), header.size() + 16 * chunk.size());
}

TEST(Reassembler, StreamCapClipsDeterministically) {
  // Feed well past kMaxSessionStreamBytes of valid APCI frames; both the
  // reassembler and split_stream must consider exactly the capped prefix.
  const Bytes frame = apci_frame(253, 0x5A);  // 255 bytes per frame
  Bytes stream;
  const std::size_t repeats =
      (session::kMaxSessionStreamBytes + (64 << 10)) / frame.size();
  stream.reserve(repeats * frame.size());
  for (std::size_t i = 0; i < repeats; ++i) append(stream, ByteSpan(frame));
  ASSERT_GT(stream.size(), session::kMaxSessionStreamBytes);

  std::size_t reassembled = 0;
  StreamReassembler reassembler(Framing::kApci,
                                [&](ByteSpan) { ++reassembled; });
  // Feed in large chunks spanning the cap boundary.
  std::size_t offset = 0;
  while (offset < stream.size()) {
    const std::size_t take = std::min<std::size_t>(48 * 1024 + 7,
                                                   stream.size() - offset);
    reassembler.feed(ByteSpan(stream.data() + offset, take));
    offset += take;
  }
  const Canonical expected = canonical_split(Framing::kApci, stream);
  EXPECT_EQ(reassembled, expected.frames.size());
  EXPECT_EQ(Bytes(reassembler.finish().begin(), reassembler.finish().end()),
            expected.residue);
}

TEST(Reassembler, MessageCapCollapsesTinyFrameFloods) {
  // kMaxSessionMessages empty APCI frames, then more: everything past the
  // cap is one raw tail on both sides.
  const Bytes frame = apci_frame(0, 0);  // 2 bytes
  Bytes stream;
  for (std::size_t i = 0; i < session::kMaxSessionMessages + 10; ++i) {
    append(stream, ByteSpan(frame));
  }
  std::size_t emitted = 0;
  StreamReassembler reassembler(Framing::kApci, [&](ByteSpan) { ++emitted; });
  for (std::size_t i = 0; i < stream.size(); i += 3) {
    reassembler.feed(
        ByteSpan(stream.data() + i, std::min<std::size_t>(3, stream.size() - i)));
  }
  EXPECT_EQ(emitted, session::kMaxSessionMessages);
  EXPECT_TRUE(reassembler.raw_tail());
  EXPECT_EQ(reassembler.finish().size(), 10 * frame.size());

  std::vector<MessageRange> ranges;
  const std::size_t residue_index =
      session::split_stream(Framing::kApci, ByteSpan(stream), ranges);
  ASSERT_EQ(ranges.size(), session::kMaxSessionMessages + 1);
  EXPECT_EQ(residue_index, session::kMaxSessionMessages);
  EXPECT_EQ(ranges.back().length, 10 * frame.size());
}

TEST(Reassembler, ResetRestoresFreshStream) {
  const Bytes stream = sample_stream(Framing::kTpkt, true);
  std::vector<Bytes> frames;
  StreamReassembler reassembler(Framing::kTpkt, [&](ByteSpan frame) {
    frames.emplace_back(frame.begin(), frame.end());
  });
  reassembler.feed(ByteSpan(stream));
  const std::vector<Bytes> first = frames;
  reassembler.reset();
  frames.clear();
  reassembler.feed(ByteSpan(stream));
  EXPECT_EQ(frames, first);
  EXPECT_EQ(reassembler.frames(), first.size());
}

}  // namespace
}  // namespace icsfuzz
