// End-to-end integration tests: the full Peach* loop must (a) find the
// Table-I vulnerabilities on the buggy targets, (b) find none on the clean
// targets, (c) beat or match the Peach baseline on path coverage, and
// (d) behave deterministically.
#include <gtest/gtest.h>

#include <memory>

#include "fuzzer/campaign.hpp"
#include "fuzzer/fuzzer.hpp"
#include "pits/pits.hpp"
#include "protocols/dnp3/dnp3_server.hpp"
#include "protocols/iccp/iccp_server.hpp"
#include "protocols/iec104/iec104_server.hpp"
#include "protocols/iec61850/mms_server.hpp"
#include "protocols/lib60870/cs101_server.hpp"
#include "protocols/modbus/modbus_server.hpp"

namespace icsfuzz::fuzz {
namespace {

/// Runs Peach* for `iterations` and returns the crash database.
template <typename Server>
CrashDb fuzz_project(const model::DataModelSet& models,
                     std::uint64_t iterations, std::uint64_t seed = 42) {
  Server server;
  FuzzerConfig config;
  config.strategy = Strategy::PeachStar;
  config.rng_seed = seed;
  Fuzzer fuzzer(server, models, config);
  fuzzer.run(iterations);
  CrashDb db;
  for (const CrashRecord* record : fuzzer.crashes().records()) {
    db.record({record->kind, record->site, record->detail}, record->reproducer,
              record->first_execution);
  }
  return db;
}

TEST(EndToEnd, PeachStarFindsModbusVulnerabilities) {
  // Table I row "libmodbus": 1 heap use-after-free + 1 SEGV.
  CrashDb db;
  for (std::uint64_t seed : {1, 2, 3}) {
    const CrashDb one =
        fuzz_project<proto::ModbusServer>(pits::modbus_pit(), 25000, seed);
    for (const CrashRecord* r : one.records()) {
      db.record({r->kind, r->site, r->detail}, r->reproducer,
                r->first_execution);
    }
    if (db.unique_memory_faults() >= 2) break;
  }
  const auto tally = db.by_kind();
  EXPECT_EQ(tally.count(san::FaultKind::HeapUseAfterFree), 1u);
  EXPECT_EQ(tally.count(san::FaultKind::Segv), 1u);
  EXPECT_EQ(db.unique_memory_faults(), 2u);
}

TEST(EndToEnd, PeachStarFindsCs101Vulnerabilities) {
  // Table I row "lib60870": 3 SEGV.
  CrashDb db;
  for (std::uint64_t seed : {1, 2, 3}) {
    const CrashDb one =
        fuzz_project<proto::Cs101Server>(pits::cs101_pit(), 25000, seed);
    for (const CrashRecord* r : one.records()) {
      db.record({r->kind, r->site, r->detail}, r->reproducer,
                r->first_execution);
    }
    if (db.unique_memory_faults() >= 3) break;
  }
  const auto tally = db.by_kind();
  ASSERT_EQ(tally.count(san::FaultKind::Segv), 1u);
  EXPECT_EQ(tally.at(san::FaultKind::Segv), 3u);
}

TEST(EndToEnd, PeachStarFindsIccpVulnerabilities) {
  // Table I row "libiec_iccp_mod": 3 SEGV + 1 heap buffer overflow.
  CrashDb db;
  for (std::uint64_t seed : {1, 2, 3}) {
    const CrashDb one =
        fuzz_project<proto::IccpServer>(pits::iccp_pit(), 25000, seed);
    for (const CrashRecord* r : one.records()) {
      db.record({r->kind, r->site, r->detail}, r->reproducer,
                r->first_execution);
    }
    if (db.unique_memory_faults() >= 4) break;
  }
  const auto tally = db.by_kind();
  EXPECT_EQ(tally.at(san::FaultKind::Segv), 3u);
  EXPECT_EQ(tally.at(san::FaultKind::HeapBufferOverflow), 1u);
}

TEST(EndToEnd, CleanTargetsStayClean) {
  // IEC104, libiec61850 and opendnp3 have no Table-I entries: substantial
  // fuzzing must find no memory faults.
  EXPECT_EQ(fuzz_project<proto::Iec104Server>(pits::iec104_pit(), 15000)
                .unique_memory_faults(),
            0u);
  EXPECT_EQ(fuzz_project<proto::MmsServer>(pits::mms_pit(), 15000)
                .unique_memory_faults(),
            0u);
  EXPECT_EQ(fuzz_project<proto::Dnp3Server>(pits::dnp3_pit(), 15000)
                .unique_memory_faults(),
            0u);
}

TEST(EndToEnd, NineVulnerabilitiesTotal) {
  // The headline Table-I claim: 9 previously unknown vulnerabilities across
  // the six projects (pooled over a few seeds per project).
  std::size_t total = 0;
  auto pool = [&total](auto runner) {
    CrashDb db;
    for (std::uint64_t seed : {1, 2, 3}) {
      const CrashDb one = runner(seed);
      for (const CrashRecord* r : one.records()) {
        db.record({r->kind, r->site, r->detail}, r->reproducer,
                  r->first_execution);
      }
    }
    total += db.unique_memory_faults();
  };
  pool([](std::uint64_t seed) {
    return fuzz_project<proto::ModbusServer>(pits::modbus_pit(), 25000, seed);
  });
  pool([](std::uint64_t seed) {
    return fuzz_project<proto::Cs101Server>(pits::cs101_pit(), 25000, seed);
  });
  pool([](std::uint64_t seed) {
    return fuzz_project<proto::IccpServer>(pits::iccp_pit(), 25000, seed);
  });
  EXPECT_EQ(total, 9u);
}

TEST(EndToEnd, PeachStarMatchesOrBeatsBaselineOnModbus) {
  CampaignConfig config;
  config.iterations = 10000;
  config.repetitions = 3;
  config.stats_interval = 500;
  const CampaignResult result = run_campaign(
      "libmodbus", [] { return std::make_unique<proto::ModbusServer>(); },
      pits::modbus_pit(), config);
  EXPECT_GE(result.peach_star.mean_final_paths,
            result.peach.mean_final_paths * 0.95);
  EXPECT_GE(result.speedup(), 1.0);
}

TEST(EndToEnd, DeterministicCampaigns) {
  auto run_once = [] {
    proto::Cs101Server server;
    FuzzerConfig config;
    config.strategy = Strategy::PeachStar;
    config.rng_seed = 77;
    const model::DataModelSet models = pits::cs101_pit();
    Fuzzer fuzzer(server, models, config);
    fuzzer.run(3000);
    return std::make_tuple(fuzzer.path_count(), fuzzer.corpus().size(),
                           fuzzer.crashes().unique_count());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(EndToEnd, ValuableSeedsAreCracked) {
  proto::ModbusServer server;
  const model::DataModelSet models = pits::modbus_pit();
  FuzzerConfig config;
  config.strategy = Strategy::PeachStar;
  config.rng_seed = 3;
  Fuzzer fuzzer(server, models, config);
  fuzzer.run(2000);
  // Every retained seed must re-crack against at least one model.
  FileCracker cracker;
  for (const RetainedSeed& seed : fuzzer.retained_seeds()) {
    PuzzleCorpus scratch;
    Rng rng(1);
    const CrackStats stats = cracker.crack(models, seed.bytes, scratch, rng);
    EXPECT_GE(stats.models_parsed, 1u)
        << "unparseable valuable seed from " << seed.model_name;
  }
}

TEST(EndToEnd, CrashReproducersReplay) {
  // Every recorded reproducer must re-trigger its fault deterministically.
  proto::Cs101Server server;
  const model::DataModelSet models = pits::cs101_pit();
  FuzzerConfig config;
  config.strategy = Strategy::PeachStar;
  config.rng_seed = 5;
  Fuzzer fuzzer(server, models, config);
  fuzzer.run(25000);
  ASSERT_GT(fuzzer.crashes().unique_count(), 0u);
  for (const CrashRecord* record : fuzzer.crashes().records()) {
    proto::Cs101Server replay_server;
    Executor executor;
    const ExecResult result =
        executor.run(replay_server, record->reproducer);
    ASSERT_TRUE(result.crashed());
    EXPECT_EQ(result.faults[0].kind, record->kind);
    EXPECT_EQ(result.faults[0].site, record->site);
  }
}

}  // namespace
}  // namespace icsfuzz::fuzz
