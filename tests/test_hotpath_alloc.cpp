// Hot-path allocation discipline + dedup-bound regression tests.
//
// The zero-allocation packet pipeline promises that steady-state executions
// perform no heap allocations: Executor::run_into reuses the ExecResult's
// vectors, FaultSink::disarm_into swaps instead of reallocating, and
// MutatorSuite::mutate_bytes_into ping-pongs caller-owned buffers. This
// file asserts those promises with a counting global allocator (each test
// binary is standalone, so overriding operator new here is safe), and
// covers the GenerationalDedup half-clear scheme that replaced the
// wipe-everything dedup reset.
#include <gtest/gtest.h>

#include "bench/counting_allocator.hpp"
#include "coverage/instrument.hpp"
#include "fuzzer/dedup.hpp"
#include "fuzzer/executor.hpp"
#include "mutation/mutator.hpp"
#include "protocols/dnp3/dnp3_server.hpp"
#include "protocols/iccp/iccp_server.hpp"
#include "protocols/iec104/iec104_server.hpp"
#include "protocols/iec61850/mms_server.hpp"
#include "protocols/lib60870/cs101_server.hpp"
#include "protocols/modbus/modbus_server.hpp"
#include "protocols/protocol_target.hpp"
#include "sanitizer/fault.hpp"
#include "util/checksum.hpp"
#include "util/rng.hpp"

namespace icsfuzz::fuzz {
namespace {

using bench_alloc::g_allocations;

/// Deterministic allocation-free target: traces a few edges derived from
/// the packet bytes and echoes the packet through the reused response
/// buffer (process_into never allocates once the buffer has capacity).
class StubTarget final : public ProtocolTarget {
 public:
  [[nodiscard]] std::string_view name() const override { return "stub"; }
  void reset() override {}

  Bytes process(ByteSpan packet) override {
    Bytes response;
    process_into(packet, response);
    return response;
  }

  void process_into(ByteSpan packet, Bytes& response) override {
    for (const std::uint8_t byte : packet) {
      cov::hit(static_cast<std::uint32_t>(byte) * 977u + 13u);
    }
    response.assign(packet.begin(), packet.end());
  }
};

TEST(ZeroAllocation, ExecutorSteadyStateRunsAllocationFree) {
  StubTarget target;
  Executor executor;
  ExecResult result;
  const std::vector<Bytes> packets = {
      Bytes{1, 2, 3, 4}, Bytes{9, 8, 7}, Bytes{1, 1, 1, 1, 1}, Bytes{0x42}};

  // Warm-up: vector capacities converge, every distinct path hash enters
  // the PathTracker.
  for (int i = 0; i < 64; ++i) {
    executor.run_into(target, packets[static_cast<std::size_t>(i) %
                                      packets.size()],
                      result);
  }

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 512; ++i) {
    executor.run_into(target, packets[static_cast<std::size_t>(i) %
                                      packets.size()],
                      result);
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "steady-state executions must not touch the heap";
  EXPECT_EQ(executor.executions(), 576u);
  EXPECT_FALSE(result.crashed());
  EXPECT_GT(result.trace_edges, 0u);
}

TEST(ZeroAllocation, MutateBytesIntoPingPongIsAllocationFree) {
  const mutation::MutatorSuite mutators;
  Rng rng(123);
  const Bytes seed = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15};
  Bytes a;
  Bytes b;

  // Warm-up until the ping-pong buffers reach their steady capacity (each
  // mutation grows the packet by at most 8 bytes before the next iteration
  // re-seeds, so capacity converges quickly).
  for (int i = 0; i < 4096; ++i) {
    a.assign(seed.begin(), seed.end());
    mutators.mutate_bytes_into(a, b, rng);
    a.swap(b);
  }

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 4096; ++i) {
    a.assign(seed.begin(), seed.end());
    mutators.mutate_bytes_into(a, b, rng);
    a.swap(b);
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
}

TEST(ZeroAllocation, ValueReturningMutateStillMatchesIntoVariant) {
  // The wrapper draws the identical RNG sequence, so both forms produce
  // identical packets from identical RNG states.
  const mutation::MutatorSuite mutators;
  const Bytes seed = {10, 20, 30, 40, 50};
  Rng rng_value(77);
  Rng rng_into(77);
  for (int i = 0; i < 200; ++i) {
    const Bytes by_value = mutators.mutate_bytes(seed, rng_value);
    Bytes into;
    mutators.mutate_bytes_into(seed, into, rng_into);
    ASSERT_EQ(by_value, into) << "iteration " << i;
  }
}

// ------------------------------------------------------------------------
// Per-server steady-state allocation audits.
//
// Each real protocol stack is driven with a benign session mix through
// process_into, the way the executor drives it: reset, arm the fault sink,
// parse into a reused response buffer. After a warm-up phase in which the
// member scratch writers converge, steady-state processing must not touch
// the heap. The mixes deliberately avoid the injected vulnerability sites
// (the Modbus 0x17/0x2B handlers and the ICCP Write service stage their
// data in GuardedAllocs, which allocate by design).

/// One pass over the mix; returns false if any packet faulted or came back
/// without a response.
bool run_mix(ProtocolTarget& server, const std::vector<Bytes>& mix,
             Bytes& response, std::vector<san::FaultReport>& faults) {
  bool clean = true;
  for (const Bytes& packet : mix) {
    server.reset();
    san::FaultSink::arm();
    server.process_into(ByteSpan(packet.data(), packet.size()), response);
    san::FaultSink::disarm_into(faults);
    clean = clean && faults.empty() && !response.empty();
  }
  return clean;
}

void expect_steady_state_alloc_free(ProtocolTarget& server,
                                    const std::vector<Bytes>& mix) {
  Bytes response;
  std::vector<san::FaultReport> faults;
  for (int round = 0; round < 64; ++round) {
    ASSERT_TRUE(run_mix(server, mix, response, faults))
        << server.name() << ": warm-up round " << round << " not clean";
  }

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  bool clean = true;
  for (int round = 0; round < 256; ++round) {
    clean = run_mix(server, mix, response, faults) && clean;
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_TRUE(clean) << server.name() << ": measured rounds not clean";
  EXPECT_EQ(after - before, 0u)
      << server.name() << ": steady-state process_into must not allocate";
}

// -- Benign session builders (these allocate freely: packets are built
//    once, before the measured loop). -----------------------------------

Bytes cat(std::initializer_list<Bytes> parts) {
  Bytes out;
  for (const Bytes& part : parts) append(out, part);
  return out;
}

Bytes mbap_frame(Bytes pdu) {
  ByteWriter writer;
  writer.write_u16(0x0001, Endian::Big);  // transaction
  writer.write_u16(0x0000, Endian::Big);  // protocol
  writer.write_u16(static_cast<std::uint16_t>(pdu.size() + 1), Endian::Big);
  writer.write_u8(proto::ModbusServer::kUnitId);
  writer.write_bytes(pdu);
  return writer.take();
}

Bytes dnp3_link_frame(Bytes user_data) {
  ByteWriter writer;
  writer.write_u8(0x05);
  writer.write_u8(0x64);
  writer.write_u8(static_cast<std::uint8_t>(5 + user_data.size()));
  writer.write_u8(0xC4);  // PRM=1, unconfirmed user data
  writer.write_u16(proto::Dnp3Server::kLocalAddress, Endian::Little);
  writer.write_u16(0x0001, Endian::Little);  // master address
  writer.write_u16(crc16_dnp3(ByteSpan(writer.bytes().data(), 8)),
                   Endian::Little);
  std::size_t offset = 0;
  while (offset < user_data.size()) {
    const std::size_t block =
        user_data.size() - offset < 16 ? user_data.size() - offset : 16;
    const ByteSpan slice(user_data.data() + offset, block);
    writer.write_bytes(slice);
    writer.write_u16(crc16_dnp3(slice), Endian::Little);
    offset += block;
  }
  return writer.take();
}

Bytes tpkt(Bytes pdu) {
  ByteWriter writer;
  writer.write_u8(0x03);
  writer.write_u8(0x00);
  writer.write_u16(static_cast<std::uint16_t>(4 + pdu.size()), Endian::Big);
  writer.write_bytes(pdu);
  return writer.take();
}

Bytes tlv(std::uint8_t tag, Bytes value) {
  Bytes out{tag, static_cast<std::uint8_t>(value.size())};
  append(out, value);
  return out;
}

/// Confirmed-request PDU (tag 0xA0): 4-byte invoke id + one service TLV.
/// The MMS and ICCP stacks share this envelope.
Bytes confirmed(std::uint8_t service_tag, Bytes body) {
  Bytes inner = tlv(0x02, {0x00, 0x00, 0x00, 0x01});
  append(inner, tlv(service_tag, std::move(body)));
  return tlv(0xA0, inner);
}

Bytes visible_string(const std::string& text) {
  return tlv(0x1A, Bytes(text.begin(), text.end()));
}

/// APCI I-frame with explicit send sequence (IEC 104 enforces N(S)).
Bytes apci_i_frame(Bytes asdu, std::uint16_t send_seq = 0) {
  ByteWriter writer;
  writer.write_u8(0x68);
  writer.write_u8(static_cast<std::uint8_t>(4 + asdu.size()));
  writer.write_u16(static_cast<std::uint16_t>(send_seq << 1), Endian::Little);
  writer.write_u16(0, Endian::Little);
  writer.write_bytes(asdu);
  return writer.take();
}

const Bytes kStartDtAct{0x68, 0x04, 0x07, 0x00, 0x00, 0x00};
const Bytes kTestFrAct{0x68, 0x04, 0x43, 0x00, 0x00, 0x00};

TEST(ZeroAllocation, ModbusSteadyStateIsAllocationFree) {
  proto::ModbusServer server;
  expect_steady_state_alloc_free(
      server, {
                  mbap_frame({0x01, 0x00, 0x00, 0x00, 0x10}),  // read coils
                  mbap_frame({0x03, 0x00, 0x02, 0x00, 0x03}),  // read holding
                  mbap_frame({0x04, 0x00, 0x00, 0x00, 0x08}),  // read input
                  mbap_frame({0x06, 0x00, 0x01, 0x12, 0x34}),  // write single
                  mbap_frame({0x03, 0x00, 0x7F, 0x00, 0x10}),  // exception
              });
}

TEST(ZeroAllocation, Dnp3SteadyStateIsAllocationFree) {
  proto::Dnp3Server server;
  // Transport octet (FIR|FIN seq 0) + app header + class-0 read object.
  expect_steady_state_alloc_free(
      server, {
                  dnp3_link_frame({0xC0, 0xC0, 0x01, 0x01, 0x01, 0x06}),
                  dnp3_link_frame({0xC0, 0xC0, 0x01, 0x1E, 0x01, 0x01, 0x00,
                                   0x00, 0x03, 0x00}),
              });
}

TEST(ZeroAllocation, Iec104SteadyStateIsAllocationFree) {
  proto::Iec104Server server;
  const Bytes interro{100, 1, 6, 0, 1, 0, 0, 0, 0, 20};
  const Bytes select{45, 1, 6, 0, 1, 0, 0x00, 0x10, 0x00, 0x81};
  const Bytes execute{45, 1, 6, 0, 1, 0, 0x00, 0x10, 0x00, 0x01};
  expect_steady_state_alloc_free(
      server, {
                  cat({kStartDtAct, apci_i_frame(interro)}),
                  cat({kStartDtAct, kTestFrAct, apci_i_frame(interro)}),
                  cat({kStartDtAct, apci_i_frame(select, 0),
                       apci_i_frame(execute, 1)}),
              });
}

TEST(ZeroAllocation, MmsSteadyStateIsAllocationFree) {
  proto::MmsServer server;
  Bytes initiate_params;
  append(initiate_params, tlv(0x80, {0x00, 0x00, 0x7D, 0x00}));
  append(initiate_params, tlv(0x81, {0x01}));
  append(initiate_params, tlv(0x82, {0xF1, 0x00}));
  append(initiate_params, tlv(0x83, Bytes(8, 0xEE)));
  const Bytes initiate = tlv(0xA8, initiate_params);
  expect_steady_state_alloc_free(
      server,
      {
          cat({tpkt(initiate), tpkt(confirmed(0x82, {0x00}))}),  // identify
          // Domain name list paginates through the LN$DO scratch buffer;
          // the read resolves a >15-char reference (SSO would not save it).
          cat({tpkt(initiate), tpkt(confirmed(0xA1, tlv(0x80, {0x09})))}),
          cat({tpkt(initiate),
               tpkt(confirmed(
                   0xA4,
                   visible_string("simpleIOGenericIO/MMXU1$MX$TotW$mag")))}),
      });
}

TEST(ZeroAllocation, Cs101SteadyStateIsAllocationFree) {
  proto::Cs101Server server;
  const Bytes interro = apci_i_frame({100, 1, 6, 0, 3, 0, 0, 0, 0, 20});
  const Bytes select = apci_i_frame({45, 1, 6, 0, 3, 0, 0x00, 0x20, 0x00, 0x81});
  const Bytes execute = apci_i_frame({45, 1, 6, 0, 3, 0, 0x00, 0x20, 0x00, 0x01});
  // Well-formed SQ=0 measurand report: two objects of IOA(3)+value(2)+QDS(1).
  const Bytes measurands = apci_i_frame({11, 2, 6, 0, 3, 0,  //
                                         0, 0, 0, 0x11, 0x22, 0x00,
                                         1, 0, 0, 0x33, 0x44, 0x00});
  expect_steady_state_alloc_free(
      server, {
                  cat({kStartDtAct, interro}),
                  cat({kStartDtAct, select, execute}),
                  cat({kStartDtAct, measurands, interro}),
              });
}

TEST(ZeroAllocation, IccpSteadyStateIsAllocationFree) {
  proto::IccpServer server;
  Bytes initiate_params;
  append(initiate_params, tlv(0x80, {0x00, 0x00, 0x1F, 0x40}));
  append(initiate_params, tlv(0x81, {0x05}));
  append(initiate_params, tlv(0x82, {0x01}));
  const Bytes initiate = tlv(0xA8, initiate_params);
  expect_steady_state_alloc_free(
      server,
      {
          // Read + name list; the Write service is excluded (GuardedAlloc
          // staging buffer allocates by design).
          cat({tpkt(initiate), tpkt(confirmed(0xA4, tlv(0x80, {0x03})))}),
          cat({tpkt(initiate), tpkt(confirmed(0xA1, tlv(0x80, {0x00})))}),
      });
}

TEST(GenerationalDedup, DedupSurvivesTheRotationThreshold) {
  // Capacity 64 -> generations rotate every 32 inserts. The regression the
  // old wipe-everything scheme had: immediately after the threshold, ALL
  // dedup state was gone and recent packets re-executed. Here the newest
  // half must stay deduplicated across the rotation.
  GenerationalDedup dedup(64);
  for (std::uint64_t h = 1; h <= 32; ++h) {
    EXPECT_TRUE(dedup.insert(h)) << h;
  }
  // Rotation happened at h=32; everything recent must still be known.
  for (std::uint64_t h = 1; h <= 32; ++h) {
    EXPECT_TRUE(dedup.contains(h)) << h;
    EXPECT_FALSE(dedup.insert(h)) << h;
  }
  // Fill the second generation; the first is dropped only after ANOTHER
  // full half-capacity of fresh hashes.
  for (std::uint64_t h = 33; h <= 64; ++h) {
    EXPECT_TRUE(dedup.insert(h)) << h;
  }
  for (std::uint64_t h = 33; h <= 64; ++h) {
    EXPECT_FALSE(dedup.insert(h)) << h;
  }
  // Memory stays bounded by the capacity.
  EXPECT_LE(dedup.size(), dedup.capacity());
}

TEST(GenerationalDedup, OldestGenerationIsReleasedNotTheWholeSet) {
  GenerationalDedup dedup(64);
  for (std::uint64_t h = 1; h <= 95; ++h) dedup.insert(h);
  // Rotations fired at 32 and 64: the oldest generation (1..32) is gone,
  // while 33..95 span the two live generations and remain deduplicated.
  for (std::uint64_t h = 1; h <= 32; ++h) {
    EXPECT_FALSE(dedup.contains(h)) << h;
  }
  for (std::uint64_t h = 33; h <= 95; ++h) {
    EXPECT_TRUE(dedup.contains(h)) << h;
  }
  EXPECT_LE(dedup.size(), 64u);
}

TEST(GenerationalDedup, UnboundedBehaviourBelowHalfCapacity) {
  GenerationalDedup dedup;  // default 2^21
  for (std::uint64_t h = 1; h <= 10000; ++h) {
    EXPECT_TRUE(dedup.insert(h));
  }
  for (std::uint64_t h = 1; h <= 10000; ++h) {
    EXPECT_FALSE(dedup.insert(h));
  }
  EXPECT_EQ(dedup.size(), 10000u);
}

}  // namespace
}  // namespace icsfuzz::fuzz
