// Hot-path allocation discipline + dedup-bound regression tests.
//
// The zero-allocation packet pipeline promises that steady-state executions
// perform no heap allocations: Executor::run_into reuses the ExecResult's
// vectors, FaultSink::disarm_into swaps instead of reallocating, and
// MutatorSuite::mutate_bytes_into ping-pongs caller-owned buffers. This
// file asserts those promises with a counting global allocator (each test
// binary is standalone, so overriding operator new here is safe), and
// covers the GenerationalDedup half-clear scheme that replaced the
// wipe-everything dedup reset.
#include <gtest/gtest.h>

#include "bench/counting_allocator.hpp"
#include "coverage/instrument.hpp"
#include "fuzzer/dedup.hpp"
#include "fuzzer/executor.hpp"
#include "mutation/mutator.hpp"
#include "protocols/protocol_target.hpp"
#include "util/rng.hpp"

namespace icsfuzz::fuzz {
namespace {

using bench_alloc::g_allocations;

/// Deterministic allocation-free target: traces a few edges derived from
/// the packet bytes and echoes the packet through the reused response
/// buffer (process_into never allocates once the buffer has capacity).
class StubTarget final : public ProtocolTarget {
 public:
  [[nodiscard]] std::string_view name() const override { return "stub"; }
  void reset() override {}

  Bytes process(ByteSpan packet) override {
    Bytes response;
    process_into(packet, response);
    return response;
  }

  void process_into(ByteSpan packet, Bytes& response) override {
    for (const std::uint8_t byte : packet) {
      cov::hit(static_cast<std::uint32_t>(byte) * 977u + 13u);
    }
    response.assign(packet.begin(), packet.end());
  }
};

TEST(ZeroAllocation, ExecutorSteadyStateRunsAllocationFree) {
  StubTarget target;
  Executor executor;
  ExecResult result;
  const std::vector<Bytes> packets = {
      Bytes{1, 2, 3, 4}, Bytes{9, 8, 7}, Bytes{1, 1, 1, 1, 1}, Bytes{0x42}};

  // Warm-up: vector capacities converge, every distinct path hash enters
  // the PathTracker.
  for (int i = 0; i < 64; ++i) {
    executor.run_into(target, packets[static_cast<std::size_t>(i) %
                                      packets.size()],
                      result);
  }

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 512; ++i) {
    executor.run_into(target, packets[static_cast<std::size_t>(i) %
                                      packets.size()],
                      result);
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "steady-state executions must not touch the heap";
  EXPECT_EQ(executor.executions(), 576u);
  EXPECT_FALSE(result.crashed());
  EXPECT_GT(result.trace_edges, 0u);
}

TEST(ZeroAllocation, MutateBytesIntoPingPongIsAllocationFree) {
  const mutation::MutatorSuite mutators;
  Rng rng(123);
  const Bytes seed = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15};
  Bytes a;
  Bytes b;

  // Warm-up until the ping-pong buffers reach their steady capacity (each
  // mutation grows the packet by at most 8 bytes before the next iteration
  // re-seeds, so capacity converges quickly).
  for (int i = 0; i < 4096; ++i) {
    a.assign(seed.begin(), seed.end());
    mutators.mutate_bytes_into(a, b, rng);
    a.swap(b);
  }

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 4096; ++i) {
    a.assign(seed.begin(), seed.end());
    mutators.mutate_bytes_into(a, b, rng);
    a.swap(b);
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
}

TEST(ZeroAllocation, ValueReturningMutateStillMatchesIntoVariant) {
  // The wrapper draws the identical RNG sequence, so both forms produce
  // identical packets from identical RNG states.
  const mutation::MutatorSuite mutators;
  const Bytes seed = {10, 20, 30, 40, 50};
  Rng rng_value(77);
  Rng rng_into(77);
  for (int i = 0; i < 200; ++i) {
    const Bytes by_value = mutators.mutate_bytes(seed, rng_value);
    Bytes into;
    mutators.mutate_bytes_into(seed, into, rng_into);
    ASSERT_EQ(by_value, into) << "iteration " << i;
  }
}

TEST(GenerationalDedup, DedupSurvivesTheRotationThreshold) {
  // Capacity 64 -> generations rotate every 32 inserts. The regression the
  // old wipe-everything scheme had: immediately after the threshold, ALL
  // dedup state was gone and recent packets re-executed. Here the newest
  // half must stay deduplicated across the rotation.
  GenerationalDedup dedup(64);
  for (std::uint64_t h = 1; h <= 32; ++h) {
    EXPECT_TRUE(dedup.insert(h)) << h;
  }
  // Rotation happened at h=32; everything recent must still be known.
  for (std::uint64_t h = 1; h <= 32; ++h) {
    EXPECT_TRUE(dedup.contains(h)) << h;
    EXPECT_FALSE(dedup.insert(h)) << h;
  }
  // Fill the second generation; the first is dropped only after ANOTHER
  // full half-capacity of fresh hashes.
  for (std::uint64_t h = 33; h <= 64; ++h) {
    EXPECT_TRUE(dedup.insert(h)) << h;
  }
  for (std::uint64_t h = 33; h <= 64; ++h) {
    EXPECT_FALSE(dedup.insert(h)) << h;
  }
  // Memory stays bounded by the capacity.
  EXPECT_LE(dedup.size(), dedup.capacity());
}

TEST(GenerationalDedup, OldestGenerationIsReleasedNotTheWholeSet) {
  GenerationalDedup dedup(64);
  for (std::uint64_t h = 1; h <= 95; ++h) dedup.insert(h);
  // Rotations fired at 32 and 64: the oldest generation (1..32) is gone,
  // while 33..95 span the two live generations and remain deduplicated.
  for (std::uint64_t h = 1; h <= 32; ++h) {
    EXPECT_FALSE(dedup.contains(h)) << h;
  }
  for (std::uint64_t h = 33; h <= 95; ++h) {
    EXPECT_TRUE(dedup.contains(h)) << h;
  }
  EXPECT_LE(dedup.size(), 64u);
}

TEST(GenerationalDedup, UnboundedBehaviourBelowHalfCapacity) {
  GenerationalDedup dedup;  // default 2^21
  for (std::uint64_t h = 1; h <= 10000; ++h) {
    EXPECT_TRUE(dedup.insert(h));
  }
  for (std::uint64_t h = 1; h <= 10000; ++h) {
    EXPECT_FALSE(dedup.insert(h));
  }
  EXPECT_EQ(dedup.size(), 10000u);
}

}  // namespace
}  // namespace icsfuzz::fuzz
