// Differential suite for out-of-process (shm + fork-server) execution.
//
// The shim binary links the SAME instrumented protocol stacks the
// in-process executor drives, so every observable the feedback loop
// consumes must be bit-identical across the two execution modes — the
// built-in differential oracle this suite enforces, mirroring the
// three-way matrix style of test_coverage_sparse.cpp:
//
//   * ShmSegment unit behaviour (named create/attach round trip, early
//     unlink keeping mappings valid, the anonymous fallback),
//   * CoverageMap::adopt_external vs in-process tracing of identical
//     patterns (trace bytes, dirty list, fused summary, accumulation),
//   * single executions of every project's server: trace hash, edge
//     count, events, faults, response bytes, accumulated map, path set —
//     for BOTH out-of-process backends (fork-per-exec and persistent),
//   * persistent-mode hygiene: no state bleed between iterations of one
//     child (same packet at iteration 1 vs K-1 of the budget), recycle
//     accounting, pipelined batch == sequential execution,
//   * fixed-seed campaign trajectories (Fuzzer with and without
//     auto-distill, ParallelCampaign at W=2) bit-identical across all
//     three ExecBackend kinds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "coverage/coverage_map.hpp"
#include "coverage/dense_ref.hpp"
#include "exec_oop/exec_protocol.hpp"
#include "exec_oop/oop_executor.hpp"
#include "exec_oop/shm_segment.hpp"
#include "fuzzer/fuzzer.hpp"
#include "model/instantiation.hpp"
#include "mutation/mutator.hpp"
#include "parallel/parallel_campaign.hpp"
#include "pits/pits.hpp"
#include "protocols/modbus/modbus_server.hpp"
#include "protocols/target_registry.hpp"
#include "tests/test_support.hpp"
#include "util/rng.hpp"

namespace icsfuzz {
namespace {

using test::CellPattern;
using test::dirty_list_defect;
using test::emit_pattern;
using test::runnable_kernels;

using test::shim_cmd;

/// Generous per-exec deadline for the differential/trajectory configs: a
/// scheduler stall on a loaded CI runner must not inject a spurious Hang
/// fault into a bit-identity comparison (the fault-injection suite covers
/// the deadline machinery explicitly).
constexpr int kGenerousTimeoutMs = 30000;

/// ExecutorConfig for `project` under the given out-of-process backend
/// kind. `budget` == 0 keeps the config default (persistent only).
fuzz::ExecutorConfig oop_executor_config(const std::string& project,
                                         fuzz::BackendKind kind,
                                         std::uint32_t budget = 0) {
  fuzz::ExecutorConfig config;
  config.backend.kind = kind;
  config.backend.target_cmd = shim_cmd(project);
  config.backend.exec_timeout_ms = kGenerousTimeoutMs;
  if (budget != 0) config.backend.persistent_budget = budget;
  return config;
}

/// The two out-of-process backend kinds every differential test covers.
const fuzz::BackendKind kOopKinds[] = {fuzz::BackendKind::kForkPerExec,
                                       fuzz::BackendKind::kPersistent};

// -- ShmSegment. ----------------------------------------------------------

TEST(ShmSegment, NamedCreateAttachRoundTrip) {
  oop::ShmSegment created = oop::ShmSegment::create(1 << 16);
  ASSERT_TRUE(created.valid()) << created.error();
  ASSERT_TRUE(created.named()) << "expected the shm_open backing";
  created.data()[0] = 0xAB;
  created.data()[65535] = 0xCD;

  oop::ShmSegment attached = oop::ShmSegment::attach(created.name(), 1 << 16);
  ASSERT_TRUE(attached.valid()) << attached.error();
  EXPECT_EQ(attached.data()[0], 0xAB);
  EXPECT_EQ(attached.data()[65535], 0xCD);

  // Writes propagate both ways through the shared pages.
  attached.data()[100] = 0x55;
  EXPECT_EQ(created.data()[100], 0x55);
}

TEST(ShmSegment, EarlyUnlinkKeepsMappingsValid) {
  oop::ShmSegment created = oop::ShmSegment::create(4096);
  ASSERT_TRUE(created.valid()) << created.error();
  ASSERT_TRUE(created.named());
  oop::ShmSegment attached = oop::ShmSegment::attach(created.name(), 4096);
  ASSERT_TRUE(attached.valid()) << attached.error();

  const std::string name = created.name();
  created.unlink_name();
  // The name is gone from the namespace...
  EXPECT_FALSE(oop::ShmSegment::attach(name, 4096).valid());
  // ...but both existing mappings still share pages.
  created.data()[7] = 0x77;
  EXPECT_EQ(attached.data()[7], 0x77);
}

TEST(ShmSegment, AnonymousFallback) {
  oop::ShmSegment segment =
      oop::ShmSegment::create(4096, /*force_anonymous=*/true);
  ASSERT_TRUE(segment.valid()) << segment.error();
  EXPECT_FALSE(segment.named());
  segment.data()[0] = 1;
  EXPECT_EQ(segment.data()[0], 1);
}

TEST(ShmSegment, DistinctNamesAcrossSegments) {
  oop::ShmSegment a = oop::ShmSegment::create(4096);
  oop::ShmSegment b = oop::ShmSegment::create(4096);
  ASSERT_TRUE(a.valid());
  ASSERT_TRUE(b.valid());
  EXPECT_NE(a.name(), b.name());
}

// -- adopt_external vs in-process tracing. --------------------------------

using Pattern = CellPattern;

/// Produces `pattern`'s raw map in an "external" buffer, the way a
/// fork-server child would have: traced into plain shared bytes whose
/// dirty list never crosses the process boundary.
void write_external(std::uint8_t* external, const Pattern& pattern) {
  std::memset(external, 0, cov::kMapSize);
  cov::begin_trace(external);
  emit_pattern(pattern);
  cov::end_trace();
}

void expect_adopt_equivalent(const std::vector<Pattern>& executions) {
  auto external = std::make_unique<std::uint64_t[]>(cov::kMapWords);
  for (const cov::simd::Kernel kind : runnable_kernels()) {
    SCOPED_TRACE(std::string("kernel ") +
                 std::string(cov::simd::kernel_name(kind)));
    cov::CoverageMap adopted;
    adopted.use_kernel(kind);
    cov::CoverageMap inproc;
    inproc.use_kernel(kind);
    for (std::size_t i = 0; i < executions.size(); ++i) {
      write_external(reinterpret_cast<std::uint8_t*>(external.get()),
                     executions[i]);
      adopted.adopt_external(external.get());
      const cov::TraceSummary a = adopted.finalize_execution();

      inproc.begin_execution();
      emit_pattern(executions[i]);
      const cov::TraceSummary b = inproc.finalize_execution();

      ASSERT_EQ(a.trace_hash, b.trace_hash) << "execution " << i;
      ASSERT_EQ(a.trace_edges, b.trace_edges) << "execution " << i;
      ASSERT_EQ(a.new_coverage, b.new_coverage) << "execution " << i;
      ASSERT_EQ(adopted.edges_covered(), inproc.edges_covered())
          << "execution " << i;
      ASSERT_EQ(0,
                std::memcmp(adopted.trace(), inproc.trace(), cov::kMapSize))
          << "execution " << i;
      ASSERT_EQ(adopted.snapshot_accumulated(), inproc.snapshot_accumulated())
          << "execution " << i;

      // The rebuilt dirty list is complete and duplicate-free.
      ASSERT_EQ(dirty_list_defect(adopted), "") << "execution " << i;
    }
  }
}

TEST(AdoptExternal, BoundaryWordsAndEmptyTraces) {
  Pattern boundary;
  for (const std::uint32_t cell : {0u, 7u, 65528u, 65535u}) {
    boundary.push_back({cell, 1});
  }
  Pattern revisit = {{0u, 3}, {65535u, 3}, {1u, 1}, {65529u, 1}};
  expect_adopt_equivalent({Pattern{}, boundary, revisit, Pattern{}, boundary});
}

TEST(AdoptExternal, RandomizedPatterns) {
  Rng rng(0x00BEEF);
  std::vector<Pattern> executions;
  for (int exec = 0; exec < 30; ++exec) {
    Pattern pattern;
    const std::size_t edges = rng.chance(1, 5) ? 2000 + rng.index(2000)
                                               : 1 + rng.index(300);
    for (std::size_t i = 0; i < edges; ++i) {
      pattern.push_back({static_cast<std::uint32_t>(rng.below(cov::kMapSize)),
                         static_cast<std::uint32_t>(1 + rng.below(40))});
    }
    executions.push_back(std::move(pattern));
  }
  expect_adopt_equivalent(executions);
}

TEST(AdoptExternal, InterleavesWithInProcessExecutions) {
  // A map can alternate between adopting external traces and tracing
  // in-process ones; the dirty bookkeeping must survive the mix.
  auto external = std::make_unique<std::uint64_t[]>(cov::kMapWords);
  cov::CoverageMap mixed;
  cov::CoverageMap reference;
  Rng rng(99);
  for (int exec = 0; exec < 20; ++exec) {
    Pattern pattern;
    const std::size_t edges = 1 + rng.index(200);
    for (std::size_t i = 0; i < edges; ++i) {
      pattern.push_back({static_cast<std::uint32_t>(rng.below(cov::kMapSize)),
                         static_cast<std::uint32_t>(1 + rng.below(4))});
    }
    if (exec % 2 == 0) {
      write_external(reinterpret_cast<std::uint8_t*>(external.get()),
                     pattern);
      mixed.adopt_external(external.get());
    } else {
      mixed.begin_execution();
      emit_pattern(pattern);
    }
    const cov::TraceSummary a = mixed.finalize_execution();

    reference.begin_execution();
    emit_pattern(pattern);
    const cov::TraceSummary b = reference.finalize_execution();
    ASSERT_EQ(a.trace_hash, b.trace_hash) << "execution " << exec;
    ASSERT_EQ(a.trace_edges, b.trace_edges) << "execution " << exec;
    ASSERT_EQ(mixed.snapshot_accumulated(), reference.snapshot_accumulated())
        << "execution " << exec;
  }
}

// -- Differential execution: in-process vs fork server. -------------------

/// A deterministic packet batch for `project`: every model's default
/// instance plus fixed-seed byte mutations of each.
std::vector<Bytes> packet_batch(const std::string& project) {
  const model::DataModelSet models = pits::pit_for_project(project);
  const mutation::MutatorSuite mutators;
  Rng rng(0x5EED + project.size());
  std::vector<Bytes> packets;
  for (const model::DataModel& model : models.models()) {
    Bytes base = model::default_instance(model).serialize();
    for (int m = 0; m < 3; ++m) {
      packets.push_back(mutators.mutate_bytes(base, rng));
    }
    packets.push_back(std::move(base));
  }
  packets.push_back({});                          // empty packet
  packets.push_back(rng.bytes(512));              // oversized junk
  return packets;
}

void expect_fault_lists_equal(const std::vector<san::FaultReport>& a,
                              const std::vector<san::FaultReport>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << "fault " << i;
    EXPECT_EQ(a[i].site, b[i].site) << "fault " << i;
    EXPECT_EQ(a[i].detail, b[i].detail) << "fault " << i;
  }
}

TEST(OopDifferential, EveryProjectMatchesInProcessExecution) {
  for (const fuzz::BackendKind kind : kOopKinds) {
    for (const std::string& project : pits::all_project_names()) {
      SCOPED_TRACE("project " + project + " backend " +
                   std::string(fuzz::to_string(kind)));
      const auto factory = proto::target_factory(project);
      ASSERT_TRUE(factory);
      const std::unique_ptr<ProtocolTarget> inproc_target = factory();
      const std::unique_ptr<ProtocolTarget> placeholder = factory();

      fuzz::Executor inproc;
      fuzz::Executor oop(oop_executor_config(project, kind));

      std::size_t crashes = 0;
      for (const Bytes& packet : packet_batch(project)) {
        const fuzz::ExecResult a = inproc.run(*inproc_target, packet);
        const fuzz::ExecResult b = oop.run(*placeholder, packet);
        ASSERT_EQ(a.trace_hash, b.trace_hash);
        ASSERT_EQ(a.trace_edges, b.trace_edges);
        ASSERT_EQ(a.new_coverage, b.new_coverage);
        ASSERT_EQ(a.new_path, b.new_path);
        ASSERT_EQ(a.events, b.events);
        ASSERT_EQ(a.response, b.response);
        ASSERT_FALSE(b.response_truncated)
            << "protocol responses must fit the aux block";
        expect_fault_lists_equal(a.faults, b.faults);
        crashes += a.crashed();
      }
      ASSERT_NE(oop.oop_backend(), nullptr);
      EXPECT_EQ(oop.oop_backend()->server_restarts(), 0u);
      if (kind == fuzz::BackendKind::kPersistent) {
        // The shim in the build advertises the capability; the config
        // requested it — persistent execution must actually be in effect,
        // not a silent degrade.
        EXPECT_TRUE(oop.oop_backend()->persistent_active());
      }

      // Campaign-lifetime aggregates: identical accumulated map + path set.
      EXPECT_EQ(inproc.edge_count(), oop.edge_count());
      EXPECT_EQ(inproc.path_count(), oop.path_count());
      EXPECT_EQ(inproc.coverage().snapshot_accumulated(),
                oop.coverage().snapshot_accumulated());
      std::vector<std::uint64_t> inproc_paths = inproc.paths().snapshot();
      std::vector<std::uint64_t> oop_paths = oop.paths().snapshot();
      std::sort(inproc_paths.begin(), inproc_paths.end());
      std::sort(oop_paths.begin(), oop_paths.end());
      EXPECT_EQ(inproc_paths, oop_paths);
    }
  }
}

TEST(OopDifferential, DenseReferenceModeAlsoMatches) {
  // The dense full-map reference analysis applies unchanged to adopted
  // traces — the sparse/dense x in-process/OOP square commutes.
  const std::string project = "libmodbus";
  const auto factory = proto::target_factory(project);
  const std::unique_ptr<ProtocolTarget> inproc_target = factory();
  const std::unique_ptr<ProtocolTarget> placeholder = factory();

  fuzz::ExecutorConfig dense_config;
  dense_config.dense_reference = true;
  fuzz::Executor inproc(dense_config);
  fuzz::ExecutorConfig oop_config =
      oop_executor_config(project, fuzz::BackendKind::kForkPerExec);
  oop_config.dense_reference = true;
  fuzz::Executor oop(oop_config);

  for (const Bytes& packet : packet_batch(project)) {
    const fuzz::ExecResult a = inproc.run(*inproc_target, packet);
    const fuzz::ExecResult b = oop.run(*placeholder, packet);
    ASSERT_EQ(a.trace_hash, b.trace_hash);
    ASSERT_EQ(a.trace_edges, b.trace_edges);
    ASSERT_EQ(a.new_coverage, b.new_coverage);
  }
  EXPECT_EQ(inproc.coverage().snapshot_accumulated(),
            oop.coverage().snapshot_accumulated());
}

// -- Persistent-mode hygiene. ---------------------------------------------

/// Raw backend config for `project` with a persistent budget.
oop::OopExecutorConfig raw_oop_config(const std::string& project,
                                      std::uint32_t budget) {
  oop::OopExecutorConfig config;
  config.target_cmd = shim_cmd(project);
  config.exec_timeout_ms = kGenerousTimeoutMs;
  config.persistent_budget = budget;
  return config;
}

void expect_outcomes_identical(const oop::OutOfProcessExecutor::Outcome& a,
                               const oop::OutOfProcessExecutor::Outcome& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.aux.events, b.aux.events);
  EXPECT_EQ(a.aux.response, b.aux.response);
  EXPECT_EQ(a.aux.response_truncated, b.aux.response_truncated);
  EXPECT_EQ(a.aux.faults_truncated, b.aux.faults_truncated);
  expect_fault_lists_equal(a.aux.faults, b.aux.faults);
}

TEST(OopPersistent, NoStateBleedAcrossChildIterations) {
  // The state-bleed gate of the persistent redesign: the same input at
  // iteration 1 and at iteration K-1 of one child's budget must produce
  // identical coverage and observables — anything a previous iteration
  // leaked (dirty map words, stale aux bytes, mutated target state) would
  // break the equality.
  constexpr std::uint32_t kBudget = 6;
  const std::string project = "libmodbus";
  oop::OutOfProcessExecutor exec(raw_oop_config(project, kBudget));
  const std::vector<Bytes> packets = packet_batch(project);
  const Bytes probe = packets.front();

  // Iteration 1 of a fresh child.
  const oop::OutOfProcessExecutor::Outcome first = exec.run(probe);
  ASSERT_EQ(first.status, oop::ExecStatus::kOk);
  ASSERT_TRUE(first.persistent);
  ASSERT_EQ(first.iteration, 1u);
  ASSERT_NE(exec.map_words(), nullptr);
  std::vector<std::uint64_t> first_map(exec.map_words(),
                                       exec.map_words() + cov::kMapWords);

  // Dirty the child through iterations 2..K-2 with differing packets.
  for (std::uint32_t i = 2; i <= kBudget - 2; ++i) {
    const auto& filler = exec.run(packets[i % packets.size()]);
    ASSERT_EQ(filler.status, oop::ExecStatus::kOk);
    ASSERT_EQ(filler.iteration, i);
    ASSERT_FALSE(filler.child_recycled);
  }

  // The probe again at iteration K-1 of the SAME child.
  const oop::OutOfProcessExecutor::Outcome again = exec.run(probe);
  ASSERT_EQ(again.iteration, kBudget - 1);
  ASSERT_FALSE(again.child_recycled);
  expect_outcomes_identical(first, again);
  EXPECT_EQ(0, std::memcmp(first_map.data(), exec.map_words(), cov::kMapSize));

  // Iteration K exhausts the budget and recycles the child.
  const auto& last = exec.run(probe);
  EXPECT_EQ(last.iteration, kBudget);
  EXPECT_TRUE(last.child_recycled);
  EXPECT_EQ(exec.child_recycles(), 1u);
  EXPECT_EQ(exec.server_restarts(), 0u);
}

TEST(OopPersistent, RecycleAccountingAndIterationCycling) {
  constexpr std::uint32_t kBudget = 4;
  oop::OutOfProcessExecutor exec(raw_oop_config("libmodbus", kBudget));
  const std::vector<Bytes> packets = packet_batch("libmodbus");
  for (int i = 0; i < 10; ++i) {
    const auto& outcome = exec.run(packets[i % packets.size()]);
    ASSERT_EQ(outcome.status, oop::ExecStatus::kOk) << "exec " << i;
    ASSERT_TRUE(outcome.persistent) << "exec " << i;
    EXPECT_EQ(outcome.iteration, static_cast<std::uint32_t>(i % kBudget) + 1)
        << "exec " << i;
    EXPECT_EQ(outcome.child_recycled, (i + 1) % kBudget == 0) << "exec " << i;
  }
  EXPECT_EQ(exec.child_recycles(), 2u);  // after executions 4 and 8
  EXPECT_EQ(exec.server_restarts(), 0u);
  EXPECT_EQ(exec.orderly_server_exits(), 0u);
}

TEST(OopPersistent, BatchMatchesSequentialExecution) {
  // The pipelined batch path must be an optimization only: same per-packet
  // results, same campaign aggregates as one run() per packet. The small
  // budget forces child recycles mid-batch.
  const std::string project = "libmodbus";
  const std::unique_ptr<ProtocolTarget> placeholder =
      proto::target_factory(project)();
  const std::vector<Bytes> packets = packet_batch(project);

  fuzz::Executor seq(
      oop_executor_config(project, fuzz::BackendKind::kPersistent, 5));
  std::vector<fuzz::ExecResult> sequential;
  for (const Bytes& packet : packets) {
    sequential.push_back(seq.run(*placeholder, packet));
  }

  fuzz::Executor batch(
      oop_executor_config(project, fuzz::BackendKind::kPersistent, 5));
  std::size_t delivered = 0;
  batch.run_batch(
      *placeholder, packets,
      [&](std::size_t index, const fuzz::ExecResult& result) {
        ASSERT_EQ(index, delivered);
        const fuzz::ExecResult& expect = sequential[index];
        ASSERT_EQ(result.trace_hash, expect.trace_hash) << "packet " << index;
        ASSERT_EQ(result.trace_edges, expect.trace_edges) << "packet " << index;
        ASSERT_EQ(result.new_coverage, expect.new_coverage)
            << "packet " << index;
        ASSERT_EQ(result.new_path, expect.new_path) << "packet " << index;
        ASSERT_EQ(result.events, expect.events) << "packet " << index;
        ASSERT_EQ(result.response, expect.response) << "packet " << index;
        expect_fault_lists_equal(result.faults, expect.faults);
        ++delivered;
      });
  EXPECT_EQ(delivered, packets.size());
  EXPECT_EQ(batch.executions(), seq.executions());
  EXPECT_EQ(batch.edge_count(), seq.edge_count());
  EXPECT_EQ(batch.path_count(), seq.path_count());
  EXPECT_EQ(batch.coverage().snapshot_accumulated(),
            seq.coverage().snapshot_accumulated());
  ASSERT_NE(batch.oop_backend(), nullptr);
  EXPECT_EQ(batch.oop_backend()->server_restarts(), 0u);
  EXPECT_GT(batch.oop_backend()->child_recycles(), 0u);
}

/// Hand-framed Modbus/TCP packet (MBAP header + unit id + PDU) for the
/// slot-mapping tests: crash recipes and reads with distinct lengths.
Bytes mbap_packet(std::initializer_list<std::uint8_t> pdu) {
  Bytes out;
  out.reserve(7 + pdu.size());
  for (const std::uint8_t b : {std::uint8_t{0x00}, std::uint8_t{0x01},
                               std::uint8_t{0x00}, std::uint8_t{0x00},
                               std::uint8_t{0x00},
                               static_cast<std::uint8_t>(pdu.size() + 1),
                               proto::ModbusServer::kUnitId}) {
    out.push_back(b);
  }
  for (const std::uint8_t b : pdu) out.push_back(b);
  return out;
}

TEST(OopPersistent, BatchCrashAndBudgetGapsKeepSlotMappingExact) {
  // The hard pipeline cases in one batch: a crash lands in slot k while
  // slot k+1 is already in flight, and the child budget (2) exhausts
  // repeatedly mid-batch, so results cross crash and recycle boundaries.
  // Every slot's result must still be the one for ITS OWN packet — the
  // reads carry distinct response lengths and the crashes distinct fault
  // kinds, so any off-by-one delivery shows up immediately.
  const std::string project = "libmodbus";
  const auto factory = proto::target_factory(project);
  const std::unique_ptr<ProtocolTarget> inproc_target = factory();
  const std::unique_ptr<ProtocolTarget> placeholder = factory();

  const Bytes uaf = mbap_packet(
      {0x17, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00, 0x00, 0x00});
  const Bytes segv = mbap_packet({0x2B, 0x0E, 0x04, 0x09});
  std::vector<Bytes> packets;
  std::vector<san::FaultKind> expected_kind;
  for (std::uint8_t n = 1; n <= 5; ++n) {
    packets.push_back(mbap_packet({0x03, 0x00, 0x00, 0x00, n}));
    expected_kind.push_back(san::FaultKind::Hang);  // placeholder: clean
    packets.push_back((n % 2 != 0) ? uaf : segv);
    expected_kind.push_back((n % 2 != 0) ? san::FaultKind::HeapUseAfterFree
                                         : san::FaultKind::Segv);
  }
  const auto is_crash_slot = [&](std::size_t i) { return i % 2 == 1; };

  // Reference arm: the same packets, one in-process run() each.
  fuzz::Executor inproc;
  std::vector<fuzz::ExecResult> reference;
  for (const Bytes& packet : packets) {
    reference.push_back(inproc.run(*inproc_target, packet));
  }
  // Distinct-length sanity of the workload itself, so "response equality"
  // below really pins the slot mapping.
  for (std::size_t i = 0; i < packets.size(); ++i) {
    if (is_crash_slot(i)) {
      ASSERT_EQ(reference[i].faults.size(), 1u) << "slot " << i;
      ASSERT_EQ(reference[i].faults[0].kind, expected_kind[i]) << "slot " << i;
    } else {
      ASSERT_TRUE(reference[i].faults.empty()) << "slot " << i;
      ASSERT_FALSE(reference[i].response.empty()) << "slot " << i;
      if (i >= 2) {
        ASSERT_NE(reference[i].response.size(), reference[i - 2].response.size())
            << "reads must differ in length for the mapping check";
      }
    }
  }

  fuzz::Executor batch(
      oop_executor_config(project, fuzz::BackendKind::kPersistent, 2));
  std::size_t delivered = 0;
  batch.run_batch(*placeholder, packets,
                  [&](std::size_t index, const fuzz::ExecResult& result) {
                    ASSERT_EQ(index, delivered);
                    const fuzz::ExecResult& expect = reference[index];
                    ASSERT_EQ(result.trace_hash, expect.trace_hash)
                        << "slot " << index;
                    ASSERT_EQ(result.events, expect.events) << "slot " << index;
                    ASSERT_EQ(result.response, expect.response)
                        << "slot " << index;
                    expect_fault_lists_equal(result.faults, expect.faults);
                    ++delivered;
                  });
  EXPECT_EQ(delivered, packets.size());
  EXPECT_EQ(batch.executions(), inproc.executions());
  EXPECT_EQ(batch.edge_count(), inproc.edge_count());
  EXPECT_EQ(batch.path_count(), inproc.path_count());
  EXPECT_EQ(batch.coverage().snapshot_accumulated(),
            inproc.coverage().snapshot_accumulated());
  ASSERT_NE(batch.oop_backend(), nullptr);
  EXPECT_EQ(batch.oop_backend()->server_restarts(), 0u);
  // Budget 2 over 10 packets: the batch must have recycled children while
  // requests were in flight.
  EXPECT_GT(batch.oop_backend()->child_recycles(), 2u);
}

TEST(OopPersistent, BatchInvariantAcrossBudgetBoundaries) {
  // The budget is a transport knob, never a semantic one: the same batch
  // through budgets 1 (recycle every exec), 3 (exhausts mid-batch at an
  // uneven boundary) and 64 (never exhausts) must land identical per-slot
  // results and campaign aggregates.
  const std::string project = "libmodbus";
  const std::unique_ptr<ProtocolTarget> placeholder =
      proto::target_factory(project)();
  const std::vector<Bytes> packets = packet_batch(project);

  struct BatchOutcome {
    std::vector<std::uint64_t> trace_hashes;
    std::vector<Bytes> responses;
    std::vector<std::size_t> fault_counts;
    std::vector<std::uint8_t> accumulated;
    std::size_t paths = 0;
  };
  const auto run_with_budget = [&](std::uint32_t budget) {
    fuzz::Executor executor(
        oop_executor_config(project, fuzz::BackendKind::kPersistent, budget));
    BatchOutcome outcome;
    executor.run_batch(*placeholder, packets,
                       [&](std::size_t index, const fuzz::ExecResult& result) {
                         EXPECT_EQ(index, outcome.trace_hashes.size());
                         outcome.trace_hashes.push_back(result.trace_hash);
                         outcome.responses.push_back(result.response);
                         outcome.fault_counts.push_back(result.faults.size());
                       });
    outcome.accumulated = executor.coverage().snapshot_accumulated();
    outcome.paths = executor.path_count();
    return outcome;
  };

  const BatchOutcome tight = run_with_budget(1);
  const BatchOutcome uneven = run_with_budget(3);
  const BatchOutcome roomy = run_with_budget(64);
  EXPECT_EQ(tight.trace_hashes, uneven.trace_hashes);
  EXPECT_EQ(tight.trace_hashes, roomy.trace_hashes);
  EXPECT_EQ(tight.responses, uneven.responses);
  EXPECT_EQ(tight.responses, roomy.responses);
  EXPECT_EQ(tight.fault_counts, uneven.fault_counts);
  EXPECT_EQ(tight.fault_counts, roomy.fault_counts);
  EXPECT_EQ(tight.accumulated, uneven.accumulated);
  EXPECT_EQ(tight.accumulated, roomy.accumulated);
  EXPECT_EQ(tight.paths, uneven.paths);
  EXPECT_EQ(tight.paths, roomy.paths);
}

// -- Fixed-seed campaign trajectories. ------------------------------------

/// Rolling fingerprint + per-checkpoint series of one campaign (the same
/// shape test_coverage_sparse.cpp uses for its sparse-vs-dense matrix).
struct Trajectory {
  std::vector<std::size_t> path_series;
  std::vector<std::size_t> edge_series;
  std::uint64_t exec_fingerprint = 0;
  std::size_t retained = 0;
  std::size_t corpus = 0;
  std::size_t crashes = 0;

  bool operator==(const Trajectory&) const = default;
};

Trajectory run_fuzzer_campaign(fuzz::BackendKind kind,
                               std::uint64_t iterations,
                               std::uint64_t distill_interval = 0) {
  const std::string project = "libmodbus";
  const std::unique_ptr<ProtocolTarget> target =
      proto::target_factory(project)();
  const model::DataModelSet models = pits::pit_for_project(project);
  fuzz::FuzzerConfig config;
  config.strategy = fuzz::Strategy::PeachStar;
  config.rng_seed = 42;
  config.distill_interval = distill_interval;
  if (kind != fuzz::BackendKind::kInProcess) {
    config.executor = oop_executor_config(project, kind);
  }
  fuzz::Fuzzer fuzzer(*target, models, config);
  Trajectory trajectory;
  fuzzer.run(iterations, [&](const fuzz::ExecResult& result) {
    trajectory.exec_fingerprint =
        trajectory.exec_fingerprint * 0x100000001B3ULL ^
        mix64(result.trace_hash ^ (result.new_coverage ? 1 : 0) ^
              (result.new_path ? 2 : 0) ^ result.trace_edges);
    if (fuzzer.executor().executions() % 250 == 0) {
      trajectory.path_series.push_back(fuzzer.path_count());
      trajectory.edge_series.push_back(fuzzer.executor().edge_count());
    }
  });
  trajectory.retained = fuzzer.retained_seeds().size();
  trajectory.corpus = fuzzer.corpus().size();
  trajectory.crashes = fuzzer.crashes().unique_count();
  return trajectory;
}

TEST(OopTrajectory, FuzzerCampaignIdenticalAcrossAllBackends) {
  // The fixed-seed trajectory matrix of the ExecBackend seam: in-process,
  // fork-per-exec and persistent campaigns must be bit-identical — same
  // fingerprint over every execution's observables, same checkpoint
  // series, same terminal corpus/crash tallies.
  const Trajectory inproc =
      run_fuzzer_campaign(fuzz::BackendKind::kInProcess, 1500);
  const Trajectory forked =
      run_fuzzer_campaign(fuzz::BackendKind::kForkPerExec, 1500);
  const Trajectory persistent =
      run_fuzzer_campaign(fuzz::BackendKind::kPersistent, 1500);
  EXPECT_EQ(forked, inproc);
  EXPECT_EQ(persistent, inproc);
  EXPECT_FALSE(inproc.path_series.empty());
  EXPECT_GT(inproc.path_series.back(), 0u);
}

TEST(OopTrajectory, AutoDistillCampaignIdenticalToInProcess) {
  // distill replays route through private executors with the same
  // ExecutorConfig, so an OOP campaign distills over the fork server too —
  // in persistent mode over persistent children.
  const Trajectory inproc =
      run_fuzzer_campaign(fuzz::BackendKind::kInProcess, 900,
                          /*distill_interval=*/300);
  const Trajectory forked =
      run_fuzzer_campaign(fuzz::BackendKind::kForkPerExec, 900,
                          /*distill_interval=*/300);
  const Trajectory persistent =
      run_fuzzer_campaign(fuzz::BackendKind::kPersistent, 900,
                          /*distill_interval=*/300);
  EXPECT_EQ(forked, inproc);
  EXPECT_EQ(persistent, inproc);
}

TEST(OopTrajectory, ParallelCampaignW2IdenticalAcrossAllBackends) {
  const model::DataModelSet models = pits::pit_for_project("libmodbus");
  auto run_parallel = [&](fuzz::BackendKind kind) {
    par::ParallelCampaignConfig config;
    config.workers = 2;
    config.iterations_per_worker = 400;
    config.base_seed = 99;
    // Syncing off for bit-exact comparison (thread interleaving of sync
    // points is nondeterministic; see test_coverage_sparse.cpp).
    config.sync_interval = 0;
    config.fuzzer.strategy = fuzz::Strategy::PeachStar;
    if (kind != fuzz::BackendKind::kInProcess) {
      // One fork server per worker: each worker's Executor spawns its own
      // backend with a private shm segment.
      config.fuzzer.executor = oop_executor_config("libmodbus", kind);
    }
    par::ParallelCampaign campaign(proto::target_factory("libmodbus"),
                                   models, config);
    return campaign.run();
  };
  const par::ParallelCampaignResult inproc =
      run_parallel(fuzz::BackendKind::kInProcess);
  for (const fuzz::BackendKind kind : kOopKinds) {
    SCOPED_TRACE(std::string("backend ") + std::string(fuzz::to_string(kind)));
    const par::ParallelCampaignResult oop = run_parallel(kind);
    ASSERT_EQ(oop.workers.size(), inproc.workers.size());
    for (std::size_t w = 0; w < oop.workers.size(); ++w) {
      EXPECT_EQ(oop.workers[w].paths, inproc.workers[w].paths)
          << "worker " << w;
      EXPECT_EQ(oop.workers[w].edges, inproc.workers[w].edges)
          << "worker " << w;
      EXPECT_EQ(oop.workers[w].unique_crashes,
                inproc.workers[w].unique_crashes)
          << "worker " << w;
      EXPECT_EQ(oop.workers[w].retained_seeds,
                inproc.workers[w].retained_seeds)
          << "worker " << w;
      EXPECT_EQ(oop.workers[w].corpus_size, inproc.workers[w].corpus_size)
          << "worker " << w;
    }
    EXPECT_EQ(oop.global_paths, inproc.global_paths);
    EXPECT_EQ(oop.global_edges, inproc.global_edges);
    EXPECT_EQ(oop.total_executions, inproc.total_executions);
  }
}

}  // namespace
}  // namespace icsfuzz
