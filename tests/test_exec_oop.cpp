// Differential suite for out-of-process (shm + fork-server) execution.
//
// The shim binary links the SAME instrumented protocol stacks the
// in-process executor drives, so every observable the feedback loop
// consumes must be bit-identical across the two execution modes — the
// built-in differential oracle this suite enforces, mirroring the
// three-way matrix style of test_coverage_sparse.cpp:
//
//   * ShmSegment unit behaviour (named create/attach round trip, early
//     unlink keeping mappings valid, the anonymous fallback),
//   * CoverageMap::adopt_external vs in-process tracing of identical
//     patterns (trace bytes, dirty list, fused summary, accumulation),
//   * single executions of every project's server: trace hash, edge
//     count, events, faults, response bytes, accumulated map, path set,
//   * fixed-seed campaign trajectories (Fuzzer with and without
//     auto-distill, ParallelCampaign at W=2) in-process vs out-of-process.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "coverage/coverage_map.hpp"
#include "coverage/dense_ref.hpp"
#include "exec_oop/exec_protocol.hpp"
#include "exec_oop/oop_executor.hpp"
#include "exec_oop/shm_segment.hpp"
#include "fuzzer/fuzzer.hpp"
#include "model/instantiation.hpp"
#include "mutation/mutator.hpp"
#include "parallel/parallel_campaign.hpp"
#include "pits/pits.hpp"
#include "protocols/target_registry.hpp"
#include "tests/test_support.hpp"
#include "util/rng.hpp"

namespace icsfuzz {
namespace {

using test::CellPattern;
using test::dirty_list_defect;
using test::emit_pattern;
using test::runnable_kernels;

/// argv for the fork-server shim serving `project` (CMake injects the
/// built binary's path).
std::vector<std::string> shim_cmd(const std::string& project) {
  return {ICSFUZZ_SHIM_PATH, "--project", project};
}

/// Generous per-exec deadline for the differential/trajectory configs: a
/// scheduler stall on a loaded CI runner must not inject a spurious Hang
/// fault into a bit-identity comparison (the fault-injection suite covers
/// the deadline machinery explicitly).
constexpr int kGenerousTimeoutMs = 30000;

// -- ShmSegment. ----------------------------------------------------------

TEST(ShmSegment, NamedCreateAttachRoundTrip) {
  oop::ShmSegment created = oop::ShmSegment::create(1 << 16);
  ASSERT_TRUE(created.valid()) << created.error();
  ASSERT_TRUE(created.named()) << "expected the shm_open backing";
  created.data()[0] = 0xAB;
  created.data()[65535] = 0xCD;

  oop::ShmSegment attached = oop::ShmSegment::attach(created.name(), 1 << 16);
  ASSERT_TRUE(attached.valid()) << attached.error();
  EXPECT_EQ(attached.data()[0], 0xAB);
  EXPECT_EQ(attached.data()[65535], 0xCD);

  // Writes propagate both ways through the shared pages.
  attached.data()[100] = 0x55;
  EXPECT_EQ(created.data()[100], 0x55);
}

TEST(ShmSegment, EarlyUnlinkKeepsMappingsValid) {
  oop::ShmSegment created = oop::ShmSegment::create(4096);
  ASSERT_TRUE(created.valid()) << created.error();
  ASSERT_TRUE(created.named());
  oop::ShmSegment attached = oop::ShmSegment::attach(created.name(), 4096);
  ASSERT_TRUE(attached.valid()) << attached.error();

  const std::string name = created.name();
  created.unlink_name();
  // The name is gone from the namespace...
  EXPECT_FALSE(oop::ShmSegment::attach(name, 4096).valid());
  // ...but both existing mappings still share pages.
  created.data()[7] = 0x77;
  EXPECT_EQ(attached.data()[7], 0x77);
}

TEST(ShmSegment, AnonymousFallback) {
  oop::ShmSegment segment =
      oop::ShmSegment::create(4096, /*force_anonymous=*/true);
  ASSERT_TRUE(segment.valid()) << segment.error();
  EXPECT_FALSE(segment.named());
  segment.data()[0] = 1;
  EXPECT_EQ(segment.data()[0], 1);
}

TEST(ShmSegment, DistinctNamesAcrossSegments) {
  oop::ShmSegment a = oop::ShmSegment::create(4096);
  oop::ShmSegment b = oop::ShmSegment::create(4096);
  ASSERT_TRUE(a.valid());
  ASSERT_TRUE(b.valid());
  EXPECT_NE(a.name(), b.name());
}

// -- adopt_external vs in-process tracing. --------------------------------

using Pattern = CellPattern;

/// Produces `pattern`'s raw map in an "external" buffer, the way a
/// fork-server child would have: traced into plain shared bytes whose
/// dirty list never crosses the process boundary.
void write_external(std::uint8_t* external, const Pattern& pattern) {
  std::memset(external, 0, cov::kMapSize);
  cov::begin_trace(external);
  emit_pattern(pattern);
  cov::end_trace();
}

void expect_adopt_equivalent(const std::vector<Pattern>& executions) {
  auto external = std::make_unique<std::uint64_t[]>(cov::kMapWords);
  for (const cov::simd::Kernel kind : runnable_kernels()) {
    SCOPED_TRACE(std::string("kernel ") +
                 std::string(cov::simd::kernel_name(kind)));
    cov::CoverageMap adopted;
    adopted.use_kernel(kind);
    cov::CoverageMap inproc;
    inproc.use_kernel(kind);
    for (std::size_t i = 0; i < executions.size(); ++i) {
      write_external(reinterpret_cast<std::uint8_t*>(external.get()),
                     executions[i]);
      adopted.adopt_external(external.get());
      const cov::TraceSummary a = adopted.finalize_execution();

      inproc.begin_execution();
      emit_pattern(executions[i]);
      const cov::TraceSummary b = inproc.finalize_execution();

      ASSERT_EQ(a.trace_hash, b.trace_hash) << "execution " << i;
      ASSERT_EQ(a.trace_edges, b.trace_edges) << "execution " << i;
      ASSERT_EQ(a.new_coverage, b.new_coverage) << "execution " << i;
      ASSERT_EQ(adopted.edges_covered(), inproc.edges_covered())
          << "execution " << i;
      ASSERT_EQ(0,
                std::memcmp(adopted.trace(), inproc.trace(), cov::kMapSize))
          << "execution " << i;
      ASSERT_EQ(adopted.snapshot_accumulated(), inproc.snapshot_accumulated())
          << "execution " << i;

      // The rebuilt dirty list is complete and duplicate-free.
      ASSERT_EQ(dirty_list_defect(adopted), "") << "execution " << i;
    }
  }
}

TEST(AdoptExternal, BoundaryWordsAndEmptyTraces) {
  Pattern boundary;
  for (const std::uint32_t cell : {0u, 7u, 65528u, 65535u}) {
    boundary.push_back({cell, 1});
  }
  Pattern revisit = {{0u, 3}, {65535u, 3}, {1u, 1}, {65529u, 1}};
  expect_adopt_equivalent({Pattern{}, boundary, revisit, Pattern{}, boundary});
}

TEST(AdoptExternal, RandomizedPatterns) {
  Rng rng(0x00BEEF);
  std::vector<Pattern> executions;
  for (int exec = 0; exec < 30; ++exec) {
    Pattern pattern;
    const std::size_t edges = rng.chance(1, 5) ? 2000 + rng.index(2000)
                                               : 1 + rng.index(300);
    for (std::size_t i = 0; i < edges; ++i) {
      pattern.push_back({static_cast<std::uint32_t>(rng.below(cov::kMapSize)),
                         static_cast<std::uint32_t>(1 + rng.below(40))});
    }
    executions.push_back(std::move(pattern));
  }
  expect_adopt_equivalent(executions);
}

TEST(AdoptExternal, InterleavesWithInProcessExecutions) {
  // A map can alternate between adopting external traces and tracing
  // in-process ones; the dirty bookkeeping must survive the mix.
  auto external = std::make_unique<std::uint64_t[]>(cov::kMapWords);
  cov::CoverageMap mixed;
  cov::CoverageMap reference;
  Rng rng(99);
  for (int exec = 0; exec < 20; ++exec) {
    Pattern pattern;
    const std::size_t edges = 1 + rng.index(200);
    for (std::size_t i = 0; i < edges; ++i) {
      pattern.push_back({static_cast<std::uint32_t>(rng.below(cov::kMapSize)),
                         static_cast<std::uint32_t>(1 + rng.below(4))});
    }
    if (exec % 2 == 0) {
      write_external(reinterpret_cast<std::uint8_t*>(external.get()),
                     pattern);
      mixed.adopt_external(external.get());
    } else {
      mixed.begin_execution();
      emit_pattern(pattern);
    }
    const cov::TraceSummary a = mixed.finalize_execution();

    reference.begin_execution();
    emit_pattern(pattern);
    const cov::TraceSummary b = reference.finalize_execution();
    ASSERT_EQ(a.trace_hash, b.trace_hash) << "execution " << exec;
    ASSERT_EQ(a.trace_edges, b.trace_edges) << "execution " << exec;
    ASSERT_EQ(mixed.snapshot_accumulated(), reference.snapshot_accumulated())
        << "execution " << exec;
  }
}

// -- Differential execution: in-process vs fork server. -------------------

/// A deterministic packet batch for `project`: every model's default
/// instance plus fixed-seed byte mutations of each.
std::vector<Bytes> packet_batch(const std::string& project) {
  const model::DataModelSet models = pits::pit_for_project(project);
  const mutation::MutatorSuite mutators;
  Rng rng(0x5EED + project.size());
  std::vector<Bytes> packets;
  for (const model::DataModel& model : models.models()) {
    Bytes base = model::default_instance(model).serialize();
    for (int m = 0; m < 3; ++m) {
      packets.push_back(mutators.mutate_bytes(base, rng));
    }
    packets.push_back(std::move(base));
  }
  packets.push_back({});                          // empty packet
  packets.push_back(rng.bytes(512));              // oversized junk
  return packets;
}

void expect_fault_lists_equal(const std::vector<san::FaultReport>& a,
                              const std::vector<san::FaultReport>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << "fault " << i;
    EXPECT_EQ(a[i].site, b[i].site) << "fault " << i;
    EXPECT_EQ(a[i].detail, b[i].detail) << "fault " << i;
  }
}

TEST(OopDifferential, EveryProjectMatchesInProcessExecution) {
  for (const std::string& project : pits::all_project_names()) {
    SCOPED_TRACE("project " + project);
    const auto factory = proto::target_factory(project);
    ASSERT_TRUE(factory);
    const std::unique_ptr<ProtocolTarget> inproc_target = factory();
    const std::unique_ptr<ProtocolTarget> placeholder = factory();

    fuzz::Executor inproc;
    fuzz::ExecutorConfig oop_config;
    oop_config.target_cmd = shim_cmd(project);
    oop_config.oop_exec_timeout_ms = kGenerousTimeoutMs;
    fuzz::Executor oop(oop_config);

    std::size_t crashes = 0;
    for (const Bytes& packet : packet_batch(project)) {
      const fuzz::ExecResult a = inproc.run(*inproc_target, packet);
      const fuzz::ExecResult b = oop.run(*placeholder, packet);
      ASSERT_EQ(a.trace_hash, b.trace_hash);
      ASSERT_EQ(a.trace_edges, b.trace_edges);
      ASSERT_EQ(a.new_coverage, b.new_coverage);
      ASSERT_EQ(a.new_path, b.new_path);
      ASSERT_EQ(a.events, b.events);
      ASSERT_EQ(a.response, b.response);
      ASSERT_FALSE(b.response_truncated)
          << "protocol responses must fit the aux block";
      expect_fault_lists_equal(a.faults, b.faults);
      crashes += a.crashed();
    }
    ASSERT_NE(oop.oop_backend(), nullptr);
    EXPECT_EQ(oop.oop_backend()->server_restarts(), 0u);

    // Campaign-lifetime aggregates: identical accumulated map + path set.
    EXPECT_EQ(inproc.edge_count(), oop.edge_count());
    EXPECT_EQ(inproc.path_count(), oop.path_count());
    EXPECT_EQ(inproc.coverage().snapshot_accumulated(),
              oop.coverage().snapshot_accumulated());
    std::vector<std::uint64_t> inproc_paths = inproc.paths().snapshot();
    std::vector<std::uint64_t> oop_paths = oop.paths().snapshot();
    std::sort(inproc_paths.begin(), inproc_paths.end());
    std::sort(oop_paths.begin(), oop_paths.end());
    EXPECT_EQ(inproc_paths, oop_paths);
  }
}

TEST(OopDifferential, DenseReferenceModeAlsoMatches) {
  // The dense full-map reference analysis applies unchanged to adopted
  // traces — the sparse/dense x in-process/OOP square commutes.
  const std::string project = "libmodbus";
  const auto factory = proto::target_factory(project);
  const std::unique_ptr<ProtocolTarget> inproc_target = factory();
  const std::unique_ptr<ProtocolTarget> placeholder = factory();

  fuzz::ExecutorConfig dense_config;
  dense_config.dense_reference = true;
  fuzz::Executor inproc(dense_config);
  fuzz::ExecutorConfig oop_config;
  oop_config.dense_reference = true;
  oop_config.target_cmd = shim_cmd(project);
  oop_config.oop_exec_timeout_ms = kGenerousTimeoutMs;
  fuzz::Executor oop(oop_config);

  for (const Bytes& packet : packet_batch(project)) {
    const fuzz::ExecResult a = inproc.run(*inproc_target, packet);
    const fuzz::ExecResult b = oop.run(*placeholder, packet);
    ASSERT_EQ(a.trace_hash, b.trace_hash);
    ASSERT_EQ(a.trace_edges, b.trace_edges);
    ASSERT_EQ(a.new_coverage, b.new_coverage);
  }
  EXPECT_EQ(inproc.coverage().snapshot_accumulated(),
            oop.coverage().snapshot_accumulated());
}

// -- Fixed-seed campaign trajectories. ------------------------------------

/// Rolling fingerprint + per-checkpoint series of one campaign (the same
/// shape test_coverage_sparse.cpp uses for its sparse-vs-dense matrix).
struct Trajectory {
  std::vector<std::size_t> path_series;
  std::vector<std::size_t> edge_series;
  std::uint64_t exec_fingerprint = 0;
  std::size_t retained = 0;
  std::size_t corpus = 0;
  std::size_t crashes = 0;

  bool operator==(const Trajectory&) const = default;
};

Trajectory run_fuzzer_campaign(bool out_of_process, std::uint64_t iterations,
                               std::uint64_t distill_interval = 0) {
  const std::string project = "libmodbus";
  const std::unique_ptr<ProtocolTarget> target =
      proto::target_factory(project)();
  const model::DataModelSet models = pits::pit_for_project(project);
  fuzz::FuzzerConfig config;
  config.strategy = fuzz::Strategy::PeachStar;
  config.rng_seed = 42;
  config.distill_interval = distill_interval;
  if (out_of_process) {
    config.executor.target_cmd = shim_cmd(project);
    config.executor.oop_exec_timeout_ms = kGenerousTimeoutMs;
  }
  fuzz::Fuzzer fuzzer(*target, models, config);
  Trajectory trajectory;
  fuzzer.run(iterations, [&](const fuzz::ExecResult& result) {
    trajectory.exec_fingerprint =
        trajectory.exec_fingerprint * 0x100000001B3ULL ^
        mix64(result.trace_hash ^ (result.new_coverage ? 1 : 0) ^
              (result.new_path ? 2 : 0) ^ result.trace_edges);
    if (fuzzer.executor().executions() % 250 == 0) {
      trajectory.path_series.push_back(fuzzer.path_count());
      trajectory.edge_series.push_back(fuzzer.executor().edge_count());
    }
  });
  trajectory.retained = fuzzer.retained_seeds().size();
  trajectory.corpus = fuzzer.corpus().size();
  trajectory.crashes = fuzzer.crashes().unique_count();
  return trajectory;
}

TEST(OopTrajectory, FuzzerCampaignIdenticalToInProcess) {
  const Trajectory oop = run_fuzzer_campaign(true, 1500);
  const Trajectory inproc = run_fuzzer_campaign(false, 1500);
  EXPECT_EQ(oop, inproc);
  EXPECT_FALSE(oop.path_series.empty());
  EXPECT_GT(oop.path_series.back(), 0u);
}

TEST(OopTrajectory, AutoDistillCampaignIdenticalToInProcess) {
  // distill replays route through private executors with the same
  // ExecutorConfig, so an OOP campaign distills over the fork server too.
  const Trajectory oop =
      run_fuzzer_campaign(true, 900, /*distill_interval=*/300);
  const Trajectory inproc =
      run_fuzzer_campaign(false, 900, /*distill_interval=*/300);
  EXPECT_EQ(oop, inproc);
}

TEST(OopTrajectory, ParallelCampaignW2IdenticalToInProcess) {
  const model::DataModelSet models = pits::pit_for_project("libmodbus");
  auto run_parallel = [&](bool out_of_process) {
    par::ParallelCampaignConfig config;
    config.workers = 2;
    config.iterations_per_worker = 400;
    config.base_seed = 99;
    // Syncing off for bit-exact comparison (thread interleaving of sync
    // points is nondeterministic; see test_coverage_sparse.cpp).
    config.sync_interval = 0;
    config.fuzzer.strategy = fuzz::Strategy::PeachStar;
    if (out_of_process) {
      // One fork server per worker: each worker's Executor spawns its own
      // backend with a private shm segment.
      config.fuzzer.executor.target_cmd = shim_cmd("libmodbus");
      config.fuzzer.executor.oop_exec_timeout_ms = kGenerousTimeoutMs;
    }
    par::ParallelCampaign campaign(proto::target_factory("libmodbus"),
                                   models, config);
    return campaign.run();
  };
  const par::ParallelCampaignResult oop = run_parallel(true);
  const par::ParallelCampaignResult inproc = run_parallel(false);

  ASSERT_EQ(oop.workers.size(), inproc.workers.size());
  for (std::size_t w = 0; w < oop.workers.size(); ++w) {
    EXPECT_EQ(oop.workers[w].paths, inproc.workers[w].paths) << "worker " << w;
    EXPECT_EQ(oop.workers[w].edges, inproc.workers[w].edges) << "worker " << w;
    EXPECT_EQ(oop.workers[w].unique_crashes, inproc.workers[w].unique_crashes)
        << "worker " << w;
    EXPECT_EQ(oop.workers[w].retained_seeds, inproc.workers[w].retained_seeds)
        << "worker " << w;
    EXPECT_EQ(oop.workers[w].corpus_size, inproc.workers[w].corpus_size)
        << "worker " << w;
  }
  EXPECT_EQ(oop.global_paths, inproc.global_paths);
  EXPECT_EQ(oop.global_edges, inproc.global_edges);
  EXPECT_EQ(oop.total_executions, inproc.total_executions);
}

}  // namespace
}  // namespace icsfuzz
