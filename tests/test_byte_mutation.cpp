// Tests for the ByteMutation strategy — the AFL-style coverage-guided byte
// mutator added as the paper's future-work direction ("customize our work
// into other generation- or mutation-based fuzzers").
#include <gtest/gtest.h>

#include <memory>

#include "fuzzer/campaign.hpp"
#include "fuzzer/fuzzer.hpp"
#include "pits/pits.hpp"
#include "protocols/dnp3/dnp3_server.hpp"
#include "protocols/modbus/modbus_server.hpp"

namespace icsfuzz::fuzz {
namespace {

TEST(ByteMutation, StrategyNameIsStable) {
  EXPECT_EQ(to_string(Strategy::ByteMutation), "ByteMutation");
}

TEST(ByteMutation, CoversPathsWithoutFormatKnowledge) {
  proto::ModbusServer server;
  const model::DataModelSet models = pits::modbus_pit();
  FuzzerConfig config;
  config.strategy = Strategy::ByteMutation;
  config.rng_seed = 21;
  Fuzzer fuzzer(server, models, config);
  fuzzer.run(3000);
  EXPECT_GT(fuzzer.path_count(), 3u);
  // No model-aware machinery may be engaged.
  EXPECT_TRUE(fuzzer.corpus().empty());
  EXPECT_TRUE(fuzzer.retained_seeds().empty());
}

TEST(ByteMutation, DeterministicForSameSeed) {
  const model::DataModelSet models = pits::modbus_pit();
  auto run_once = [&models] {
    proto::ModbusServer server;
    FuzzerConfig config;
    config.strategy = Strategy::ByteMutation;
    config.rng_seed = 5;
    Fuzzer fuzzer(server, models, config);
    fuzzer.run(1500);
    return std::make_pair(fuzzer.path_count(), fuzzer.executor().edge_count());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(ByteMutation, LosesToGenerationOnCrcFramedProtocol) {
  // The paper's §I claim: lacking format awareness, mutation-based fuzzers
  // get bogged down in validity verification. DNP3 is the cleanest case —
  // random byte mutations break the link CRCs, so almost every mutated
  // frame dies in the link layer, while generation-based fuzzing recomputes
  // CRCs via fixups.
  const model::DataModelSet models = pits::dnp3_pit();
  auto paths_for = [&models](Strategy strategy) {
    proto::Dnp3Server server;
    FuzzerConfig config;
    config.strategy = strategy;
    config.rng_seed = 33;
    Fuzzer fuzzer(server, models, config);
    fuzzer.run(6000);
    return fuzzer.path_count();
  };
  const std::size_t mutation_paths = paths_for(Strategy::ByteMutation);
  const std::size_t generation_paths = paths_for(Strategy::Peach);
  EXPECT_LT(mutation_paths, generation_paths);
}

TEST(ByteMutation, WorksInCampaignArm) {
  CampaignConfig config;
  config.iterations = 1000;
  config.repetitions = 2;
  config.stats_interval = 200;
  const ArmResult arm = run_arm(
      Strategy::ByteMutation,
      [] { return std::make_unique<proto::ModbusServer>(); },
      pits::modbus_pit(), config);
  EXPECT_EQ(arm.repetition_series.size(), 2u);
  EXPECT_GT(arm.mean_final_paths, 0.0);
}

}  // namespace
}  // namespace icsfuzz::fuzz
