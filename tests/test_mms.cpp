// Behavioural tests for the IEC 61850 MMS server: association, directory
// services, object-reference resolution, typed writes and reports. No bugs
// are injected (Table I lists none for libiec61850).
#include <gtest/gtest.h>

#include "protocols/iec61850/mms_server.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace icsfuzz::proto {
namespace {

using test::run_armed;

Bytes tpkt(Bytes pdu) {
  ByteWriter writer;
  writer.write_u8(0x03);
  writer.write_u8(0x00);
  writer.write_u16(static_cast<std::uint16_t>(4 + pdu.size()), Endian::Big);
  writer.write_bytes(pdu);
  return writer.take();
}

Bytes tlv(std::uint8_t tag, Bytes value) {
  Bytes out{tag, static_cast<std::uint8_t>(value.size())};
  append(out, value);
  return out;
}

Bytes initiate_pdu() {
  Bytes params;
  append(params, tlv(0x80, {0x00, 0x00, 0x7D, 0x00}));  // PDU size 32000
  append(params, tlv(0x81, {0x01}));                    // version 1
  append(params, tlv(0x82, {0xF1, 0x00}));              // parameter CBB
  append(params, tlv(0x83, Bytes(8, 0xEE)));            // services bitmap
  return tlv(0xA8, params);
}

Bytes confirmed(std::uint8_t service_tag, Bytes body,
                std::uint32_t invoke = 1) {
  Bytes inner = tlv(0x02, {static_cast<std::uint8_t>(invoke >> 24),
                           static_cast<std::uint8_t>(invoke >> 16),
                           static_cast<std::uint8_t>(invoke >> 8),
                           static_cast<std::uint8_t>(invoke)});
  append(inner, tlv(service_tag, std::move(body)));
  return tlv(0xA0, inner);
}

Bytes visible_string(const std::string& text) {
  return tlv(0x1A, Bytes(text.begin(), text.end()));
}

Bytes session(std::initializer_list<Bytes> pdus) {
  Bytes out;
  for (const Bytes& pdu : pdus) append(out, tpkt(pdu));
  return out;
}

TEST(Mms, AssociationRequiresServicesBitmap) {
  MmsServer server;
  Bytes params;
  append(params, tlv(0x80, {0x00, 0x00, 0x7D, 0x00}));
  append(params, tlv(0x81, {0x01}));
  EXPECT_TRUE(run_armed(server, tpkt(tlv(0xA8, params))).response.empty());
  EXPECT_FALSE(server.associated());
}

TEST(Mms, AssociationNegotiatesPduSize) {
  MmsServer server;
  const auto run = run_armed(server, tpkt(initiate_pdu()));
  ASSERT_FALSE(run.response.empty());
  EXPECT_EQ(run.response[0], 0xA9);
  EXPECT_TRUE(server.associated());
}

TEST(Mms, AssociationRejectsTinyPduSize) {
  MmsServer server;
  Bytes params;
  append(params, tlv(0x80, {0x00, 0x00, 0x00, 0x40}));  // 64 < 1024
  append(params, tlv(0x81, {0x01}));
  append(params, tlv(0x83, Bytes(8, 0)));
  EXPECT_TRUE(run_armed(server, tpkt(tlv(0xA8, params))).response.empty());
}

TEST(Mms, StatusService) {
  MmsServer server;
  const auto run = run_armed(
      server, session({initiate_pdu(), confirmed(0x80, {0x00})}));
  EXPECT_FALSE(run.crashed());
  EXPECT_GT(run.response.size(), 6u);
}

TEST(Mms, IdentifyService) {
  MmsServer server;
  const auto run = run_armed(
      server, session({initiate_pdu(), confirmed(0x82, {0x00})}));
  EXPECT_FALSE(run.crashed());
  // Vendor string "icsfuzz" appears in the identify response.
  const std::string text(run.response.begin(), run.response.end());
  EXPECT_NE(text.find("icsfuzz"), std::string::npos);
}

TEST(Mms, NameListOfLogicalDevices) {
  MmsServer server;
  const auto run = run_armed(
      server,
      session({initiate_pdu(), confirmed(0xA1, tlv(0x80, {0x09}))}));
  EXPECT_FALSE(run.crashed());
  const std::string text(run.response.begin(), run.response.end());
  EXPECT_NE(text.find("simpleIOGenericIO"), std::string::npos);
  EXPECT_NE(text.find("simpleIOControl"), std::string::npos);
}

TEST(Mms, NameListWithinDomainPaginates) {
  MmsServer server;
  Bytes body = tlv(0x80, {0x09});
  append(body, tlv(0x81, Bytes{'s', 'i', 'm', 'p', 'l', 'e', 'I', 'O', 'G',
                               'e', 'n', 'e', 'r', 'i', 'c', 'I', 'O'}));
  const auto run =
      run_armed(server, session({initiate_pdu(), confirmed(0xA1, body)}));
  EXPECT_FALSE(run.crashed());
  const std::string text(run.response.begin(), run.response.end());
  EXPECT_NE(text.find("LLN0$Mod"), std::string::npos);
  // more-follows flag set: 0x81 0x01 0xFF appears near the tail.
  bool more = false;
  for (std::size_t i = 0; i + 2 < run.response.size(); ++i) {
    if (run.response[i] == 0x81 && run.response[i + 1] == 1 &&
        run.response[i + 2] == 0xFF) {
      more = true;
    }
  }
  EXPECT_TRUE(more);
}

TEST(Mms, NameListUnknownDomainErrors) {
  MmsServer server;
  Bytes body = tlv(0x80, {0x09});
  append(body, tlv(0x81, Bytes{'n', 'o', 'p', 'e'}));
  const auto run =
      run_armed(server, session({initiate_pdu(), confirmed(0xA1, body)}));
  bool saw_error = false;
  for (std::uint8_t byte : run.response) saw_error |= byte == 0xA2;
  EXPECT_TRUE(saw_error);
}

TEST(Mms, ReadResolvesReference) {
  MmsServer server;
  const auto run = run_armed(
      server,
      session({initiate_pdu(),
               confirmed(0xA4, visible_string(
                                   "simpleIOGenericIO/MMXU1$MX$TotW$mag"))}));
  EXPECT_FALSE(run.crashed());
  EXPECT_EQ(server.reads_served(), 1u);
}

TEST(Mms, ReadUnknownReferenceGivesAccessError) {
  MmsServer server;
  const auto run = run_armed(
      server, session({initiate_pdu(),
                       confirmed(0xA4, visible_string("bogus/LLN0$ST$x$y"))}));
  EXPECT_FALSE(run.crashed());
  EXPECT_EQ(server.reads_served(), 0u);
}

TEST(Mms, ReadMultipleItems) {
  MmsServer server;
  Bytes body = visible_string("simpleIOGenericIO/GGIO1$ST$Ind1$stVal");
  append(body, visible_string("simpleIOControl/XCBR1$ST$Pos$stVal"));
  const auto run =
      run_armed(server, session({initiate_pdu(), confirmed(0xA4, body)}));
  EXPECT_FALSE(run.crashed());
  EXPECT_EQ(server.reads_served(), 2u);
}

TEST(Mms, ReadMalformedReferenceShapes) {
  MmsServer server;
  for (const char* ref :
       {"", "noslash", "ld/", "ld/LN", "simpleIOGenericIO/LLN0$ST$Mod",
        "simpleIOGenericIO/LLN0$ST$Mod$stVal$extra"}) {
    const auto run = run_armed(
        server, session({initiate_pdu(), confirmed(0xA4, visible_string(ref))}));
    EXPECT_FALSE(run.crashed()) << ref;
  }
}

TEST(Mms, WriteBooleanToControlValue) {
  MmsServer server;
  Bytes body = visible_string("simpleIOGenericIO/GGIO1$CO$SPCSO1$ctlVal");
  append(body, tlv(0x83, {0x01}));
  const auto run =
      run_armed(server, session({initiate_pdu(), confirmed(0xA5, body)}));
  EXPECT_FALSE(run.crashed());
  EXPECT_EQ(server.writes_accepted(), 1u);
}

TEST(Mms, WriteTypeMismatchRefused) {
  MmsServer server;
  Bytes body = visible_string("simpleIOGenericIO/GGIO1$CO$SPCSO1$ctlVal");
  append(body, tlv(0x86, {0x00, 0x00, 0x00, 0x05}));  // unsigned to a bool
  const auto run =
      run_armed(server, session({initiate_pdu(), confirmed(0xA5, body)}));
  EXPECT_EQ(server.writes_accepted(), 0u);
}

TEST(Mms, WriteToReadOnlyAttributeRefused) {
  MmsServer server;
  Bytes body = visible_string("simpleIOGenericIO/MMXU1$MX$TotW$mag");
  append(body, tlv(0x85, {0x00, 0x00, 0x00, 0x05}));
  const auto run =
      run_armed(server, session({initiate_pdu(), confirmed(0xA5, body)}));
  EXPECT_EQ(server.writes_accepted(), 0u);
}

TEST(Mms, AccessAttributesReportsTypeAndWritability) {
  MmsServer server;
  const auto run = run_armed(
      server,
      session({initiate_pdu(),
               confirmed(0xA6, visible_string(
                                   "simpleIOControl/XCBR1$CO$Pos$ctlVal"))}));
  EXPECT_FALSE(run.crashed());
  EXPECT_GT(run.response.size(), 6u);
}

TEST(Mms, InformationReportInclusionMismatchIgnored) {
  MmsServer server;
  Bytes body = visible_string("urcbA");
  append(body, tlv(0x84, {0x00, 0xC0}));  // two points included
  append(body, tlv(0x83, {0x01}));        // but only one value
  const auto run =
      run_armed(server, session({initiate_pdu(), tlv(0xA3, body)}));
  EXPECT_FALSE(run.crashed());
}

TEST(Mms, ConcludeClosesAssociation) {
  MmsServer server;
  const auto run =
      run_armed(server, session({initiate_pdu(), tlv(0x8B, {})}));
  EXPECT_FALSE(run.crashed());
  EXPECT_FALSE(server.associated());
}

// Fuzz-style property: random inputs never fault the MMS server.
class MmsNoFaultSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MmsNoFaultSweep, RandomBytesNeverFault) {
  MmsServer server;
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    Bytes packet = rng.bytes(rng.below(96));
    if (packet.size() >= 4 && rng.chance(1, 2)) {
      packet[0] = 0x03;
      packet[1] = 0x00;
      packet[2] = static_cast<std::uint8_t>(packet.size() >> 8);
      packet[3] = static_cast<std::uint8_t>(packet.size() & 0xFF);
    }
    const auto run = run_armed(server, packet);
    ASSERT_FALSE(run.crashed()) << "seed " << GetParam() << " iter " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MmsNoFaultSweep, ::testing::Values(11, 12, 13));

}  // namespace
}  // namespace icsfuzz::proto
