// Crash-safe checkpoint/resume coverage (src/supervise/checkpoint.hpp,
// supervisor.hpp).
//
// The load-bearing property is the differential oracle: a campaign that is
// checkpointed, killed, and resumed must finish bit-for-bit identical to
// one that was never interrupted. The suite builds up to it in layers —
// worker state hand-off across fresh Worker objects, the checkpoint text
// format round-trip, malformed-input rejection, the atomic file cycle —
// and then runs the real thing: a forked CampaignSupervisor SIGKILLed
// mid-campaign and resumed in the parent against an uninterrupted
// reference. A W=1 campaign is exactly reproducible (worker.hpp), so the
// oracle gates on one worker; multi-worker supervision is covered by
// test_supervisor.cpp with interleaving-tolerant assertions.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fuzzer/fuzzer.hpp"
#include "parallel/parallel_campaign.hpp"
#include "parallel/seed_exchange.hpp"
#include "parallel/worker.hpp"
#include "pits/pits.hpp"
#include "protocols/modbus/modbus_server.hpp"
#include "supervise/checkpoint.hpp"
#include "supervise/supervisor.hpp"

namespace icsfuzz {
namespace {

namespace fs = std::filesystem;

fuzz::FuzzerConfig small_config(std::uint64_t seed) {
  fuzz::FuzzerConfig config;
  config.rng_seed = seed;
  config.stats_interval = 200;
  return config;
}

par::WorkerConfig solo_worker_config(std::uint64_t seed,
                                     std::uint64_t sync_interval) {
  par::WorkerConfig config;
  config.id = 0;
  config.worker_count = 1;
  config.sync_interval = sync_interval;
  config.fuzzer = small_config(par::worker_seed(seed, 0));
  return config;
}

std::unique_ptr<par::Worker> make_solo_worker(const model::DataModelSet& models,
                                              par::SeedExchange& exchange,
                                              std::uint64_t seed,
                                              std::uint64_t sync_interval) {
  return std::make_unique<par::Worker>(solo_worker_config(seed, sync_interval),
                                       std::make_unique<proto::ModbusServer>(),
                                       models, exchange);
}

/// Field-by-field trajectory comparison — identical campaigns, not merely
/// similar ones.
void expect_same_trajectory(const fuzz::Fuzzer& actual,
                            const fuzz::Fuzzer& expected) {
  EXPECT_EQ(actual.path_count(), expected.path_count());
  EXPECT_EQ(actual.executor().edge_count(), expected.executor().edge_count());
  EXPECT_EQ(actual.executor().executions(), expected.executor().executions());
  EXPECT_EQ(actual.crashes().unique_count(), expected.crashes().unique_count());
  EXPECT_EQ(actual.corpus().size(), expected.corpus().size());
  ASSERT_EQ(actual.retained_seeds().size(), expected.retained_seeds().size());
  for (std::size_t i = 0; i < actual.retained_seeds().size(); ++i) {
    EXPECT_EQ(actual.retained_seeds()[i].bytes,
              expected.retained_seeds()[i].bytes)
        << "retained seed " << i;
  }
  ASSERT_EQ(actual.stats().checkpoints().size(),
            expected.stats().checkpoints().size());
  for (std::size_t i = 0; i < actual.stats().checkpoints().size(); ++i) {
    EXPECT_EQ(actual.stats().checkpoints()[i].paths,
              expected.stats().checkpoints()[i].paths)
        << "stats checkpoint " << i;
    EXPECT_EQ(actual.stats().checkpoints()[i].executions,
              expected.stats().checkpoints()[i].executions)
        << "stats checkpoint " << i;
  }
  const std::vector<const fuzz::CrashRecord*> actual_crashes =
      actual.crashes().records();
  const std::vector<const fuzz::CrashRecord*> expected_crashes =
      expected.crashes().records();
  ASSERT_EQ(actual_crashes.size(), expected_crashes.size());
  for (std::size_t i = 0; i < actual_crashes.size(); ++i) {
    EXPECT_EQ(actual_crashes[i]->kind, expected_crashes[i]->kind);
    EXPECT_EQ(actual_crashes[i]->site, expected_crashes[i]->site);
    EXPECT_EQ(actual_crashes[i]->hits, expected_crashes[i]->hits);
    EXPECT_EQ(actual_crashes[i]->first_execution,
              expected_crashes[i]->first_execution);
    EXPECT_EQ(actual_crashes[i]->trace_hash, expected_crashes[i]->trace_hash);
    EXPECT_EQ(actual_crashes[i]->reproducer, expected_crashes[i]->reproducer);
  }
}

/// A per-test scratch directory under the system temp root.
class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& stem) {
    path_ = fs::temp_directory_path() /
            (stem + "-" + std::to_string(::getpid()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScopedTempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

// ------------------------------------------------------ worker state hand-off

TEST(CheckpointResume, WorkerStateHandoffContinuesBitForBit) {
  const model::DataModelSet models = pits::modbus_pit();
  constexpr std::uint64_t kTotal = 2000;
  constexpr std::uint64_t kSeed = 4242;
  // A chunk boundary deliberately NOT aligned to the sync interval: the
  // absolute-index sync schedule must make any split invisible.
  constexpr std::uint64_t kSplit = 777;

  // Uninterrupted reference.
  par::SeedExchange reference_exchange;
  std::unique_ptr<par::Worker> reference =
      make_solo_worker(models, reference_exchange, kSeed, 256);
  reference->run(kTotal);

  // First half on worker A, state captured between iterations.
  par::SeedExchange first_exchange;
  std::unique_ptr<par::Worker> first =
      make_solo_worker(models, first_exchange, kSeed, 256);
  first->run_range(0, kSplit, kTotal);
  const par::WorkerState state = first->capture_state();
  first.reset();  // the original worker is gone — as after a process death

  // Second half on a FRESH worker against a FRESH exchange (exactly what a
  // resumed process has: the exchange is rebuilt, never checkpointed).
  par::SeedExchange resumed_exchange;
  std::unique_ptr<par::Worker> resumed =
      make_solo_worker(models, resumed_exchange, kSeed, 256);
  resumed->restore_state(state);
  resumed->run_range(kSplit, kTotal, kTotal);

  expect_same_trajectory(resumed->fuzzer(), reference->fuzzer());
  EXPECT_EQ(resumed->progress(), kTotal);
}

TEST(CheckpointResume, ManySmallChunksEqualOneRun) {
  const model::DataModelSet models = pits::modbus_pit();
  constexpr std::uint64_t kTotal = 1500;
  constexpr std::uint64_t kSeed = 99;

  par::SeedExchange reference_exchange;
  std::unique_ptr<par::Worker> reference =
      make_solo_worker(models, reference_exchange, kSeed, 300);
  reference->run(kTotal);

  // Re-execute the campaign as a chain of chunks, round-tripping the state
  // through a fresh worker at every boundary.
  par::SeedExchange exchange;
  std::unique_ptr<par::Worker> worker =
      make_solo_worker(models, exchange, kSeed, 300);
  std::uint64_t completed = 0;
  while (completed < kTotal) {
    const std::uint64_t chunk_end = std::min(kTotal, completed + 250);
    worker->run_range(completed, chunk_end, kTotal);
    completed = chunk_end;
    if (completed < kTotal) {
      const par::WorkerState state = worker->capture_state();
      worker = make_solo_worker(models, exchange, kSeed, 300);
      worker->restore_state(state);
    }
  }

  expect_same_trajectory(worker->fuzzer(), reference->fuzzer());
}

// ------------------------------------------------------- text format round-trip

supervise::CampaignCheckpoint mid_campaign_checkpoint(
    const model::DataModelSet& models) {
  par::SeedExchange exchange;
  std::unique_ptr<par::Worker> worker =
      make_solo_worker(models, exchange, 7, 128);
  worker->run_range(0, 900, 1800);  // crashes + corpus + stats populated

  supervise::CampaignCheckpoint cp;
  cp.completed_iterations = 900;
  cp.base_seed = 7;
  cp.iterations_per_worker = 1800;
  cp.sync_interval = 128;
  cp.workers.push_back(worker->capture_state());
  return cp;
}

TEST(CheckpointFormat, SerializeParseRoundTripIsCanonical) {
  const model::DataModelSet models = pits::modbus_pit();
  const supervise::CampaignCheckpoint cp = mid_campaign_checkpoint(models);

  const std::string text = supervise::serialize_checkpoint(cp);
  ASSERT_FALSE(text.empty());
  const std::optional<supervise::CampaignCheckpoint> parsed =
      supervise::parse_checkpoint(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->completed_iterations, cp.completed_iterations);
  EXPECT_EQ(parsed->base_seed, cp.base_seed);
  EXPECT_EQ(parsed->iterations_per_worker, cp.iterations_per_worker);
  EXPECT_EQ(parsed->sync_interval, cp.sync_interval);
  ASSERT_EQ(parsed->workers.size(), cp.workers.size());
  // Canonical form: re-serializing the parse reproduces the exact bytes.
  EXPECT_EQ(supervise::serialize_checkpoint(*parsed), text);
}

TEST(CheckpointFormat, RestoredWorkerFromParsedTextContinuesBitForBit) {
  const model::DataModelSet models = pits::modbus_pit();
  const supervise::CampaignCheckpoint cp = mid_campaign_checkpoint(models);
  const std::optional<supervise::CampaignCheckpoint> parsed =
      supervise::parse_checkpoint(supervise::serialize_checkpoint(cp));
  ASSERT_TRUE(parsed.has_value());

  par::SeedExchange reference_exchange;
  std::unique_ptr<par::Worker> reference =
      make_solo_worker(models, reference_exchange, 7, 128);
  reference->run(1800);

  par::SeedExchange exchange;
  std::unique_ptr<par::Worker> resumed =
      make_solo_worker(models, exchange, 7, 128);
  resumed->restore_state(parsed->workers[0]);
  resumed->run_range(900, 1800, 1800);

  expect_same_trajectory(resumed->fuzzer(), reference->fuzzer());
}

TEST(CheckpointFormat, RejectsMalformedInput) {
  const model::DataModelSet models = pits::modbus_pit();
  const std::string text =
      supervise::serialize_checkpoint(mid_campaign_checkpoint(models));

  EXPECT_FALSE(supervise::parse_checkpoint("").has_value());
  EXPECT_FALSE(supervise::parse_checkpoint("not a checkpoint").has_value());
  EXPECT_FALSE(
      supervise::parse_checkpoint("icsfuzz-checkpoint v999\n").has_value());
  // Truncation anywhere in the token stream (a torn write without the
  // atomic rename) must be rejected, never half-loaded.
  for (const double fraction : {0.1, 0.5, 0.9, 0.999}) {
    const std::string torn =
        text.substr(0, static_cast<std::size_t>(text.size() * fraction));
    EXPECT_FALSE(supervise::parse_checkpoint(torn).has_value())
        << "fraction " << fraction;
  }
  // Corrupting a numeric token breaks the parse, not the process.
  std::string corrupt = text;
  const std::size_t digit = corrupt.find_first_of("0123456789", 32);
  ASSERT_NE(digit, std::string::npos);
  corrupt[digit] = 'z';
  EXPECT_FALSE(supervise::parse_checkpoint(corrupt).has_value());
}

TEST(CheckpointFormat, SaveLoadFileRoundTrip) {
  const model::DataModelSet models = pits::modbus_pit();
  const ScopedTempDir dir("icsfuzz-ckpt-file");
  const std::string path = (dir.path() / "campaign.ckpt").string();

  const supervise::CampaignCheckpoint cp = mid_campaign_checkpoint(models);
  EXPECT_FALSE(supervise::load_checkpoint(path).has_value());  // not yet saved
  ASSERT_FALSE(supervise::save_checkpoint(cp, path).has_value());
  const std::optional<supervise::CampaignCheckpoint> loaded =
      supervise::load_checkpoint(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(supervise::serialize_checkpoint(*loaded),
            supervise::serialize_checkpoint(cp));
  // No stale temp file left behind by the atomic write cycle.
  std::size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

// ------------------------------------------------------------ kill -9 oracle

supervise::SupervisorConfig oracle_config(const std::string& checkpoint_path) {
  supervise::SupervisorConfig config;
  config.campaign.workers = 1;
  config.campaign.iterations_per_worker = 12000;
  config.campaign.base_seed = 2026;
  config.campaign.sync_interval = 512;
  config.campaign.fuzzer = small_config(0);  // rng_seed overridden per worker
  config.checkpoint_path = checkpoint_path;
  config.checkpoint_interval = 256;
  return config;
}

/// The tentpole gate: SIGKILL a supervised campaign mid-flight, resume it
/// from the on-disk checkpoint in another process (the parent), and demand
/// the final state be bit-for-bit identical to a never-interrupted run.
TEST(CheckpointResume, SupervisorResumesAfterKillNineBitForBit) {
  const model::DataModelSet models = pits::modbus_pit();
  const ScopedTempDir dir("icsfuzz-ckpt-kill9");
  const std::string checkpoint_path = (dir.path() / "campaign.ckpt").string();
  const fuzz::TargetFactory factory = [] {
    return std::make_unique<proto::ModbusServer>();
  };

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: run the campaign until killed. _exit keeps gtest machinery
    // (atexit handlers, result printers) out of the forked copy.
    supervise::CampaignSupervisor victim(factory, models,
                                         oracle_config(checkpoint_path));
    (void)victim.run();
    ::_exit(0);
  }

  // Parent: wait for the first checkpoint to land, then kill without
  // warning. ICSFUZZ_STRESS_SEED (the CI stress lane) varies how deep into
  // the campaign the kill lands, so repeated runs sample different torn
  // states.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (!fs::exists(checkpoint_path)) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "no checkpoint appeared before the kill deadline";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::uint64_t extra_delay_ms = 3;
  if (const char* stress = std::getenv("ICSFUZZ_STRESS_SEED")) {
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char* c = stress; *c != '\0'; ++c) {
      hash = (hash ^ static_cast<std::uint8_t>(*c)) * 0x100000001b3ULL;
    }
    extra_delay_ms = hash % 40;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(extra_delay_ms));
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);

  // Resume in THIS process from whatever the child left on disk.
  supervise::CampaignSupervisor resumer(factory, models,
                                        oracle_config(checkpoint_path));
  const supervise::SupervisorResult resumed = resumer.run();
  EXPECT_TRUE(resumed.resumed);
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.completed_iterations, 12000u);

  // Uninterrupted reference (plain campaign, same parameters).
  par::ParallelCampaign reference_campaign(
      factory, models, oracle_config(checkpoint_path).campaign);
  const par::ParallelCampaignResult reference = reference_campaign.run();

  ASSERT_EQ(resumed.campaign.workers.size(), 1u);
  const par::WorkerReport& actual = resumed.campaign.workers[0];
  const par::WorkerReport& expected = reference.workers[0];
  EXPECT_EQ(actual.executions, expected.executions);
  EXPECT_EQ(actual.paths, expected.paths);
  EXPECT_EQ(actual.edges, expected.edges);
  EXPECT_EQ(actual.unique_crashes, expected.unique_crashes);
  EXPECT_EQ(actual.corpus_size, expected.corpus_size);
  EXPECT_EQ(actual.retained_seeds, expected.retained_seeds);
  ASSERT_EQ(actual.series.size(), expected.series.size());
  for (std::size_t i = 0; i < actual.series.size(); ++i) {
    EXPECT_EQ(actual.series[i].paths, expected.series[i].paths)
        << "series point " << i;
    EXPECT_EQ(actual.series[i].executions, expected.series[i].executions)
        << "series point " << i;
  }
  EXPECT_EQ(resumed.campaign.global_paths, reference.global_paths);
  EXPECT_EQ(resumed.campaign.global_edges, reference.global_edges);

  const std::vector<const fuzz::CrashRecord*> actual_crashes =
      resumed.campaign.pooled_crashes.records();
  const std::vector<const fuzz::CrashRecord*> expected_crashes =
      reference.pooled_crashes.records();
  ASSERT_EQ(actual_crashes.size(), expected_crashes.size());
  for (std::size_t i = 0; i < actual_crashes.size(); ++i) {
    EXPECT_EQ(actual_crashes[i]->kind, expected_crashes[i]->kind);
    EXPECT_EQ(actual_crashes[i]->site, expected_crashes[i]->site);
    EXPECT_EQ(actual_crashes[i]->hits, expected_crashes[i]->hits);
    EXPECT_EQ(actual_crashes[i]->first_execution,
              expected_crashes[i]->first_execution);
    EXPECT_EQ(actual_crashes[i]->trace_hash, expected_crashes[i]->trace_hash);
    EXPECT_EQ(actual_crashes[i]->reproducer, expected_crashes[i]->reproducer);
  }

  // The final chunk's checkpoint marks the campaign complete: a rerun with
  // resume=true is a no-op replaying nothing.
  supervise::CampaignSupervisor rerun(factory, models,
                                      oracle_config(checkpoint_path));
  const supervise::SupervisorResult replay = rerun.run();
  EXPECT_TRUE(replay.resumed);
  EXPECT_EQ(replay.completed_iterations, 12000u);
  EXPECT_EQ(replay.campaign.total_executions, reference.total_executions);
}

TEST(CheckpointResume, SupervisorIgnoresCheckpointOfDifferentCampaign) {
  const model::DataModelSet models = pits::modbus_pit();
  const ScopedTempDir dir("icsfuzz-ckpt-mismatch");
  const std::string checkpoint_path = (dir.path() / "campaign.ckpt").string();
  const fuzz::TargetFactory factory = [] {
    return std::make_unique<proto::ModbusServer>();
  };

  // Park a checkpoint of a DIFFERENT campaign (other seed) at the path.
  supervise::SupervisorConfig other = oracle_config(checkpoint_path);
  other.campaign.base_seed = 1;
  other.campaign.iterations_per_worker = 600;
  other.checkpoint_interval = 0;  // final checkpoint only
  supervise::CampaignSupervisor first(factory, models, other);
  (void)first.run();
  ASSERT_TRUE(fs::exists(checkpoint_path));

  supervise::SupervisorConfig config = oracle_config(checkpoint_path);
  config.campaign.iterations_per_worker = 600;
  supervise::CampaignSupervisor supervisor(factory, models, config);
  const supervise::SupervisorResult result = supervisor.run();
  EXPECT_FALSE(result.resumed);
  EXPECT_NE(result.notes.find("identity mismatch"), std::string::npos);
  EXPECT_EQ(result.completed_iterations, 600u);
}

}  // namespace
}  // namespace icsfuzz
