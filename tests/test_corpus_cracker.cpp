// Tests for the puzzle corpus and the File Cracker (paper Algorithm 2 and
// Definition 2).
#include <gtest/gtest.h>

#include "fuzzer/cracker.hpp"
#include "fuzzer/instantiator.hpp"
#include "pits/pits.hpp"

namespace icsfuzz::fuzz {
namespace {

using model::Chunk;
using model::DataModel;
using model::NumberSpec;

NumberSpec u16() {
  NumberSpec spec;
  spec.width = 2;
  return spec;
}

// -------------------------------------------------------------------- Corpus

TEST(PuzzleCorpus, AddAndLookupByExactRule) {
  PuzzleCorpus corpus;
  Rng rng(1);
  Chunk rule = Chunk::number("Addr", u16());
  rule.with_tag("mb-addr");
  EXPECT_TRUE(corpus.add(rule, {0x00, 0x10}, rng));
  const auto* candidates = corpus.exact_candidates(rule);
  ASSERT_NE(candidates, nullptr);
  ASSERT_EQ(candidates->size(), 1u);
  EXPECT_EQ((*candidates)[0], (Bytes{0x00, 0x10}));
}

TEST(PuzzleCorpus, DeduplicatesIdenticalPuzzles) {
  PuzzleCorpus corpus;
  Rng rng(2);
  Chunk rule = Chunk::number("Addr", u16());
  EXPECT_TRUE(corpus.add(rule, {1, 2}, rng));
  EXPECT_FALSE(corpus.add(rule, {1, 2}, rng));
  EXPECT_EQ(corpus.exact_candidates(rule)->size(), 1u);
}

TEST(PuzzleCorpus, CrossModelLookupViaSharedTag) {
  PuzzleCorpus corpus;
  Rng rng(3);
  Chunk producer = Chunk::number("ReadCoils.Address", u16());
  producer.with_tag("mb-addr");
  corpus.add(producer, {0x00, 0x42}, rng);

  Chunk consumer = Chunk::number("WriteSingleCoil.Address", u16());
  consumer.with_tag("mb-addr");
  const auto* candidates = corpus.exact_candidates(consumer);
  ASSERT_NE(candidates, nullptr);
  EXPECT_EQ((*candidates)[0], (Bytes{0x00, 0x42}));
}

TEST(PuzzleCorpus, SimilarTierMatchesShapeOnly) {
  PuzzleCorpus corpus;
  Rng rng(4);
  Chunk producer = Chunk::number("a", u16());
  producer.with_tag("tag-a");
  corpus.add(producer, {9, 9}, rng);

  Chunk other_tag = Chunk::number("b", u16());
  other_tag.with_tag("tag-b");
  EXPECT_EQ(corpus.exact_candidates(other_tag), nullptr);
  ASSERT_NE(corpus.similar_candidates(other_tag), nullptr);
}

TEST(PuzzleCorpus, PerRuleCapWithReplacement) {
  CorpusConfig config;
  config.per_rule_cap = 4;
  PuzzleCorpus corpus(config);
  Rng rng(5);
  Chunk rule = Chunk::number("n", u16());
  for (std::uint8_t i = 0; i < 20; ++i) {
    corpus.add(rule, {i, i}, rng);
  }
  EXPECT_EQ(corpus.exact_candidates(rule)->size(), 4u);
}

TEST(PuzzleCorpus, SizeAndClear) {
  PuzzleCorpus corpus;
  Rng rng(6);
  Chunk a = Chunk::number("a", u16());
  Chunk b = Chunk::blob("b", {});
  corpus.add(a, {1, 1}, rng);
  corpus.add(b, {2}, rng);
  EXPECT_EQ(corpus.size(), 2u);
  EXPECT_EQ(corpus.rule_count(), 2u);
  EXPECT_FALSE(corpus.empty());
  corpus.clear();
  EXPECT_TRUE(corpus.empty());
  EXPECT_EQ(corpus.size(), 0u);
}

// ------------------------------------------------------------------- Cracker

DataModel simple_model() {
  std::vector<Chunk> fields;
  fields.push_back(Chunk::token("Fc", 1, Endian::Big, 0x03));
  Chunk addr = Chunk::number("Addr", u16());
  addr.with_tag("addr");
  fields.push_back(std::move(addr));
  Chunk qty = Chunk::number("Qty", u16());
  qty.with_tag("qty");
  fields.push_back(std::move(qty));
  return DataModel("Read", Chunk::block("root", std::move(fields)));
}

TEST(FileCracker, LegalSeedYieldsSubtreePuzzles) {
  const DataModel model = simple_model();
  model::DataModelSet set;
  set.add(simple_model());
  PuzzleCorpus corpus;
  Rng rng(7);
  FileCracker cracker;
  const Bytes seed{0x03, 0x00, 0x10, 0x00, 0x02};
  const CrackStats stats = cracker.crack(set, seed, corpus, rng);
  EXPECT_EQ(stats.models_parsed, 1u);
  // Puzzles per Definition 2: root (whole packet), Fc, Addr, Qty.
  EXPECT_EQ(stats.puzzles_seen, 4u);
  EXPECT_GE(stats.puzzles_added, 4u);

  Chunk addr_rule = Chunk::number("x", u16());
  addr_rule.with_tag("addr");
  const auto* addr_puzzles = corpus.exact_candidates(addr_rule);
  ASSERT_NE(addr_puzzles, nullptr);
  EXPECT_EQ((*addr_puzzles)[0], (Bytes{0x00, 0x10}));
}

TEST(FileCracker, IllegalSeedAddsNothing) {
  model::DataModelSet set;
  set.add(simple_model());
  PuzzleCorpus corpus;
  Rng rng(8);
  FileCracker cracker;
  const Bytes bad{0x06, 0x00, 0x10, 0x00, 0x02};  // wrong token
  const CrackStats stats = cracker.crack(set, bad, corpus, rng);
  EXPECT_EQ(stats.models_parsed, 0u);
  EXPECT_TRUE(corpus.empty());
}

TEST(FileCracker, TriesEveryModelInTheSet) {
  model::DataModelSet set;
  set.add(simple_model());
  // A second model that also parses the same bytes (coarse blob).
  set.add(DataModel("Raw", Chunk::block("Raw.root", {Chunk::blob("Raw.all", {})})));
  PuzzleCorpus corpus;
  Rng rng(9);
  FileCracker cracker;
  const Bytes seed{0x03, 0x00, 0x10, 0x00, 0x02};
  const CrackStats stats = cracker.crack(set, seed, corpus, rng);
  EXPECT_EQ(stats.models_parsed, 2u);
}

TEST(FileCracker, PuzzleOrderPreservesWireOrder) {
  // Internal-node puzzles must concatenate children in model order
  // (Definition 2's "organized in order as described in the data model").
  model::DataModelSet set;
  set.add(simple_model());
  PuzzleCorpus corpus;
  Rng rng(10);
  FileCracker cracker;
  const Bytes seed{0x03, 0xAA, 0xBB, 0xCC, 0xDD};
  cracker.crack(set, seed, corpus, rng);
  // The root puzzle is the whole packet in order.
  const DataModel probe = simple_model();
  const auto* root_puzzles = corpus.exact_candidates(probe.root());
  ASSERT_NE(root_puzzles, nullptr);
  EXPECT_EQ((*root_puzzles)[0], seed);
}

TEST(FileCracker, RealPitRoundTrip) {
  // Crack a default Modbus packet and expect address/quantity donors.
  const model::DataModelSet set = pits::modbus_pit();
  ModelInstantiator instantiator;
  Rng rng(11);
  const model::DataModel* read_model = set.find("ReadHoldingRegisters");
  ASSERT_NE(read_model, nullptr);
  const Bytes seed = model::default_instance(*read_model).serialize();

  PuzzleCorpus corpus;
  FileCracker cracker;
  const CrackStats stats = cracker.crack(set, seed, corpus, rng);
  EXPECT_GE(stats.models_parsed, 1u);
  EXPECT_GT(corpus.size(), 0u);

  // The Address donor must be reachable from the WriteSingleRegister model
  // through the shared "mb-addr" tag.
  const model::DataModel* write_model = set.find("WriteSingleRegister");
  ASSERT_NE(write_model, nullptr);
  const model::Chunk* write_addr = write_model->find("WriteSingleRegister.Address");
  ASSERT_NE(write_addr, nullptr);
  EXPECT_NE(corpus.exact_candidates(*write_addr), nullptr);
}

TEST(FileCracker, LaxOptionsAcceptBrokenChecksums) {
  // With verification off, the cracker accepts integrity-broken packets
  // (used by tests and by the no-fixup ablation analysis).
  model::DataModelSet set = pits::dnp3_pit();
  const model::DataModel* model = set.find("DnpColdRestart");
  ASSERT_NE(model, nullptr);
  Bytes seed = model::default_instance(*model).serialize();
  seed[8] ^= 0xFF;  // corrupt the header CRC

  PuzzleCorpus corpus;
  Rng rng(12);
  FileCracker strict;
  EXPECT_EQ(strict.crack_one(*model, seed, corpus, rng).models_parsed, 0u);

  model::ParseOptions lax;
  lax.verify_fixups = false;
  FileCracker tolerant(lax);
  EXPECT_EQ(tolerant.crack_one(*model, seed, corpus, rng).models_parsed, 1u);
}

}  // namespace
}  // namespace icsfuzz::fuzz
