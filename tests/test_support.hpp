// Shared helpers for the icsfuzz test suite.
#pragma once

#include <vector>

#include "coverage/coverage_map.hpp"
#include "protocols/protocol_target.hpp"
#include "sanitizer/fault.hpp"

namespace icsfuzz::test {

struct ArmedRun {
  Bytes response;
  std::vector<san::FaultReport> faults;

  [[nodiscard]] bool crashed() const { return !faults.empty(); }
  [[nodiscard]] bool crashed_with(san::FaultKind kind) const {
    for (const san::FaultReport& fault : faults) {
      if (fault.kind == kind) return true;
    }
    return false;
  }
};

/// Runs one packet against a target with the fault sink armed (coverage
/// not traced), the way the executor would, and returns the observables.
inline ArmedRun run_armed(ProtocolTarget& target, const Bytes& packet) {
  target.reset();
  san::FaultSink::arm();
  ArmedRun run;
  run.response = target.process(ByteSpan(packet.data(), packet.size()));
  run.faults = san::FaultSink::disarm();
  return run;
}

/// Runs a packet with no expectation of faults; asserts cleanliness at the
/// call site via the returned flag.
inline Bytes run_clean(ProtocolTarget& target, const Bytes& packet,
                       bool* fault_free = nullptr) {
  ArmedRun run = run_armed(target, packet);
  if (fault_free != nullptr) *fault_free = !run.crashed();
  return run.response;
}

}  // namespace icsfuzz::test
