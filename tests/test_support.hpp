// Shared helpers for the icsfuzz test suite.
#pragma once

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "coverage/coverage_map.hpp"
#include "coverage/dense_ref.hpp"
#include "coverage/instrument.hpp"
#include "protocols/protocol_target.hpp"
#include "sanitizer/fault.hpp"

namespace icsfuzz::test {

// -- Process/environment helpers shared by the fork-server suites. --------

#ifdef ICSFUZZ_SHIM_PATH
/// argv for the fork-server shim serving `project` (CMake injects the
/// built binary's path into shim-linked suites).
inline std::vector<std::string> shim_cmd(
    const std::string& project = "libmodbus") {
  return {ICSFUZZ_SHIM_PATH, "--project", project};
}

/// argv for the loopback TCP *session* server over the same stacks.
inline std::vector<std::string> shim_tcp_cmd(const std::string& project) {
  return {ICSFUZZ_SHIM_PATH, "--project", project, "--tcp"};
}
#endif

/// Scoped environment knob: set for the executor spawned inside the test,
/// guaranteed cleared on exit so suites stay independent.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
};

// -- Socket helpers shared by the session/TCP suites. ---------------------

/// Binds + listens on an ephemeral 127.0.0.1 port. Returns the listening
/// fd (or -1) and fills `port` with the kernel-assigned port number.
inline int bind_ephemeral_loopback(std::uint16_t& port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  socklen_t len = sizeof addr;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 8) != 0 ||
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return -1;
  }
  port = ntohs(addr.sin_port);
  return fd;
}

/// Deadline-guarded loopback connect: nonblocking connect + poll, then the
/// socket is returned in blocking mode. -1 on refusal or deadline.
inline int connect_loopback_deadline(std::uint16_t port, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  const int flags = ::fcntl(fd, F_GETFL);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return -1;
    }
    struct pollfd pfd {fd, POLLOUT, 0};
    if (::poll(&pfd, 1, timeout_ms) <= 0) {
      ::close(fd);
      return -1;
    }
    int soerr = 0;
    socklen_t errlen = sizeof soerr;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &errlen);
    if (soerr != 0) {
      ::close(fd);
      return -1;
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  return fd;
}

/// RAII server thread: runs `body` on a fresh thread, joins on scope exit
/// (destruction blocks until the body returns — pair it with a shutdown
/// signal the body observes, e.g. closing the socket it serves).
class ServerThread {
 public:
  explicit ServerThread(std::function<void()> body)
      : thread_(std::move(body)) {}
  ~ServerThread() {
    if (thread_.joinable()) thread_.join();
  }
  ServerThread(const ServerThread&) = delete;
  ServerThread& operator=(const ServerThread&) = delete;

 private:
  std::thread thread_;
};

// -- Coverage-trace helpers shared by the sparse/SIMD/OOP suites. ---------

/// Bumps exactly the trace cell `cell` while tracing is armed, by solving
/// the instrumentation update rule for the needed block id:
/// hit(cell ^ prev) touches index (cell ^ prev) ^ prev == cell.
inline void emit_cell(std::uint32_t cell) {
  cov::hit(cell ^ cov::tls_prev_location);
}

/// One synthetic execution: the (cell, raw-count) multiset to emit.
using CellPattern = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

/// Emits every (cell, count) of `pattern` through the armed trace.
inline void emit_pattern(const CellPattern& pattern) {
  for (const auto& [cell, count] : pattern) {
    for (std::uint32_t i = 0; i < count; ++i) emit_cell(cell);
  }
}

/// Every kernel this build + CPU can actually dispatch to (scalar first).
inline std::vector<cov::simd::Kernel> runnable_kernels() {
  std::vector<cov::simd::Kernel> kernels = {cov::simd::Kernel::kScalar};
  for (const cov::simd::Kernel kind :
       {cov::simd::Kernel::kSSE2, cov::simd::Kernel::kAVX2,
        cov::simd::Kernel::kNEON}) {
    if (cov::simd::ops_for(kind) != nullptr) kernels.push_back(kind);
  }
  return kernels;
}

/// Checks the map's trace dirty list is complete and duplicate-free
/// (every nonzero trace word listed exactly once). Returns an empty
/// string on success, a diagnostic otherwise — assert with
/// ASSERT_EQ(dirty_list_defect(map), "").
inline std::string dirty_list_defect(const cov::CoverageMap& map) {
  std::vector<bool> listed(cov::kMapWords, false);
  for (std::uint32_t i = 0; i < map.dirty_word_count(); ++i) {
    const std::uint16_t w = map.dirty_words()[i];
    if (listed[w]) return "word " + std::to_string(w) + " listed twice";
    listed[w] = true;
  }
  for (std::size_t w = 0; w < cov::kMapWords; ++w) {
    const bool nonzero = cov::dense::load_word(map.trace(), w) != 0;
    if (nonzero != listed[w]) {
      return "word " + std::to_string(w) +
             (nonzero ? " nonzero but unlisted" : " listed but zero");
    }
  }
  return {};
}

struct ArmedRun {
  Bytes response;
  std::vector<san::FaultReport> faults;

  [[nodiscard]] bool crashed() const { return !faults.empty(); }
  [[nodiscard]] bool crashed_with(san::FaultKind kind) const {
    for (const san::FaultReport& fault : faults) {
      if (fault.kind == kind) return true;
    }
    return false;
  }
};

/// Runs one packet against a target with the fault sink armed (coverage
/// not traced), the way the executor would, and returns the observables.
inline ArmedRun run_armed(ProtocolTarget& target, const Bytes& packet) {
  target.reset();
  san::FaultSink::arm();
  ArmedRun run;
  run.response = target.process(ByteSpan(packet.data(), packet.size()));
  run.faults = san::FaultSink::disarm();
  return run;
}

/// Runs a packet with no expectation of faults; asserts cleanliness at the
/// call site via the returned flag.
inline Bytes run_clean(ProtocolTarget& target, const Bytes& packet,
                       bool* fault_free = nullptr) {
  ArmedRun run = run_armed(target, packet);
  if (fault_free != nullptr) *fault_free = !run.crashed();
  return run.response;
}

}  // namespace icsfuzz::test
