// Shared helpers for the icsfuzz test suite.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "coverage/coverage_map.hpp"
#include "coverage/dense_ref.hpp"
#include "coverage/instrument.hpp"
#include "protocols/protocol_target.hpp"
#include "sanitizer/fault.hpp"

namespace icsfuzz::test {

// -- Coverage-trace helpers shared by the sparse/SIMD/OOP suites. ---------

/// Bumps exactly the trace cell `cell` while tracing is armed, by solving
/// the instrumentation update rule for the needed block id:
/// hit(cell ^ prev) touches index (cell ^ prev) ^ prev == cell.
inline void emit_cell(std::uint32_t cell) {
  cov::hit(cell ^ cov::tls_prev_location);
}

/// One synthetic execution: the (cell, raw-count) multiset to emit.
using CellPattern = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

/// Emits every (cell, count) of `pattern` through the armed trace.
inline void emit_pattern(const CellPattern& pattern) {
  for (const auto& [cell, count] : pattern) {
    for (std::uint32_t i = 0; i < count; ++i) emit_cell(cell);
  }
}

/// Every kernel this build + CPU can actually dispatch to (scalar first).
inline std::vector<cov::simd::Kernel> runnable_kernels() {
  std::vector<cov::simd::Kernel> kernels = {cov::simd::Kernel::kScalar};
  for (const cov::simd::Kernel kind :
       {cov::simd::Kernel::kSSE2, cov::simd::Kernel::kAVX2,
        cov::simd::Kernel::kNEON}) {
    if (cov::simd::ops_for(kind) != nullptr) kernels.push_back(kind);
  }
  return kernels;
}

/// Checks the map's trace dirty list is complete and duplicate-free
/// (every nonzero trace word listed exactly once). Returns an empty
/// string on success, a diagnostic otherwise — assert with
/// ASSERT_EQ(dirty_list_defect(map), "").
inline std::string dirty_list_defect(const cov::CoverageMap& map) {
  std::vector<bool> listed(cov::kMapWords, false);
  for (std::uint32_t i = 0; i < map.dirty_word_count(); ++i) {
    const std::uint16_t w = map.dirty_words()[i];
    if (listed[w]) return "word " + std::to_string(w) + " listed twice";
    listed[w] = true;
  }
  for (std::size_t w = 0; w < cov::kMapWords; ++w) {
    const bool nonzero = cov::dense::load_word(map.trace(), w) != 0;
    if (nonzero != listed[w]) {
      return "word " + std::to_string(w) +
             (nonzero ? " nonzero but unlisted" : " listed but zero");
    }
  }
  return {};
}

struct ArmedRun {
  Bytes response;
  std::vector<san::FaultReport> faults;

  [[nodiscard]] bool crashed() const { return !faults.empty(); }
  [[nodiscard]] bool crashed_with(san::FaultKind kind) const {
    for (const san::FaultReport& fault : faults) {
      if (fault.kind == kind) return true;
    }
    return false;
  }
};

/// Runs one packet against a target with the fault sink armed (coverage
/// not traced), the way the executor would, and returns the observables.
inline ArmedRun run_armed(ProtocolTarget& target, const Bytes& packet) {
  target.reset();
  san::FaultSink::arm();
  ArmedRun run;
  run.response = target.process(ByteSpan(packet.data(), packet.size()));
  run.faults = san::FaultSink::disarm();
  return run;
}

/// Runs a packet with no expectation of faults; asserts cleanliness at the
/// call site via the returned flag.
inline Bytes run_clean(ProtocolTarget& target, const Bytes& packet,
                       bool* fault_free = nullptr) {
  ArmedRun run = run_armed(target, packet);
  if (fault_free != nullptr) *fault_free = !run.crashed();
  return run.response;
}

}  // namespace icsfuzz::test
