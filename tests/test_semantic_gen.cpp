// Tests for the semantic-aware generation strategy (paper Algorithm 3) and
// its File Fixup pass.
#include <gtest/gtest.h>

#include "fuzzer/cracker.hpp"
#include "fuzzer/semantic_gen.hpp"
#include "model/instantiation.hpp"
#include "pits/pits.hpp"

namespace icsfuzz::fuzz {
namespace {

using model::Chunk;
using model::DataModel;
using model::NumberSpec;

/// Fc(token) + Addr(tagged) + Qty(tagged), with a trailing checksum so the
/// File Fixup pass has something to repair.
DataModel tagged_model(const std::string& name, std::uint8_t fc) {
  std::vector<Chunk> fields;
  fields.push_back(Chunk::token(name + ".Fc", 1, Endian::Big, fc));
  Chunk addr = Chunk::number(name + ".Addr", NumberSpec{.width = 2});
  addr.with_tag("addr");
  fields.push_back(std::move(addr));
  Chunk qty = Chunk::number(name + ".Qty", NumberSpec{.width = 2});
  qty.with_tag("qty");
  fields.push_back(std::move(qty));
  Chunk sum = Chunk::number(name + ".Sum", NumberSpec{.width = 1});
  sum.with_fixup(model::Fixup{model::FixupKind::Sum8, name + ".Addr"});
  fields.push_back(std::move(sum));
  return DataModel(name, Chunk::block(name + ".root", std::move(fields)));
}

class SemanticGenTest : public ::testing::Test {
 protected:
  SemanticGenTest() {
    set_.add(tagged_model("Read", 0x03));
    set_.add(tagged_model("Write", 0x06));
  }

  /// Cracks one Read packet so the corpus holds addr/qty donors.
  void seed_corpus(Bytes packet) {
    FileCracker cracker;
    cracker.crack(set_, packet, corpus_, rng_);
  }

  static Bytes read_packet(std::uint16_t addr, std::uint16_t qty) {
    Bytes out{0x03,
              static_cast<std::uint8_t>(addr >> 8),
              static_cast<std::uint8_t>(addr & 0xFF),
              static_cast<std::uint8_t>(qty >> 8),
              static_cast<std::uint8_t>(qty & 0xFF),
              0x00};
    out[5] = static_cast<std::uint8_t>((addr >> 8) + (addr & 0xFF));
    return out;
  }

  model::DataModelSet set_;
  PuzzleCorpus corpus_;
  Rng rng_{77};
};

TEST_F(SemanticGenTest, DonatedChunksTransferAcrossModels) {
  seed_corpus(read_packet(0x1234, 0x0001));
  SemanticGenConfig config;
  config.donor_use_pct = 100;
  config.explore_pct = 100;  // every intensity uses donors
  config.mutate_donor_pct = 0;
  SemanticGenerator generator(config, {});

  const DataModel* write = set_.find("Write");
  ASSERT_NE(write, nullptr);
  int transferred = 0;
  for (int i = 0; i < 100; ++i) {
    const Bytes packet = generator.generate(*write, corpus_, rng_);
    ASSERT_EQ(packet.size(), 6u);
    EXPECT_EQ(packet[0], 0x06);  // token comes from the model, not donors
    if (packet[1] == 0x12 && packet[2] == 0x34) ++transferred;
  }
  // The learned address dominates (the donor-recombination profile may
  // overwrite it with an aberrant value in a minority of seeds; a random
  // 16-bit field would match ~0 times).
  EXPECT_GT(transferred, 55);
}

TEST_F(SemanticGenTest, FileFixupRepairsSplicedSeeds) {
  seed_corpus(read_packet(0x0A0B, 0x0001));
  SemanticGenConfig config;
  config.donor_use_pct = 100;
  config.explore_pct = 100;
  config.mutate_donor_pct = 0;
  SemanticGenerator generator(config, {});
  const DataModel* write = set_.find("Write");
  for (int i = 0; i < 50; ++i) {
    const Bytes packet = generator.generate(*write, corpus_, rng_);
    // The Sum fixup must cover the spliced address.
    EXPECT_EQ(packet[5],
              static_cast<std::uint8_t>(packet[1] + packet[2]))
        << "iteration " << i;
  }
}

TEST_F(SemanticGenTest, NoFixupAblationLeavesBrokenChecksums) {
  seed_corpus(read_packet(0x0A0B, 0x0001));
  SemanticGenConfig config;
  config.donor_use_pct = 100;
  config.explore_pct = 100;
  config.apply_file_fixup = false;
  SemanticGenerator generator(config, {});
  const DataModel* write = set_.find("Write");
  int broken = 0;
  for (int i = 0; i < 100; ++i) {
    const Bytes packet = generator.generate(*write, corpus_, rng_);
    if (packet.size() == 6 &&
        packet[5] != static_cast<std::uint8_t>(packet[1] + packet[2])) {
      ++broken;
    }
  }
  EXPECT_GT(broken, 0);  // without fixup, some spliced seeds stay broken
}

TEST_F(SemanticGenTest, EmptyCorpusFallsBackToInherent) {
  SemanticGenerator generator({}, {});
  const DataModel* read = set_.find("Read");
  const Bytes packet = generator.generate(*read, corpus_, rng_);
  EXPECT_EQ(packet.size(), 6u);
  EXPECT_EQ(packet[0], 0x03);
}

TEST_F(SemanticGenTest, BatchEnumeratesDonorCombinations) {
  // Two addr donors and two qty donors -> up to 4 combinations.
  seed_corpus(read_packet(0x1111, 0x0001));
  seed_corpus(read_packet(0x2222, 0x0002));
  SemanticGenConfig config;
  config.max_batch = 16;
  config.candidates_per_position = 4;
  SemanticGenerator generator(config, {});
  const DataModel* write = set_.find("Write");
  const std::vector<Bytes> batch = generator.generate_batch(*write, corpus_, rng_);
  ASSERT_FALSE(batch.empty());
  EXPECT_LE(batch.size(), 16u);
  // All batch packets are well-formed Write frames.
  for (const Bytes& packet : batch) {
    ASSERT_EQ(packet.size(), 6u);
    EXPECT_EQ(packet[0], 0x06);
  }
  // The batch contains at least two distinct spliced addresses.
  std::set<std::uint16_t> addresses;
  for (const Bytes& packet : batch) {
    addresses.insert(static_cast<std::uint16_t>((packet[1] << 8) | packet[2]));
  }
  EXPECT_GE(addresses.size(), 2u);
}

TEST_F(SemanticGenTest, BatchEmptyWithoutDonors) {
  SemanticGenerator generator({}, {});
  const DataModel* write = set_.find("Write");
  EXPECT_TRUE(generator.generate_batch(*write, corpus_, rng_).empty());
}

TEST_F(SemanticGenTest, BatchRespectsMaxBatchCap) {
  for (std::uint16_t addr = 0; addr < 12; ++addr) {
    seed_corpus(read_packet(static_cast<std::uint16_t>(addr * 7 + 1),
                            static_cast<std::uint16_t>(addr + 1)));
  }
  SemanticGenConfig config;
  config.max_batch = 5;
  SemanticGenerator generator(config, {});
  const DataModel* write = set_.find("Write");
  EXPECT_LE(generator.generate_batch(*write, corpus_, rng_).size(), 5u);
}

TEST_F(SemanticGenTest, GeneratedSeedsStayParseable) {
  // Semantic output must remain LEGAL under its own model (File Fixup
  // restores integrity) — the property that keeps the crack-generate loop
  // closed.
  seed_corpus(read_packet(0x0102, 0x0304));
  SemanticGenerator generator({}, {});
  const DataModel* write = set_.find("Write");
  for (int i = 0; i < 100; ++i) {
    const Bytes packet = generator.generate(*write, corpus_, rng_);
    EXPECT_TRUE(model::parse_packet(*write, packet).has_value())
        << "iteration " << i;
  }
}

TEST(SemanticGenRealPit, ModbusDonorsProduceParseablePackets) {
  const model::DataModelSet set = pits::modbus_pit();
  PuzzleCorpus corpus;
  Rng rng(99);
  FileCracker cracker;
  // Crack defaults of every model to populate the corpus broadly.
  for (const model::DataModel& model : set.models()) {
    cracker.crack(set, model::default_instance(model).serialize(), corpus, rng);
  }
  ASSERT_GT(corpus.size(), 0u);

  SemanticGenerator generator({}, {});
  for (const model::DataModel& model : set.models()) {
    for (int i = 0; i < 10; ++i) {
      const Bytes packet = generator.generate(model, corpus, rng);
      EXPECT_TRUE(model::parse_packet(model, packet).has_value())
          << model.name();
    }
  }
}

}  // namespace
}  // namespace icsfuzz::fuzz
