// Unit tests for src/sanitizer: the fault sink's arm/disarm/first-fault
// semantics and the guarded memory wrappers' ASan-like detections.
#include <gtest/gtest.h>

#include "sanitizer/fault.hpp"
#include "sanitizer/guard.hpp"

namespace icsfuzz::san {
namespace {

TEST(FaultSink, UnarmedRaiseIsDropped) {
  (void)FaultSink::disarm();  // make sure we are disarmed
  FaultSink::raise(FaultKind::Segv, 1, "dropped");
  EXPECT_FALSE(FaultSink::tripped());
  EXPECT_TRUE(FaultSink::disarm().empty());
}

TEST(FaultSink, ArmedRaiseIsCollected) {
  FaultSink::arm();
  FaultSink::raise(FaultKind::Segv, 7, "boom");
  EXPECT_TRUE(FaultSink::tripped());
  const auto faults = FaultSink::disarm();
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].kind, FaultKind::Segv);
  EXPECT_EQ(faults[0].site, 7u);
  EXPECT_EQ(faults[0].detail, "boom");
}

TEST(FaultSink, OnlyFirstFaultSurvives) {
  FaultSink::arm();
  FaultSink::raise(FaultKind::Segv, 1, "first");
  FaultSink::raise(FaultKind::HeapBufferOverflow, 2, "second");
  const auto faults = FaultSink::disarm();
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].site, 1u);
}

TEST(FaultSink, RearmClearsPreviousExecution) {
  FaultSink::arm();
  FaultSink::raise(FaultKind::Segv, 1, "x");
  FaultSink::arm();
  EXPECT_FALSE(FaultSink::tripped());
  EXPECT_TRUE(FaultSink::disarm().empty());
}

TEST(FaultKindNames, MatchTableOneWording) {
  EXPECT_EQ(to_string(FaultKind::Segv), "SEGV");
  EXPECT_EQ(to_string(FaultKind::HeapUseAfterFree), "Heap Use after Free");
  EXPECT_EQ(to_string(FaultKind::HeapBufferOverflow), "Heap Buffer Overflow");
  EXPECT_EQ(to_string(FaultKind::Hang), "Hang");
}

TEST(SiteId, StableAndDistinct) {
  constexpr std::uint32_t a = site_id("cs101-getcot-oob");
  constexpr std::uint32_t b = site_id("cs101-seq-oob");
  static_assert(a != b);
  EXPECT_EQ(site_id("cs101-getcot-oob"), a);
}

// ---------------------------------------------------------------- GuardedSpan

TEST(GuardedSpan, InBoundsReadsAreClean) {
  const Bytes data{10, 20, 30};
  FaultSink::arm();
  GuardedSpan span(data, 1, "test span");
  EXPECT_EQ(span.at(0), 10);
  EXPECT_EQ(span.at(2), 30);
  EXPECT_EQ(span.load_u16be(0), 0x0A14);
  EXPECT_FALSE(FaultSink::tripped());
  (void)FaultSink::disarm();
}

TEST(GuardedSpan, OutOfBoundsRaisesSegv) {
  const Bytes data{1, 2};
  FaultSink::arm();
  GuardedSpan span(data, 99, "oob span");
  EXPECT_EQ(span.at(2), 0);
  const auto faults = FaultSink::disarm();
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].kind, FaultKind::Segv);
  EXPECT_EQ(faults[0].site, 99u);
  EXPECT_NE(faults[0].detail.find("index 2"), std::string::npos);
}

TEST(GuardedSpan, EmptySpanAnyAccessFaults) {
  const Bytes data;
  FaultSink::arm();
  GuardedSpan span(data, 5, "empty");
  (void)span.at(0);
  EXPECT_TRUE(FaultSink::tripped());
  (void)FaultSink::disarm();
}

TEST(GuardedSpan, U16StraddlingEndFaults) {
  const Bytes data{0xAA};
  FaultSink::arm();
  GuardedSpan span(data, 5, "straddle");
  (void)span.load_u16be(0);  // second byte is out of bounds
  EXPECT_TRUE(FaultSink::tripped());
  (void)FaultSink::disarm();
}

// --------------------------------------------------------------- GuardedAlloc

TEST(GuardedAlloc, ReadWriteWithinBounds) {
  FaultSink::arm();
  GuardedAlloc alloc(4, 1, "buf");
  alloc.write(0, 0xAA);
  alloc.write(3, 0xBB);
  EXPECT_EQ(alloc.read(0), 0xAA);
  EXPECT_EQ(alloc.read(3), 0xBB);
  EXPECT_FALSE(FaultSink::tripped());
  (void)FaultSink::disarm();
}

TEST(GuardedAlloc, WritePastEndIsHeapBufferOverflow) {
  FaultSink::arm();
  GuardedAlloc alloc(4, 2, "buf");
  alloc.write(4, 0xCC);
  const auto faults = FaultSink::disarm();
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].kind, FaultKind::HeapBufferOverflow);
}

TEST(GuardedAlloc, ReadPastEndIsSegv) {
  FaultSink::arm();
  GuardedAlloc alloc(4, 3, "buf");
  (void)alloc.read(9);
  const auto faults = FaultSink::disarm();
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].kind, FaultKind::Segv);
}

TEST(GuardedAlloc, UseAfterFreeOnRead) {
  FaultSink::arm();
  GuardedAlloc alloc(4, 4, "buf");
  alloc.free();
  (void)alloc.read(0);
  const auto faults = FaultSink::disarm();
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].kind, FaultKind::HeapUseAfterFree);
}

TEST(GuardedAlloc, UseAfterFreeOnWrite) {
  FaultSink::arm();
  GuardedAlloc alloc(4, 5, "buf");
  alloc.free();
  alloc.write(0, 1);
  const auto faults = FaultSink::disarm();
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].kind, FaultKind::HeapUseAfterFree);
}

TEST(GuardedAlloc, DoubleFreeIsUseAfterFree) {
  FaultSink::arm();
  GuardedAlloc alloc(4, 6, "buf");
  alloc.free();
  alloc.free();
  const auto faults = FaultSink::disarm();
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].kind, FaultKind::HeapUseAfterFree);
}

TEST(GuardedAlloc, BulkWriteStopsAtFirstFault) {
  FaultSink::arm();
  GuardedAlloc alloc(2, 7, "buf");
  const Bytes data{1, 2, 3, 4};
  alloc.write_bytes(0, data);
  const auto faults = FaultSink::disarm();
  ASSERT_EQ(faults.size(), 1u);  // first-fault rule
  EXPECT_EQ(faults[0].kind, FaultKind::HeapBufferOverflow);
  EXPECT_EQ(alloc.storage()[0], 1);
  EXPECT_EQ(alloc.storage()[1], 2);
}

TEST(GuardedAlloc, FreedFlagIsObservable) {
  FaultSink::arm();
  GuardedAlloc alloc(1, 8, "buf");
  EXPECT_FALSE(alloc.freed());
  alloc.free();
  EXPECT_TRUE(alloc.freed());
  (void)FaultSink::disarm();
}

}  // namespace
}  // namespace icsfuzz::san
