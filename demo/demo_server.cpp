// icsfuzz-demo-server — an out-of-tree Modbus/MBAP-style echo server.
//
// This program intentionally links NOTHING from icsfuzz. It exists to
// demonstrate (and regression-test) the instrumentation-injection runtime:
// preloaded with libicsfuzz-preload.so it becomes a coverage-guided
// fork-server / TCP-session target; standalone it is just a small server.
//
// Input modes:
//   (default)   One execution: read a packet from stdin, process every
//               MBAP frame in it, write the responses to stdout, exit 0.
//               This is what a fork-per-exec child of the runtime runs.
//   persistent  When the preload runtime marks this process as a
//               persistent child, the weak __icsfuzz_persistent_loop hook
//               returns 1 and the loop below serves one test case per
//               iteration from shared memory (no exec, no stdin).
//   --serve     TCP server on an ephemeral loopback port: one response
//               write per complete MBAP frame, one for a trailing
//               malformed/incomplete residue at half-close — mirroring the
//               session transport's framing contract so the injected
//               served-counter stays in lockstep with the client.
//
// Fault-trigger function codes (for crash/hang/OOM classification tests):
//   0x66  null-pointer write (SIGSEGV)
//   0x67  hang forever (pause loop)
//   0x68  allocate without bound — under the fuzzer's resource jail the
//         allocation failure handler exits through the jail's OOM marker;
//         unjailed, the bounded loop completes and the run exits normally.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

// -- Cooperation hooks provided (at runtime) by libicsfuzz-preload.so. -----
// Weak and undefined here: standalone they resolve to null and the stdin
// path runs; under the runtime they drive persistent mode. The exported
// marker below is what tells the runtime this binary cooperates at all.
extern "C" int __icsfuzz_persistent_loop(void) __attribute__((weak));
extern "C" const unsigned char* __icsfuzz_testcase(unsigned* len)
    __attribute__((weak));
extern "C" void __icsfuzz_set_response(const void* data, unsigned len)
    __attribute__((weak));

extern "C" {
int icsfuzz_persistent_target = 1;
}

namespace {

// MBAP framing, mirroring the fuzzer's session framing rules: a frame
// needs 7 bytes of header, carries a big-endian declared length at bytes
// [4,6), spans 6 + declared bytes, and declared < 1 is malformed. The
// stream caps (256 messages, 1 MiB) match the client's splitter so both
// sides agree on what counts as "one message".
constexpr std::size_t kFrameHeader = 7;
constexpr std::size_t kMaxStreamMessages = 256;
constexpr std::size_t kMaxStreamBytes = std::size_t{1} << 20;

constexpr std::uint8_t kFaultCrash = 0x66;
constexpr std::uint8_t kFaultHang = 0x67;
constexpr std::uint8_t kFaultOom = 0x68;

[[noreturn]] void trigger_crash() {
  volatile int* null_cell = nullptr;
  *null_cell = 1;        // SIGSEGV
  for (;;) ::pause();    // not reached
}

[[noreturn]] void trigger_hang() {
  for (;;) ::pause();
}

void trigger_oom() {
  // Untouched 64 MiB chunks: address space only, bounded at 1 TiB. Under
  // the fuzzer's jail the failing allocation exits through the jail's OOM
  // handler long before the bound; unjailed the loop completes harmlessly.
  // The pointers are held (and eventually freed) so the compiler cannot
  // elide the unused allocations — an elided new never hits RLIMIT_AS.
  constexpr std::size_t kChunk = std::size_t{64} << 20;
  std::vector<std::uint8_t*> held;
  held.reserve(std::size_t{1} << 14);
  for (int i = 0; i < (1 << 14); ++i) {
    held.push_back(new std::uint8_t[kChunk]);
  }
  for (std::uint8_t* chunk : held) delete[] chunk;
}

std::uint16_t be16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

void put_be16(std::vector<std::uint8_t>& out, std::uint16_t value) {
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value & 0xFF));
}

/// Appends an MBAP response: echoed transaction/protocol ids, recomputed
/// length, unit, function code, payload.
void respond(std::vector<std::uint8_t>& out, std::uint16_t tid,
             std::uint16_t pid, std::uint8_t unit, std::uint8_t fc,
             const std::vector<std::uint8_t>& payload) {
  put_be16(out, tid);
  put_be16(out, pid);
  put_be16(out, static_cast<std::uint16_t>(2 + payload.size()));
  out.push_back(unit);
  out.push_back(fc);
  out.insert(out.end(), payload.begin(), payload.end());
}

void respond_exception(std::vector<std::uint8_t>& out, std::uint16_t tid,
                       std::uint16_t pid, std::uint8_t unit, std::uint8_t fc,
                       std::uint8_t code) {
  put_be16(out, tid);
  put_be16(out, pid);
  put_be16(out, 3);
  out.push_back(unit);
  out.push_back(static_cast<std::uint8_t>(fc | 0x80));
  out.push_back(code);
}

/// Handles one complete MBAP frame. Deliberately branchy: distinct paths
/// per function code, per quantity range, per address class — so
/// SanitizerCoverage sees input-dependent edges, which is exactly what the
/// injection bridge exists to surface.
void process_frame(const std::uint8_t* frame, std::size_t size,
                   std::vector<std::uint8_t>& out) {
  const std::uint16_t tid = be16(frame);
  const std::uint16_t pid = be16(frame + 2);
  const std::uint8_t unit = frame[6];
  if (size < 8) {
    respond_exception(out, tid, pid, unit, 0, 0x01);
    return;
  }
  const std::uint8_t fc = frame[7];
  const std::uint8_t* body = frame + 8;
  const std::size_t body_len = size - 8;
  std::vector<std::uint8_t> payload;

  switch (fc) {
    case 0x01:    // read coils
    case 0x02: {  // read discrete inputs
      if (body_len < 4) {
        respond_exception(out, tid, pid, unit, fc, 0x03);
        return;
      }
      const std::uint16_t addr = be16(body);
      const std::uint16_t quantity = be16(body + 2);
      if (quantity < 1 || quantity > 2000) {
        respond_exception(out, tid, pid, unit, fc, 0x03);
        return;
      }
      const std::size_t bytes = (quantity + 7) / 8;
      payload.push_back(static_cast<std::uint8_t>(bytes));
      for (std::size_t i = 0; i < bytes; ++i) {
        // Coil state derived from the address so different addresses take
        // different data-dependent paths downstream.
        std::uint8_t bits = 0;
        if ((addr & 1) != 0) bits |= 0x55;
        if ((addr & 2) != 0) bits |= 0xAA;
        if (addr > 0x1000) bits ^= static_cast<std::uint8_t>(i);
        payload.push_back(bits);
      }
      respond(out, tid, pid, unit, fc, payload);
      return;
    }
    case 0x03:    // read holding registers
    case 0x04: {  // read input registers
      if (body_len < 4) {
        respond_exception(out, tid, pid, unit, fc, 0x03);
        return;
      }
      const std::uint16_t addr = be16(body);
      const std::uint16_t quantity = be16(body + 2);
      if (quantity < 1 || quantity > 125) {
        respond_exception(out, tid, pid, unit, fc, 0x03);
        return;
      }
      if (addr > 0xFF00) {
        respond_exception(out, tid, pid, unit, fc, 0x02);
        return;
      }
      payload.push_back(static_cast<std::uint8_t>(quantity * 2));
      for (std::uint16_t i = 0; i < quantity; ++i) {
        const std::uint16_t reg =
            static_cast<std::uint16_t>((addr + i) * 3 + (fc == 0x03 ? 7 : 11));
        payload.push_back(static_cast<std::uint8_t>(reg >> 8));
        payload.push_back(static_cast<std::uint8_t>(reg & 0xFF));
      }
      respond(out, tid, pid, unit, fc, payload);
      return;
    }
    case 0x05:    // write single coil
    case 0x06: {  // write single register
      if (body_len < 4) {
        respond_exception(out, tid, pid, unit, fc, 0x03);
        return;
      }
      const std::uint16_t value = be16(body + 2);
      if (fc == 0x05 && value != 0x0000 && value != 0xFF00) {
        respond_exception(out, tid, pid, unit, fc, 0x03);
        return;
      }
      payload.assign(body, body + 4);  // echo per the spec
      respond(out, tid, pid, unit, fc, payload);
      return;
    }
    case 0x10: {  // write multiple registers
      if (body_len < 5) {
        respond_exception(out, tid, pid, unit, fc, 0x03);
        return;
      }
      const std::uint16_t quantity = be16(body + 2);
      const std::uint8_t byte_count = body[4];
      if (quantity < 1 || quantity > 123 || byte_count != quantity * 2 ||
          body_len < std::size_t{5} + byte_count) {
        respond_exception(out, tid, pid, unit, fc, 0x03);
        return;
      }
      std::uint32_t checksum = 0;
      for (std::size_t i = 0; i < byte_count; ++i) {
        checksum = checksum * 31 + body[5 + i];
        if ((checksum & 0xFF) == 0x42) checksum ^= 0x1F;  // extra edges
      }
      payload.assign(body, body + 4);
      respond(out, tid, pid, unit, fc, payload);
      return;
    }
    case 0x2B: {  // encapsulated interface / device identification
      if (body_len < 3 || body[0] != 0x0E) {
        respond_exception(out, tid, pid, unit, fc, 0x01);
        return;
      }
      const std::uint8_t category = body[1];
      if (category < 1 || category > 4) {
        respond_exception(out, tid, pid, unit, fc, 0x03);
        return;
      }
      payload = {0x0E, category, 0x01, 0x00, 0x00, 0x01, 0x00};
      const char* name = category < 3 ? "icsfuzz-demo" : "demo-extended";
      payload.push_back(static_cast<std::uint8_t>(std::strlen(name)));
      payload.insert(payload.end(), name, name + std::strlen(name));
      respond(out, tid, pid, unit, fc, payload);
      return;
    }
    case kFaultCrash:
      trigger_crash();
    case kFaultHang:
      trigger_hang();
    case kFaultOom:
      trigger_oom();
      payload = {0x00};
      respond(out, tid, pid, unit, fc, payload);
      return;
    default:
      respond_exception(out, tid, pid, unit, fc, 0x01);
      return;
  }
}

/// Frames `data` like the fuzzer's session splitter and processes each
/// complete frame; a trailing short/malformed chunk gets one exception
/// response (the session residue message).
void process_buffer(const std::uint8_t* data, std::size_t size,
                    std::vector<std::uint8_t>& out) {
  std::size_t offset = 0;
  std::size_t frames = 0;
  while (size - offset >= kFrameHeader && frames < kMaxStreamMessages &&
         offset < kMaxStreamBytes) {
    const std::uint16_t declared = be16(data + offset + 4);
    if (declared < 1) break;  // malformed: the rest is residue
    const std::size_t frame_size = std::size_t{6} + declared;
    if (size - offset < frame_size) break;  // incomplete tail
    process_frame(data + offset, frame_size, out);
    offset += frame_size;
    ++frames;
  }
  if (offset < size) {
    // Residue: answer something deterministic so the exchange stays
    // lockstep — a generic exception keyed off the first residue byte.
    respond_exception(out, 0xFFFF, 0, data[offset], 0x00, 0x04);
  }
}

// -- stdin one-shot mode (fork-per-exec child). ----------------------------

int run_stdin_once() {
  std::vector<std::uint8_t> packet;
  std::uint8_t chunk[4096];
  for (;;) {
    const ssize_t n = ::read(STDIN_FILENO, chunk, sizeof(chunk));
    if (n > 0) {
      packet.insert(packet.end(), chunk, chunk + n);
      if (packet.size() > kMaxStreamBytes) break;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  std::vector<std::uint8_t> responses;
  if (!packet.empty()) process_buffer(packet.data(), packet.size(), responses);
  if (__icsfuzz_set_response != nullptr && !responses.empty()) {
    __icsfuzz_set_response(responses.data(),
                           static_cast<unsigned>(responses.size()));
  }
  std::size_t off = 0;
  while (off < responses.size()) {
    const ssize_t n =
        ::write(STDOUT_FILENO, responses.data() + off, responses.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  return 0;
}

// -- persistent mode (cooperating with the preload runtime). ---------------

int run_persistent() {
  std::vector<std::uint8_t> responses;
  do {
    unsigned len = 0;
    const unsigned char* data =
        __icsfuzz_testcase != nullptr ? __icsfuzz_testcase(&len) : nullptr;
    responses.clear();
    if (data != nullptr && len != 0) process_buffer(data, len, responses);
    if (__icsfuzz_set_response != nullptr) {
      __icsfuzz_set_response(responses.data(),
                             static_cast<unsigned>(responses.size()));
    }
  } while (__icsfuzz_persistent_loop());
  return 0;
}

// -- --serve: TCP session mode. --------------------------------------------

void serve_connection(int conn) {
  std::vector<std::uint8_t> stream;
  std::size_t offset = 0;   // consumed prefix
  std::size_t frames = 0;
  bool residue_mode = false;
  std::uint8_t chunk[4096];

  for (;;) {
    // Drain complete frames before reading more: one response write per
    // frame keeps the injected served-counter aligned with the client's
    // per-message waits.
    while (!residue_mode && stream.size() - offset >= kFrameHeader &&
           frames < kMaxStreamMessages && offset < kMaxStreamBytes) {
      const std::uint16_t declared = be16(stream.data() + offset + 4);
      if (declared < 1) {
        residue_mode = true;  // malformed: everything further is residue
        break;
      }
      const std::size_t frame_size = std::size_t{6} + declared;
      if (stream.size() - offset < frame_size) break;
      std::vector<std::uint8_t> response;
      process_frame(stream.data() + offset, frame_size, response);
      offset += frame_size;
      ++frames;
      if (!response.empty() &&
          ::write(conn, response.data(), response.size()) < 0) {
        return;  // client gone
      }
    }
    if (frames >= kMaxStreamMessages || offset >= kMaxStreamBytes) {
      residue_mode = true;
    }

    const ssize_t n = ::read(conn, chunk, sizeof(chunk));
    if (n > 0) {
      stream.insert(stream.end(), chunk, chunk + n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EOF (client half-close) or error: flush the residue
  }

  if (offset < stream.size()) {
    std::vector<std::uint8_t> response;
    respond_exception(response, 0xFFFF, 0, stream[offset], 0x00, 0x04);
    (void)::write(conn, response.data(), response.size());
  }
}

int run_serve() {
  ::signal(SIGPIPE, SIG_IGN);
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("socket");
    return 1;
  }
  sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral: the preload hello reports the real port
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    std::perror("bind");
    return 1;
  }
  if (::listen(listener, 16) != 0) {
    std::perror("listen");
    return 1;
  }
  sockaddr_in bound {};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listener, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    std::fprintf(stderr, "icsfuzz-demo-server: listening on 127.0.0.1:%u\n",
                 ntohs(bound.sin_port));
  }
  for (;;) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      break;
    }
    serve_connection(conn);
    ::close(conn);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--serve") return run_serve();
  if (argc > 1) {
    std::fprintf(stderr,
                 "usage: %s [--serve]\n"
                 "  (default) process one packet from stdin\n"
                 "  --serve   MBAP echo server on an ephemeral loopback "
                 "port\n",
                 argv[0]);
    return 2;
  }
  if (__icsfuzz_persistent_loop != nullptr && __icsfuzz_persistent_loop()) {
    return run_persistent();
  }
  return run_stdin_once();
}
