/* No-op SanitizerCoverage callbacks, shipped as a shared library the demo
 * server lists as a DT_NEEDED dependency.
 *
 * Why a separate .so and not definitions inside the executable: the
 * executable is FIRST in dynamic symbol lookup order, so callbacks defined
 * there could never be interposed and the LD_PRELOAD runtime's bridge
 * would never see a hit. A DT_NEEDED library sits BEHIND LD_PRELOAD in the
 * lookup order — standalone runs resolve to these stubs (the binary works
 * normally, coverage discarded), and runs under libicsfuzz-preload.so
 * resolve to the real bridge. */
#include <stdint.h>

void __sanitizer_cov_trace_pc_guard_init(uint32_t* start, uint32_t* stop) {
  (void)start;
  (void)stop;
}

void __sanitizer_cov_trace_pc_guard(uint32_t* guard) { (void)guard; }

void __sanitizer_cov_trace_pc(void) {}
